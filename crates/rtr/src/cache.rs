//! The cache side of RTR: versioned VRP state and query handling.
//!
//! A relying-party cache validates the RPKI periodically; each validation
//! run becomes a new **serial**. Routers either fetch everything (Reset
//! Query) or ask for the delta since the serial they hold (Serial
//! Query). The cache keeps a bounded delta history; askers that fall
//! off the end get a Cache Reset and start over — exactly RFC 6810 §5.

use crate::pdu::{read_pdu, ErrorCode, Pdu, PduError};
use ripki_bgp::rov::VrpTriple;
use ripki_net::IpPrefix;
use ripki_payload::{PayloadUpdate, VrpDelta, VrpPayload};
use std::collections::{BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::sync::Mutex;

/// One serial increment's changes.
#[derive(Debug, Clone, Default)]
struct Delta {
    to_serial: u32,
    announced: Vec<VrpTriple>,
    withdrawn: Vec<VrpTriple>,
}

struct CacheState {
    session_id: u16,
    serial: u32,
    has_data: bool,
    current: BTreeSet<VrpTriple>,
    history: VecDeque<Delta>,
}

/// A shareable RTR cache server.
pub struct CacheServer {
    state: Mutex<CacheState>,
    max_history: usize,
}

/// RFC 1982 serial-number arithmetic (as required by RFC 8210 §5.1):
/// is `a` less than `b` in sequence space? Neither total nor transitive
/// over the full space — exactly half the space is "greater" — but
/// well-defined for the windows RTR compares.
pub fn serial_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < (1 << 31)
}

/// Turn a VRP into its announce/withdraw PDU.
fn vrp_pdu(vrp: &VrpTriple, announce: bool) -> Pdu {
    match vrp.prefix {
        IpPrefix::V4(p) => Pdu::Ipv4Prefix {
            announce,
            prefix_len: p.len(),
            max_len: vrp.max_length,
            prefix: p.network(),
            asn: vrp.asn,
        },
        IpPrefix::V6(p) => Pdu::Ipv6Prefix {
            announce,
            prefix_len: p.len(),
            max_len: vrp.max_length,
            prefix: p.network(),
            asn: vrp.asn,
        },
    }
}

impl CacheServer {
    /// Lock the state, recovering from poisoning. Every mutation under
    /// this lock either completes before unlock or replaces the state
    /// wholesale, so the last consistent snapshot is always servable —
    /// and serving it beats propagating a worker's panic into the RTR
    /// accept loop (R1: the serving plane never panics).
    fn state_lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A fresh cache with no data (Serial/Reset queries answer
    /// "No Data Available" until the first [`update`](Self::update)).
    pub fn new(session_id: u16) -> CacheServer {
        CacheServer {
            state: Mutex::new(CacheState {
                session_id,
                serial: 0,
                has_data: false,
                current: BTreeSet::new(),
                history: VecDeque::new(),
            }),
            max_history: 16,
        }
    }

    /// Cap on retained deltas (default 16).
    pub fn with_max_history(mut self, n: usize) -> CacheServer {
        self.max_history = n;
        self
    }

    /// Install a new validation result; returns the new serial.
    ///
    /// Crossing the u32 wrap (serial `0xFFFF_FFFF` → `0`) discards the
    /// delta history: serial comparisons are ambiguous across the wrap
    /// boundary's half-space, so every router is forced through a Cache
    /// Reset and refetches the full set (RFC 8210 §5.1 / RFC 1982).
    pub fn update<I: IntoIterator<Item = VrpTriple>>(&self, vrps: I) -> u32 {
        let new: BTreeSet<VrpTriple> = vrps.into_iter().collect();
        let mut st = self.state_lock();
        let announced: Vec<VrpTriple> = new.difference(&st.current).copied().collect();
        let withdrawn: Vec<VrpTriple> = st.current.difference(&new).copied().collect();
        let wrapped = st.serial == u32::MAX;
        st.serial = st.serial.wrapping_add(1);
        let serial = st.serial;
        if wrapped {
            st.history.clear();
        } else if st.has_data {
            st.history.push_back(Delta {
                to_serial: serial,
                announced,
                withdrawn,
            });
            while st.history.len() > self.max_history {
                st.history.pop_front();
            }
        }
        st.current = new;
        st.has_data = true;
        serial
    }

    /// Install a VRP snapshot stamped with an externally assigned
    /// serial (e.g. a study-engine epoch) instead of self-incrementing.
    ///
    /// When `serial` is exactly one past the cache's current serial the
    /// change is recorded as an incremental delta, so routers holding
    /// the previous serial sync with announce/withdraw PDUs only. Any
    /// other jump (engine restarted, epochs skipped, serial regressed)
    /// clears the delta history: affected routers get a Cache Reset and
    /// refetch the full set, which is always correct. The u32 wrap
    /// (`0xFFFF_FFFF` → `0`) is numerically contiguous but clears the
    /// history too — RFC 1982 comparisons are ambiguous across the wrap
    /// boundary, so a forced Cache Reset is the only safe resync.
    ///
    /// Returns `false` (and installs nothing) if `serial` equals the
    /// current serial while data is already present — same epoch, no-op.
    pub fn install_snapshot<I: IntoIterator<Item = VrpTriple>>(
        &self,
        serial: u32,
        vrps: I,
    ) -> bool {
        let new: BTreeSet<VrpTriple> = vrps.into_iter().collect();
        let mut st = self.state_lock();
        if st.has_data && serial == st.serial {
            return false;
        }
        let wraps = st.serial == u32::MAX && serial == 0;
        let contiguous = st.has_data && !wraps && serial == st.serial.wrapping_add(1);
        if contiguous {
            let announced: Vec<VrpTriple> = new.difference(&st.current).copied().collect();
            let withdrawn: Vec<VrpTriple> = st.current.difference(&new).copied().collect();
            st.history.push_back(Delta {
                to_serial: serial,
                announced,
                withdrawn,
            });
            while st.history.len() > self.max_history {
                st.history.pop_front();
            }
        } else {
            st.history.clear();
        }
        st.serial = serial;
        st.current = new;
        st.has_data = true;
        true
    }

    /// Stream one serial increment's announce/withdraw sets into the
    /// cache without materializing the full VRP snapshot — the
    /// incremental counterpart of [`install_snapshot`]
    /// (Self::install_snapshot), fed directly from a study engine's
    /// `EpochDelta`.
    ///
    /// Succeeds only when the delta chains contiguously: the cache has
    /// data, `to_serial` is exactly one past the current serial, and the
    /// step does not cross the u32 wrap (RFC 1982 comparisons are
    /// ambiguous there — see `install_snapshot`). On any other jump it
    /// installs nothing and returns `false`; the caller falls back to a
    /// full `install_snapshot`, which routers resync from via Cache
    /// Reset.
    ///
    /// Withdrawals of absent VRPs and announcements of already-present
    /// VRPs are applied idempotently (the set semantics routers expect),
    /// but are still recorded in the delta history verbatim only when
    /// they change the set — the history entry holds the *effective*
    /// changes, so replaying it reproduces the cache state exactly.
    pub fn apply_delta(
        &self,
        to_serial: u32,
        announced: &[VrpTriple],
        withdrawn: &[VrpTriple],
    ) -> bool {
        let mut st = self.state_lock();
        let wraps = st.serial == u32::MAX;
        if !st.has_data || wraps || to_serial != st.serial.wrapping_add(1) {
            return false;
        }
        let mut effective = Delta {
            to_serial,
            announced: Vec::new(),
            withdrawn: Vec::new(),
        };
        for vrp in withdrawn {
            if st.current.remove(vrp) {
                effective.withdrawn.push(*vrp);
            }
        }
        for vrp in announced {
            if st.current.insert(*vrp) {
                effective.announced.push(*vrp);
            }
        }
        st.serial = to_serial;
        st.history.push_back(effective);
        while st.history.len() > self.max_history {
            st.history.pop_front();
        }
        true
    }

    /// Install a [`PayloadUpdate`] from the distribution fabric: the
    /// delta path when the update chains contiguously from the cache's
    /// serial, the snapshot path otherwise. This is the single entry
    /// point proxy targets use, so every hop shares one resync policy.
    ///
    /// Returns `true` when the cache state changed (serial advanced).
    pub fn install_update(&self, update: &PayloadUpdate) -> bool {
        if let Some(delta) = &update.delta {
            if self.apply_vrp_delta(delta) {
                return true;
            }
        }
        self.install_payload(&update.payload)
    }

    /// Install a full payload snapshot under its serial (see
    /// [`install_snapshot`](Self::install_snapshot) for the delta-vs-
    /// reset rules the serial jump decides).
    pub fn install_payload(&self, payload: &VrpPayload) -> bool {
        self.install_snapshot(payload.serial(), payload.vrps().iter().copied())
    }

    /// Stream a payload delta into the cache. Succeeds only when the
    /// delta chains contiguously in serial space (see
    /// [`apply_delta`](Self::apply_delta)); epochs are mapped to RTR
    /// serials by truncation, matching [`VrpPayload::serial`].
    pub fn apply_vrp_delta(&self, delta: &VrpDelta) -> bool {
        // A delta whose epoch step is not exactly +1 cannot be serial-
        // contiguous either; `apply_delta` would refuse it, but checking
        // here keeps the truncation from aliasing a 2^32-epoch jump
        // onto a plausible-looking serial step.
        if delta.to_epoch != delta.from_epoch.wrapping_add(1) {
            return false;
        }
        self.apply_delta(delta.to_epoch as u32, &delta.announced, &delta.withdrawn)
    }

    /// The currently served set as an epoch-stamped payload, or `None`
    /// before the first install. The epoch is the serial widened to
    /// `u64` — exact for every engine-fed cache (engine epochs are the
    /// serials) and still monotonic for self-incrementing ones.
    pub fn payload(&self) -> Option<VrpPayload> {
        let st = self.state_lock();
        st.has_data
            .then(|| VrpPayload::new(u64::from(st.serial), st.current.iter().copied()))
    }

    /// Current serial.
    pub fn serial(&self) -> u32 {
        self.state_lock().serial
    }

    /// Session id.
    pub fn session_id(&self) -> u16 {
        self.state_lock().session_id
    }

    /// Number of VRPs currently served.
    pub fn vrp_count(&self) -> usize {
        self.state_lock().current.len()
    }

    /// Compute the response PDUs for one router query. Pure function of
    /// the current state — the unit-testable heart of the server.
    pub fn handle_query(&self, query: &Pdu) -> Vec<Pdu> {
        let st = self.state_lock();
        match query {
            Pdu::ResetQuery => {
                if !st.has_data {
                    return vec![Pdu::ErrorReport {
                        code: ErrorCode::NoDataAvailable,
                        erroneous_pdu: query.encode(),
                        text: "cache has not completed a validation run".into(),
                    }];
                }
                let mut out = vec![Pdu::CacheResponse {
                    session_id: st.session_id,
                }];
                out.extend(st.current.iter().map(|v| vrp_pdu(v, true)));
                out.push(Pdu::EndOfData {
                    session_id: st.session_id,
                    serial: st.serial,
                });
                out
            }
            Pdu::SerialQuery { session_id, serial } => {
                if !st.has_data {
                    return vec![Pdu::ErrorReport {
                        code: ErrorCode::NoDataAvailable,
                        erroneous_pdu: query.encode(),
                        text: "cache has not completed a validation run".into(),
                    }];
                }
                if *session_id != st.session_id {
                    return vec![Pdu::ErrorReport {
                        code: ErrorCode::CorruptData,
                        erroneous_pdu: query.encode(),
                        text: "session id mismatch".into(),
                    }];
                }
                if *serial == st.serial {
                    // Router is current: empty delta.
                    return vec![
                        Pdu::CacheResponse {
                            session_id: st.session_id,
                        },
                        Pdu::EndOfData {
                            session_id: st.session_id,
                            serial: st.serial,
                        },
                    ];
                }
                if serial_lt(st.serial, *serial) {
                    // The router's serial is from our future (RFC 1982
                    // comparison): it outlived a cache restart or a
                    // serial wrap. Only a full restart is safe.
                    return vec![Pdu::CacheReset];
                }
                // Collect deltas (serial, current]: they must chain
                // contiguously from the router's serial.
                let mut chain: Vec<&Delta> = Vec::new();
                let mut expect = serial.wrapping_add(1);
                for d in &st.history {
                    if d.to_serial == expect {
                        chain.push(d);
                        expect = expect.wrapping_add(1);
                    }
                }
                if chain.is_empty() || chain.last().map(|d| d.to_serial) != Some(st.serial) {
                    // Too old (or future serial): make the router restart.
                    return vec![Pdu::CacheReset];
                }
                let mut out = vec![Pdu::CacheResponse {
                    session_id: st.session_id,
                }];
                for d in chain {
                    out.extend(d.announced.iter().map(|v| vrp_pdu(v, true)));
                    out.extend(d.withdrawn.iter().map(|v| vrp_pdu(v, false)));
                }
                out.push(Pdu::EndOfData {
                    session_id: st.session_id,
                    serial: st.serial,
                });
                out
            }
            other => vec![Pdu::ErrorReport {
                code: ErrorCode::InvalidRequest,
                erroneous_pdu: other.encode(),
                text: format!("unexpected PDU type {} from router", other.type_byte()),
            }],
        }
    }

    /// The Serial Notify PDU for the current state, if any data exists.
    pub fn notify_pdu(&self) -> Option<Pdu> {
        let st = self.state_lock();
        st.has_data.then_some(Pdu::SerialNotify {
            session_id: st.session_id,
            serial: st.serial,
        })
    }

    /// Serve one router connection over TCP with unsolicited Serial
    /// Notify (RFC 6810 §5.2): between queries, the cache polls its own
    /// serial every `poll` and pushes a Serial Notify when new data
    /// arrived since the last notification.
    pub fn serve_tcp_with_notify(
        &self,
        stream: std::net::TcpStream,
        poll: std::time::Duration,
    ) -> Result<(), PduError> {
        stream
            .set_read_timeout(Some(poll))
            .map_err(|e| PduError::Io(e.to_string()))?;
        let mut read_half = stream
            .try_clone()
            .map_err(|e| PduError::Io(e.to_string()))?;
        let mut write_half = stream;
        let mut buf = Vec::new();
        let mut notified_serial = self.serial();
        loop {
            match read_pdu(&mut read_half, &mut buf) {
                Ok(query) => {
                    let responses = self.handle_query(&query);
                    for pdu in &responses {
                        write_half
                            .write_all(&pdu.encode())
                            .map_err(|e| PduError::Io(e.to_string()))?;
                    }
                    write_half
                        .flush()
                        .map_err(|e| PduError::Io(e.to_string()))?;
                    // Record the serial the router actually saw (the
                    // response's End of Data), not the cache's current
                    // serial: an update landing between the response
                    // and this bookkeeping must still get its notify.
                    for pdu in &responses {
                        if let Pdu::EndOfData { serial, .. } = pdu {
                            notified_serial = *serial;
                        }
                    }
                }
                Err(PduError::Io(msg))
                    if msg.contains("timed out")
                        || msg.contains("WouldBlock")
                        || msg.contains("Resource temporarily unavailable") =>
                {
                    // Idle: push a notify if the world moved on.
                    let current = self.serial();
                    if current != notified_serial {
                        if let Some(pdu) = self.notify_pdu() {
                            write_half
                                .write_all(&pdu.encode())
                                .map_err(|e| PduError::Io(e.to_string()))?;
                            write_half
                                .flush()
                                .map_err(|e| PduError::Io(e.to_string()))?;
                            notified_serial = current;
                        }
                    }
                }
                Err(PduError::Io(_)) => return Ok(()), // closed
                Err(e) => {
                    let report = Pdu::ErrorReport {
                        code: ErrorCode::CorruptData,
                        erroneous_pdu: Vec::new(),
                        text: e.to_string(),
                    };
                    let _ = write_half.write_all(&report.encode());
                    return Err(e);
                }
            }
        }
    }

    /// Serve one router connection until it closes: read a query,
    /// write the response PDUs, repeat.
    pub fn serve_connection<S: Read + Write>(&self, mut stream: S) -> Result<(), PduError> {
        let mut buf = Vec::new();
        loop {
            let query = match read_pdu(&mut stream, &mut buf) {
                Ok(pdu) => pdu,
                Err(PduError::Io(_)) => return Ok(()), // clean close
                Err(e) => {
                    // Protocol error: report and drop the session.
                    let report = Pdu::ErrorReport {
                        code: ErrorCode::CorruptData,
                        erroneous_pdu: Vec::new(),
                        text: e.to_string(),
                    };
                    let _ = stream.write_all(&report.encode());
                    return Err(e);
                }
            };
            for pdu in self.handle_query(&query) {
                stream
                    .write_all(&pdu.encode())
                    .map_err(|e| PduError::Io(e.to_string()))?;
            }
            stream.flush().map_err(|e| PduError::Io(e.to_string()))?;
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the PDU codec.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ripki_net::Asn;

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().unwrap(),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    #[test]
    fn empty_cache_reports_no_data() {
        let cache = CacheServer::new(7);
        let out = cache.handle_query(&Pdu::ResetQuery);
        assert!(matches!(
            out[0],
            Pdu::ErrorReport {
                code: ErrorCode::NoDataAvailable,
                ..
            }
        ));
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        assert!(matches!(
            out[0],
            Pdu::ErrorReport {
                code: ErrorCode::NoDataAvailable,
                ..
            }
        ));
    }

    #[test]
    fn reset_query_returns_everything() {
        let cache = CacheServer::new(7);
        let serial = cache.update([vrp("10.0.0.0/16", 16, 1), vrp("2001:db8::/32", 48, 2)]);
        assert_eq!(serial, 1);
        let out = cache.handle_query(&Pdu::ResetQuery);
        assert_eq!(out.len(), 4); // response + 2 prefixes + EOD
        assert!(matches!(out[0], Pdu::CacheResponse { session_id: 7 }));
        assert!(matches!(
            out[3],
            Pdu::EndOfData {
                serial: 1,
                session_id: 7
            }
        ));
        let announce_count = out
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Pdu::Ipv4Prefix { announce: true, .. } | Pdu::Ipv6Prefix { announce: true, .. }
                )
            })
            .count();
        assert_eq!(announce_count, 2);
    }

    #[test]
    fn serial_query_current_gets_empty_delta() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        assert_eq!(out.len(), 2);
        assert!(matches!(out[1], Pdu::EndOfData { serial: 1, .. }));
    }

    #[test]
    fn serial_query_gets_incremental_delta() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        cache.update([vrp("10.0.0.0/16", 16, 1), vrp("12.0.0.0/16", 16, 3)]);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        // response + announce 12/16 + withdraw 11/16 + EOD
        assert_eq!(out.len(), 4);
        let announces: Vec<_> = out
            .iter()
            .filter_map(|p| match p {
                Pdu::Ipv4Prefix {
                    announce, prefix, ..
                } => Some((*announce, *prefix)),
                _ => None,
            })
            .collect();
        assert!(announces.contains(&(true, "12.0.0.0".parse().unwrap())));
        assert!(announces.contains(&(false, "11.0.0.0".parse().unwrap())));
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 2, .. })));
    }

    #[test]
    fn multi_step_deltas_chain() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]); // serial 1
        cache.update([vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]); // 2
        cache.update([vrp("11.0.0.0/16", 16, 2)]); // 3: withdraw 10/16
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        let (mut ann, mut wit) = (0, 0);
        for p in &out {
            if let Pdu::Ipv4Prefix { announce, .. } = p {
                if *announce {
                    ann += 1;
                } else {
                    wit += 1;
                }
            }
        }
        assert_eq!((ann, wit), (1, 1));
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 3, .. })));
    }

    #[test]
    fn stale_serial_triggers_cache_reset() {
        let cache = CacheServer::new(7).with_max_history(2);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        for i in 0..5 {
            cache.update([vrp(&format!("10.{i}.0.0/16"), 16, 1)]);
        }
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
        // Future serial likewise.
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 99,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
    }

    #[test]
    fn session_mismatch_is_corrupt_data() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 8,
            serial: 1,
        });
        assert!(matches!(
            out[0],
            Pdu::ErrorReport {
                code: ErrorCode::CorruptData,
                ..
            }
        ));
    }

    #[test]
    fn unexpected_pdu_is_invalid_request() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let out = cache.handle_query(&Pdu::CacheReset);
        assert!(matches!(
            out[0],
            Pdu::ErrorReport {
                code: ErrorCode::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn identical_update_produces_empty_delta() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        assert_eq!(out.len(), 2); // response + EOD only
        assert_eq!(cache.serial(), 2);
        assert_eq!(cache.vrp_count(), 1);
    }

    #[test]
    fn install_snapshot_contiguous_serial_yields_delta() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(5, [vrp("10.0.0.0/16", 16, 1)]));
        assert_eq!(cache.serial(), 5);
        assert!(cache.install_snapshot(6, [vrp("11.0.0.0/16", 16, 2)]));
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 5,
        });
        // response + announce 11/16 + withdraw 10/16 + EOD
        assert_eq!(out.len(), 4);
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 6, .. })));
    }

    #[test]
    fn install_snapshot_serial_jump_resets_history() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(1, [vrp("10.0.0.0/16", 16, 1)]));
        assert!(cache.install_snapshot(2, [vrp("11.0.0.0/16", 16, 2)]));
        // Jump past 3: history must be discarded, not chained.
        assert!(cache.install_snapshot(9, [vrp("12.0.0.0/16", 16, 3)]));
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 2,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
        // Full refetch still serves the latest set.
        let out = cache.handle_query(&Pdu::ResetQuery);
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 9, .. })));
    }

    #[test]
    fn apply_delta_streams_incremental_changes() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(3, [vrp("10.0.0.0/16", 16, 1)]));
        assert!(cache.apply_delta(
            4,
            &[vrp("11.0.0.0/16", 16, 2)],
            &[vrp("10.0.0.0/16", 16, 1)]
        ));
        assert_eq!(cache.serial(), 4);
        assert_eq!(cache.vrp_count(), 1);
        // A router at serial 3 syncs with exactly the streamed delta.
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 3,
        });
        assert_eq!(out.len(), 4); // response + announce + withdraw + EOD
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 4, .. })));
        // The resulting set matches what install_snapshot would serve.
        let reset = cache.handle_query(&Pdu::ResetQuery);
        let announced: Vec<_> = reset
            .iter()
            .filter_map(|p| match p {
                Pdu::Ipv4Prefix { prefix, .. } => Some(*prefix),
                _ => None,
            })
            .collect();
        assert_eq!(
            announced,
            vec!["11.0.0.0".parse::<std::net::Ipv4Addr>().unwrap()]
        );
    }

    #[test]
    fn apply_delta_rejects_non_contiguous_serials() {
        let cache = CacheServer::new(7);
        // No data yet: stream refused, caller must install a snapshot.
        assert!(!cache.apply_delta(1, &[vrp("10.0.0.0/16", 16, 1)], &[]));
        assert!(cache.install_snapshot(1, [vrp("10.0.0.0/16", 16, 1)]));
        // Serial jump and same-serial replay are refused.
        assert!(!cache.apply_delta(5, &[vrp("11.0.0.0/16", 16, 2)], &[]));
        assert!(!cache.apply_delta(1, &[vrp("11.0.0.0/16", 16, 2)], &[]));
        assert_eq!(cache.vrp_count(), 1);
        // The wrap step is numerically contiguous but must be refused.
        let wrap_cache = CacheServer::new(7);
        assert!(wrap_cache.install_snapshot(u32::MAX, [vrp("10.0.0.0/16", 16, 1)]));
        assert!(!wrap_cache.apply_delta(0, &[vrp("11.0.0.0/16", 16, 2)], &[]));
    }

    #[test]
    fn apply_delta_is_idempotent_on_redundant_changes() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(1, [vrp("10.0.0.0/16", 16, 1)]));
        // Announce an already-present VRP, withdraw an absent one.
        assert!(cache.apply_delta(
            2,
            &[vrp("10.0.0.0/16", 16, 1)],
            &[vrp("99.0.0.0/16", 16, 9)]
        ));
        assert_eq!(cache.vrp_count(), 1);
        // The history entry carries no spurious changes: a router at 1
        // gets an empty delta.
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        assert_eq!(out.len(), 2); // response + EOD only
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 2, .. })));
    }

    #[test]
    fn install_snapshot_same_serial_is_noop() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(3, [vrp("10.0.0.0/16", 16, 1)]));
        assert!(!cache.install_snapshot(3, [vrp("11.0.0.0/16", 16, 2)]));
        assert_eq!(cache.vrp_count(), 1);
    }

    #[test]
    fn install_update_prefers_delta_falls_back_to_snapshot() {
        let cache = CacheServer::new(7);
        let p3 = VrpPayload::new(3, [vrp("10.0.0.0/16", 16, 1)]);
        assert!(cache.install_payload(&p3));
        assert_eq!(cache.serial(), 3);
        assert_eq!(cache.payload(), Some(p3.clone()));

        // Contiguous update: the delta path applies and routers at
        // serial 3 sync incrementally.
        let p4 = VrpPayload::new(4, [vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        let update = PayloadUpdate::from_previous(&p3, p4.clone());
        assert!(update.delta.is_some());
        assert!(cache.install_update(&update));
        assert_eq!(cache.payload(), Some(p4.clone()));
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 3,
        });
        assert_eq!(out.len(), 3); // response + announce 11/16 + EOD
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 4, .. })));

        // Epoch jump: the delta cannot chain, the snapshot path takes
        // over, and stale routers are forced through a Cache Reset.
        let p9 = VrpPayload::new(9, [vrp("12.0.0.0/16", 16, 3)]);
        let jump = PayloadUpdate::from_previous(&p4, p9.clone());
        assert!(cache.install_update(&jump));
        assert_eq!(cache.payload(), Some(p9));
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 4,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);

        // Same-epoch replay is a no-op.
        let replay = PayloadUpdate::snapshot(VrpPayload::new(9, [vrp("13.0.0.0/16", 16, 4)]));
        assert!(!cache.install_update(&replay));
        assert_eq!(cache.vrp_count(), 1);
    }

    #[test]
    fn payload_is_none_before_first_install() {
        let cache = CacheServer::new(7);
        assert_eq!(cache.payload(), None);
    }

    #[test]
    fn serial_lt_follows_rfc1982() {
        assert!(serial_lt(1, 2));
        assert!(!serial_lt(2, 1));
        assert!(!serial_lt(5, 5));
        // Wrap-adjacent: MAX is "less than" 0 in sequence space.
        assert!(serial_lt(u32::MAX, 0));
        assert!(!serial_lt(0, u32::MAX));
        // Half-space edge: exactly 2^31 apart is NOT less-than.
        assert!(!serial_lt(0, 1 << 31));
        assert!(serial_lt(0, (1 << 31) - 1));
    }

    #[test]
    fn install_snapshot_wrap_forces_cache_reset() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(u32::MAX - 1, [vrp("10.0.0.0/16", 16, 1)]));
        assert!(cache.install_snapshot(u32::MAX, [vrp("11.0.0.0/16", 16, 2)]));
        // Pre-wrap serials still sync incrementally.
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX - 1,
        });
        assert!(matches!(
            out.last(),
            Some(Pdu::EndOfData {
                serial: u32::MAX,
                ..
            })
        ));
        // The wrap itself is numerically contiguous but must reset.
        assert!(cache.install_snapshot(0, [vrp("12.0.0.0/16", 16, 3)]));
        assert_eq!(cache.serial(), 0);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
        // A full refetch recovers and serves the post-wrap serial.
        let out = cache.handle_query(&Pdu::ResetQuery);
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 0, .. })));
    }

    #[test]
    fn update_wrap_forces_cache_reset() {
        let cache = CacheServer::new(7);
        assert!(cache.install_snapshot(u32::MAX, [vrp("10.0.0.0/16", 16, 1)]));
        // Self-incrementing update crosses the wrap.
        let serial = cache.update([vrp("11.0.0.0/16", 16, 2)]);
        assert_eq!(serial, 0);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
        // Post-wrap deltas chain normally again.
        cache.update([vrp("12.0.0.0/16", 16, 3)]);
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        assert!(matches!(out.last(), Some(Pdu::EndOfData { serial: 1, .. })));
    }

    #[test]
    fn future_serial_is_explicit_cache_reset() {
        let cache = CacheServer::new(7);
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        cache.update([vrp("11.0.0.0/16", 16, 2)]);
        // serial 3 is in the cache's future per RFC 1982.
        let out = cache.handle_query(&Pdu::SerialQuery {
            session_id: 7,
            serial: 3,
        });
        assert_eq!(out, vec![Pdu::CacheReset]);
    }
}
