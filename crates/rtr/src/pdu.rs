//! RFC 6810 PDU wire format.
//!
//! Every PDU starts with a common 8-byte header:
//!
//! ```text
//! 0         8        16                31
//! +---------+---------+----------------+
//! | version | pdu type|  session id    |   (session field doubles as
//! +---------+---------+----------------+    error code / zero)
//! |              length                 |   (total, including header)
//! +-------------------------------------+
//! ```
//!
//! Encoding and decoding are exact: unknown versions, unknown types,
//! short buffers, and length mismatches all surface as typed
//! [`PduError`]s — a router must be able to send a precise Error Report.

use bytes::{Buf, BufMut, BytesMut};
use ripki_net::Asn;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// RFC 6810 is protocol version 0.
pub const PROTOCOL_VERSION: u8 = 0;

/// Header size in bytes.
pub const HEADER_LEN: usize = 8;

/// Hard cap on PDU length we will accept (Error Reports carry text and
/// an encapsulated PDU; anything bigger than this is corrupt).
pub const MAX_PDU_LEN: usize = 64 * 1024;

/// RFC 6810 §10 error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// 0: Corrupt Data.
    CorruptData,
    /// 1: Internal Error.
    InternalError,
    /// 2: No Data Available.
    NoDataAvailable,
    /// 3: Invalid Request.
    InvalidRequest,
    /// 4: Unsupported Protocol Version.
    UnsupportedVersion,
    /// 5: Unsupported PDU Type.
    UnsupportedPduType,
    /// 6: Withdrawal of Unknown Record.
    WithdrawalOfUnknown,
    /// 7: Duplicate Announcement Received.
    DuplicateAnnouncement,
}

impl ErrorCode {
    /// The wire value.
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::CorruptData => 0,
            ErrorCode::InternalError => 1,
            ErrorCode::NoDataAvailable => 2,
            ErrorCode::InvalidRequest => 3,
            ErrorCode::UnsupportedVersion => 4,
            ErrorCode::UnsupportedPduType => 5,
            ErrorCode::WithdrawalOfUnknown => 6,
            ErrorCode::DuplicateAnnouncement => 7,
        }
    }

    /// Parse a wire value.
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        Some(match code {
            0 => ErrorCode::CorruptData,
            1 => ErrorCode::InternalError,
            2 => ErrorCode::NoDataAvailable,
            3 => ErrorCode::InvalidRequest,
            4 => ErrorCode::UnsupportedVersion,
            5 => ErrorCode::UnsupportedPduType,
            6 => ErrorCode::WithdrawalOfUnknown,
            7 => ErrorCode::DuplicateAnnouncement,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::CorruptData => "corrupt data",
            ErrorCode::InternalError => "internal error",
            ErrorCode::NoDataAvailable => "no data available",
            ErrorCode::InvalidRequest => "invalid request",
            ErrorCode::UnsupportedVersion => "unsupported protocol version",
            ErrorCode::UnsupportedPduType => "unsupported PDU type",
            ErrorCode::WithdrawalOfUnknown => "withdrawal of unknown record",
            ErrorCode::DuplicateAnnouncement => "duplicate announcement received",
        };
        f.write_str(s)
    }
}

/// A parsed PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pdu {
    /// Type 0: the cache tells the router new data exists.
    SerialNotify {
        /// Cache session.
        session_id: u16,
        /// Latest serial at the cache.
        serial: u32,
    },
    /// Type 1: the router asks for deltas since `serial`.
    SerialQuery {
        /// Session the serial belongs to.
        session_id: u16,
        /// Last serial the router holds.
        serial: u32,
    },
    /// Type 2: the router asks for everything.
    ResetQuery,
    /// Type 3: the cache starts answering a query.
    CacheResponse {
        /// Cache session.
        session_id: u16,
    },
    /// Type 4: one IPv4 VRP record.
    Ipv4Prefix {
        /// `true` = announce, `false` = withdraw.
        announce: bool,
        /// Prefix length.
        prefix_len: u8,
        /// Max length.
        max_len: u8,
        /// The prefix bits.
        prefix: Ipv4Addr,
        /// Origin AS.
        asn: Asn,
    },
    /// Type 6: one IPv6 VRP record.
    Ipv6Prefix {
        /// `true` = announce, `false` = withdraw.
        announce: bool,
        /// Prefix length.
        prefix_len: u8,
        /// Max length.
        max_len: u8,
        /// The prefix bits.
        prefix: Ipv6Addr,
        /// Origin AS.
        asn: Asn,
    },
    /// Type 7: the cache finished answering; `serial` is now current.
    EndOfData {
        /// Cache session.
        session_id: u16,
        /// Serial the router should store.
        serial: u32,
    },
    /// Type 8: the cache cannot serve deltas; router must Reset Query.
    CacheReset,
    /// Type 10: something went wrong.
    ErrorReport {
        /// What went wrong.
        code: ErrorCode,
        /// The PDU that caused it, verbatim (may be empty).
        erroneous_pdu: Vec<u8>,
        /// Diagnostic text (may be empty).
        text: String,
    },
}

/// Decoding / framing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PduError {
    /// Fewer bytes than a header.
    Truncated,
    /// Version byte other than 0.
    BadVersion(u8),
    /// Unknown PDU type byte.
    UnknownType(u8),
    /// Header length field disagrees with the type's required size or
    /// exceeds [`MAX_PDU_LEN`].
    BadLength {
        /// Type byte of the offending PDU.
        pdu_type: u8,
        /// The length the header claimed.
        length: u32,
    },
    /// Reserved fields had non-zero content or enum fields were invalid.
    Malformed(&'static str),
    /// I/O failure underneath (message carries `io::Error` text).
    Io(String),
}

impl fmt::Display for PduError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PduError::Truncated => write!(f, "truncated PDU"),
            PduError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            PduError::UnknownType(t) => write!(f, "unknown PDU type {t}"),
            PduError::BadLength { pdu_type, length } => {
                write!(f, "bad length {length} for PDU type {pdu_type}")
            }
            PduError::Malformed(what) => write!(f, "malformed PDU: {what}"),
            PduError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for PduError {}

impl Pdu {
    /// The wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Pdu::SerialNotify { .. } => 0,
            Pdu::SerialQuery { .. } => 1,
            Pdu::ResetQuery => 2,
            Pdu::CacheResponse { .. } => 3,
            Pdu::Ipv4Prefix { .. } => 4,
            Pdu::Ipv6Prefix { .. } => 6,
            Pdu::EndOfData { .. } => 7,
            Pdu::CacheReset => 8,
            Pdu::ErrorReport { .. } => 10,
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        let (session, body): (u16, BytesMut) = match self {
            Pdu::SerialNotify { session_id, serial } | Pdu::SerialQuery { session_id, serial } => {
                let mut b = BytesMut::with_capacity(4);
                b.put_u32(*serial);
                (*session_id, b)
            }
            Pdu::ResetQuery | Pdu::CacheReset => (0, BytesMut::new()),
            Pdu::CacheResponse { session_id } => (*session_id, BytesMut::new()),
            Pdu::Ipv4Prefix {
                announce,
                prefix_len,
                max_len,
                prefix,
                asn,
            } => {
                let mut b = BytesMut::with_capacity(12);
                b.put_u8(*announce as u8);
                b.put_u8(*prefix_len);
                b.put_u8(*max_len);
                b.put_u8(0);
                b.put_slice(&prefix.octets());
                b.put_u32(asn.value());
                (0, b)
            }
            Pdu::Ipv6Prefix {
                announce,
                prefix_len,
                max_len,
                prefix,
                asn,
            } => {
                let mut b = BytesMut::with_capacity(24);
                b.put_u8(*announce as u8);
                b.put_u8(*prefix_len);
                b.put_u8(*max_len);
                b.put_u8(0);
                b.put_slice(&prefix.octets());
                b.put_u32(asn.value());
                (0, b)
            }
            Pdu::EndOfData { session_id, serial } => {
                let mut b = BytesMut::with_capacity(4);
                b.put_u32(*serial);
                (*session_id, b)
            }
            Pdu::ErrorReport {
                code,
                erroneous_pdu,
                text,
            } => {
                let mut b = BytesMut::with_capacity(8 + erroneous_pdu.len() + text.len());
                b.put_u32(erroneous_pdu.len() as u32);
                b.put_slice(erroneous_pdu);
                b.put_u32(text.len() as u32);
                b.put_slice(text.as_bytes());
                (code.code(), b)
            }
        };
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u8(self.type_byte());
        buf.put_u16(session);
        buf.put_u32((HEADER_LEN + body.len()) as u32);
        buf.extend_from_slice(&body);
        buf.to_vec()
    }

    /// Decode one PDU from the front of `buf`. Returns the PDU and the
    /// number of bytes consumed, or `Ok(None)` if more bytes are needed.
    pub fn decode(buf: &[u8]) -> Result<Option<(Pdu, usize)>, PduError> {
        // The slice pattern both proves the bounds and names the whole
        // fixed header at once — no indexing, no panic path.
        let &[version, pdu_type, s0, s1, l0, l1, l2, l3, ..] = buf else {
            return Ok(None);
        };
        if version != PROTOCOL_VERSION {
            return Err(PduError::BadVersion(version));
        }
        let session = u16::from_be_bytes([s0, s1]);
        let length = u32::from_be_bytes([l0, l1, l2, l3]);
        if (length as usize) < HEADER_LEN || length as usize > MAX_PDU_LEN {
            return Err(PduError::BadLength { pdu_type, length });
        }
        if buf.len() < length as usize {
            return Ok(None);
        }
        let Some(mut body) = buf.get(HEADER_LEN..length as usize) else {
            return Ok(None); // unreachable: length bounds checked above
        };
        let expect_len = |want: usize| -> Result<(), PduError> {
            if length as usize == HEADER_LEN + want {
                Ok(())
            } else {
                Err(PduError::BadLength { pdu_type, length })
            }
        };
        let pdu = match pdu_type {
            0 | 1 => {
                expect_len(4)?;
                let serial = body.get_u32();
                if pdu_type == 0 {
                    Pdu::SerialNotify {
                        session_id: session,
                        serial,
                    }
                } else {
                    Pdu::SerialQuery {
                        session_id: session,
                        serial,
                    }
                }
            }
            2 => {
                expect_len(0)?;
                Pdu::ResetQuery
            }
            3 => {
                expect_len(0)?;
                Pdu::CacheResponse {
                    session_id: session,
                }
            }
            4 => {
                expect_len(12)?;
                let flags = body.get_u8();
                if flags > 1 {
                    return Err(PduError::Malformed("flags must be 0 or 1"));
                }
                let prefix_len = body.get_u8();
                let max_len = body.get_u8();
                let _zero = body.get_u8();
                if prefix_len > 32 || max_len > 32 {
                    return Err(PduError::Malformed("IPv4 length fields > 32"));
                }
                let mut octets = [0u8; 4];
                body.copy_to_slice(&mut octets);
                let asn = Asn::new(body.get_u32());
                Pdu::Ipv4Prefix {
                    announce: flags == 1,
                    prefix_len,
                    max_len,
                    prefix: Ipv4Addr::from(octets),
                    asn,
                }
            }
            6 => {
                expect_len(24)?;
                let flags = body.get_u8();
                if flags > 1 {
                    return Err(PduError::Malformed("flags must be 0 or 1"));
                }
                let prefix_len = body.get_u8();
                let max_len = body.get_u8();
                let _zero = body.get_u8();
                if prefix_len > 128 || max_len > 128 {
                    return Err(PduError::Malformed("IPv6 length fields > 128"));
                }
                let mut octets = [0u8; 16];
                body.copy_to_slice(&mut octets);
                let asn = Asn::new(body.get_u32());
                Pdu::Ipv6Prefix {
                    announce: flags == 1,
                    prefix_len,
                    max_len,
                    prefix: Ipv6Addr::from(octets),
                    asn,
                }
            }
            7 => {
                expect_len(4)?;
                Pdu::EndOfData {
                    session_id: session,
                    serial: body.get_u32(),
                }
            }
            8 => {
                expect_len(0)?;
                Pdu::CacheReset
            }
            10 => {
                if body.remaining() < 4 {
                    return Err(PduError::BadLength { pdu_type, length });
                }
                let pdu_len = body.get_u32() as usize;
                let erroneous_pdu = body
                    .get(..pdu_len)
                    .ok_or(PduError::BadLength { pdu_type, length })?
                    .to_vec();
                if body.remaining() < pdu_len + 4 {
                    return Err(PduError::BadLength { pdu_type, length });
                }
                body.advance(pdu_len);
                let text_len = body.get_u32() as usize;
                if body.remaining() != text_len {
                    return Err(PduError::BadLength { pdu_type, length });
                }
                let text = body
                    .get(..text_len)
                    .map(|raw| String::from_utf8_lossy(raw).into_owned())
                    .ok_or(PduError::BadLength { pdu_type, length })?;
                let code = ErrorCode::from_code(session)
                    .ok_or(PduError::Malformed("unknown error code"))?;
                Pdu::ErrorReport {
                    code,
                    erroneous_pdu,
                    text,
                }
            }
            other => return Err(PduError::UnknownType(other)),
        };
        Ok(Some((pdu, length as usize)))
    }
}

/// Blocking framed reader: pull bytes from `r` until one complete PDU is
/// available in `buf`, then decode and drain it. `buf` carries leftover
/// bytes between calls (RTR responses arrive as back-to-back PDUs).
pub fn read_pdu<R: std::io::Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<Pdu, PduError> {
    loop {
        match Pdu::decode(buf)? {
            Some((pdu, used)) => {
                buf.drain(..used);
                return Ok(pdu);
            }
            None => {
                let mut chunk = [0u8; 4096];
                let n = r
                    .read(&mut chunk)
                    .map_err(|e| PduError::Io(e.to_string()))?;
                if n == 0 {
                    return Err(PduError::Io("connection closed mid-PDU".into()));
                }
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk));
            }
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the PDU codec.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip(pdu: Pdu) {
        let bytes = pdu.encode();
        let (back, used) = Pdu::decode(&bytes).unwrap().unwrap();
        assert_eq!(back, pdu);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn all_types_roundtrip() {
        roundtrip(Pdu::SerialNotify {
            session_id: 7,
            serial: 42,
        });
        roundtrip(Pdu::SerialQuery {
            session_id: 7,
            serial: 42,
        });
        roundtrip(Pdu::ResetQuery);
        roundtrip(Pdu::CacheResponse { session_id: 9 });
        roundtrip(Pdu::Ipv4Prefix {
            announce: true,
            prefix_len: 16,
            max_len: 24,
            prefix: "85.1.0.0".parse().unwrap(),
            asn: Asn::new(64500),
        });
        roundtrip(Pdu::Ipv4Prefix {
            announce: false,
            prefix_len: 0,
            max_len: 0,
            prefix: "0.0.0.0".parse().unwrap(),
            asn: Asn::new(0),
        });
        roundtrip(Pdu::Ipv6Prefix {
            announce: true,
            prefix_len: 32,
            max_len: 48,
            prefix: "2001:db8::".parse().unwrap(),
            asn: Asn::new(u32::MAX),
        });
        roundtrip(Pdu::EndOfData {
            session_id: 1,
            serial: u32::MAX,
        });
        roundtrip(Pdu::CacheReset);
        roundtrip(Pdu::ErrorReport {
            code: ErrorCode::NoDataAvailable,
            erroneous_pdu: vec![1, 2, 3],
            text: "nothing cached yet".into(),
        });
        roundtrip(Pdu::ErrorReport {
            code: ErrorCode::CorruptData,
            erroneous_pdu: vec![],
            text: String::new(),
        });
    }

    #[test]
    fn header_layout_is_exact() {
        let bytes = Pdu::SerialQuery {
            session_id: 0x1234,
            serial: 0xdead_beef,
        }
        .encode();
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes[0], 0); // version
        assert_eq!(bytes[1], 1); // type
        assert_eq!(&bytes[2..4], &[0x12, 0x34]);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 12]); // length
        assert_eq!(&bytes[8..12], &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn ipv4_prefix_layout() {
        let bytes = Pdu::Ipv4Prefix {
            announce: true,
            prefix_len: 24,
            max_len: 24,
            prefix: "192.0.2.0".parse().unwrap(),
            asn: Asn::new(65000),
        }
        .encode();
        assert_eq!(bytes.len(), 20);
        assert_eq!(bytes[8], 1); // flags
        assert_eq!(bytes[9], 24); // prefix len
        assert_eq!(bytes[10], 24); // max len
        assert_eq!(bytes[11], 0); // zero
        assert_eq!(&bytes[12..16], &[192, 0, 2, 0]);
    }

    #[test]
    fn partial_input_asks_for_more() {
        let bytes = Pdu::ResetQuery.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Pdu::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn concatenated_pdus_decode_sequentially() {
        let mut stream = Pdu::CacheResponse { session_id: 3 }.encode();
        stream.extend(
            Pdu::Ipv4Prefix {
                announce: true,
                prefix_len: 16,
                max_len: 16,
                prefix: "10.0.0.0".parse().unwrap(),
                asn: Asn::new(1),
            }
            .encode(),
        );
        stream.extend(
            Pdu::EndOfData {
                session_id: 3,
                serial: 1,
            }
            .encode(),
        );
        let mut offset = 0;
        let mut seen = Vec::new();
        while let Some((pdu, used)) = Pdu::decode(&stream[offset..]).unwrap() {
            seen.push(pdu);
            offset += used;
        }
        assert_eq!(offset, stream.len());
        assert_eq!(seen.len(), 3);
        assert!(matches!(seen[2], Pdu::EndOfData { serial: 1, .. }));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Pdu::ResetQuery.encode();
        bytes[0] = 1;
        assert_eq!(Pdu::decode(&bytes), Err(PduError::BadVersion(1)));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = Pdu::ResetQuery.encode();
        bytes[1] = 99;
        assert_eq!(Pdu::decode(&bytes), Err(PduError::UnknownType(99)));
    }

    #[test]
    fn bad_lengths_rejected() {
        // Claim a longer body than the type allows.
        let mut bytes = Pdu::ResetQuery.encode();
        bytes[7] = 13;
        bytes.extend_from_slice(&[0; 5]);
        assert!(matches!(
            Pdu::decode(&bytes),
            Err(PduError::BadLength { pdu_type: 2, .. })
        ));
        // Length smaller than the header.
        let mut bytes = Pdu::ResetQuery.encode();
        bytes[7] = 4;
        assert!(matches!(
            Pdu::decode(&bytes),
            Err(PduError::BadLength { .. })
        ));
    }

    #[test]
    fn malformed_fields_rejected() {
        let mut bytes = Pdu::Ipv4Prefix {
            announce: true,
            prefix_len: 16,
            max_len: 16,
            prefix: "10.0.0.0".parse().unwrap(),
            asn: Asn::new(1),
        }
        .encode();
        bytes[8] = 2; // flags
        assert_eq!(
            Pdu::decode(&bytes),
            Err(PduError::Malformed("flags must be 0 or 1"))
        );
        let mut bytes = Pdu::Ipv4Prefix {
            announce: true,
            prefix_len: 16,
            max_len: 16,
            prefix: "10.0.0.0".parse().unwrap(),
            asn: Asn::new(1),
        }
        .encode();
        bytes[9] = 33; // prefix_len
        assert!(matches!(Pdu::decode(&bytes), Err(PduError::Malformed(_))));
    }

    #[test]
    fn error_report_with_nested_lengths() {
        let inner = Pdu::SerialQuery {
            session_id: 1,
            serial: 2,
        }
        .encode();
        let report = Pdu::ErrorReport {
            code: ErrorCode::InvalidRequest,
            erroneous_pdu: inner.clone(),
            text: "don't".into(),
        };
        let bytes = report.encode();
        let (back, _) = Pdu::decode(&bytes).unwrap().unwrap();
        match back {
            Pdu::ErrorReport {
                code,
                erroneous_pdu,
                text,
            } => {
                assert_eq!(code, ErrorCode::InvalidRequest);
                assert_eq!(erroneous_pdu, inner);
                assert_eq!(text, "don't");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in 0..8u16 {
            let ec = ErrorCode::from_code(code).unwrap();
            assert_eq!(ec.code(), code);
            assert!(!ec.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_code(8), None);
    }
}
