//! # ripki-rtr
//!
//! The RPKI-to-Router protocol, RFC 6810 (version 0): how validated ROA
//! payloads travel from a relying-party cache to BGP routers. The paper's
//! measurement step 4 "follows the necessary steps to perform origin
//! validation at BGP routers" — in deployments, this protocol *is* that
//! step's delivery path (cf. RTRlib, the authors' own implementation).
//!
//! Three layers, all synchronous std-networking (per the workspace's
//! no-async policy — an RTR session is one long-lived TCP connection with
//! strictly alternating request/response phases):
//!
//! * [`pdu`] — the nine PDU types with exact RFC 6810 wire encoding,
//!   parsing, and error reporting;
//! * [`cache`] — the cache side: versioned VRP state with serial-numbered
//!   incremental deltas, answering Reset/Serial Queries;
//! * [`client`] — the router side: sync state machine producing a VRP set
//!   ready to feed [`ripki_bgp::RouteOriginValidator`].
//!
//! Works over any `Read + Write` transport: TCP sockets, Unix socket
//! pairs (used by the tests), or in-memory streams.
//!
//! ## Omissions
//!
//! * No RFC 8210 (version 1) router-key PDUs; origin validation only.
//! * Serial Notify push is supported on TCP transports
//!   ([`cache::CacheServer::serve_tcp_with_notify`]); the generic
//!   `Read + Write` server is strictly request/response.
//! * No TCP-AO/SSH transport security (RFC 6810 §7 lists them as
//!   options; the transport is pluggable).

pub mod cache;
pub mod client;
pub mod listener;
pub mod pdu;

pub use cache::CacheServer;
pub use client::{Backoff, Client, ClientError, PersistentClient, SyncOutcome};
pub use listener::{ListenerConfig, RtrListener};
pub use pdu::{ErrorCode, Pdu, PduError, PROTOCOL_VERSION};
