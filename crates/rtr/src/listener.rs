//! Non-blocking accept front end for the RTR cache.
//!
//! The serving planes share one accept discipline: readiness-driven,
//! shutdown-aware, watermark-capped. The HTTP side gets it from
//! `ripki-serve`'s reactor; this module gives the side RTR cache the
//! same behaviour without inverting the crate layering (rtr sits below
//! serve), using its own minimal `poll(2)` binding — `std` links the
//! platform libc, so the symbol resolves without any new dependency.
//!
//! RTR sessions themselves stay synchronous (one long-lived connection
//! with strictly alternating phases, per the crate's no-async policy):
//! each accepted session runs [`CacheServer::serve_tcp_with_notify`] on
//! its own thread. What changes is the front:
//!
//! * accept never blocks — the acceptor polls with a bounded timeout
//!   and re-checks its shutdown flag every interval, so a stop request
//!   takes effect without the connect-to-self trick;
//! * a `max_sessions` watermark bounds the session-thread count; at the
//!   watermark newcomers are refused immediately (their connection is
//!   dropped before the RTR handshake, which a compliant router treats
//!   as a cache failure and retries against per RFC 6810 §6).

use crate::cache::CacheServer;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Wait until `fd` is readable or `timeout` passes. Returns whether the
/// descriptor became ready; `EINTR` retries, other errors map to ready
/// (the subsequent `accept` will surface them properly).
fn wait_readable(fd: RawFd, timeout: Duration) -> bool {
    let mut entry = PollFd {
        fd,
        events: POLLIN,
        revents: 0,
    };
    let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
    loop {
        // SAFETY: `entry` is a live stack value passed with length 1;
        // the kernel only writes its `revents` field.
        let rc = unsafe { poll(std::ptr::addr_of_mut!(entry), 1, timeout_ms) };
        if rc >= 0 {
            return rc > 0;
        }
        if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted {
            return true;
        }
    }
}

/// Tunables of the RTR accept front end.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Concurrent RTR sessions allowed; newcomers beyond the watermark
    /// are refused before the handshake.
    pub max_sessions: usize,
    /// How often the acceptor re-checks its shutdown flag while no
    /// connection is arriving.
    pub poll_interval: Duration,
    /// Serial-Notify poll interval handed to each session (see
    /// [`CacheServer::serve_tcp_with_notify`]).
    pub session_poll: Duration,
}

impl Default for ListenerConfig {
    fn default() -> ListenerConfig {
        ListenerConfig {
            max_sessions: 1024,
            poll_interval: Duration::from_millis(200),
            session_poll: Duration::from_secs(1),
        }
    }
}

/// A running RTR accept loop; dropping it (or calling
/// [`RtrListener::shutdown`]) stops accepting and joins the acceptor.
/// Live sessions drain on their own as routers disconnect.
pub struct RtrListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    refused: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl RtrListener {
    /// Take ownership of a bound listener and start accepting RTR
    /// sessions for `cache`.
    pub fn spawn(
        listener: TcpListener,
        cache: Arc<CacheServer>,
        config: ListenerConfig,
    ) -> io::Result<RtrListener> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let refused = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let sessions = Arc::clone(&sessions);
            let refused = Arc::clone(&refused);
            std::thread::Builder::new()
                .name("ripki-rtr-accept".into())
                .spawn(move || accept_loop(listener, cache, config, shutdown, sessions, refused))?
        };
        Ok(RtrListener {
            addr,
            shutdown,
            sessions,
            refused,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// RTR sessions currently being served.
    pub fn session_count(&self) -> usize {
        // Relaxed: an independent statistic; readers tolerate slack.
        self.sessions.load(Ordering::Relaxed)
    }

    /// Connections refused at the `max_sessions` watermark so far.
    pub fn refused_count(&self) -> usize {
        // Relaxed: an independent statistic; readers tolerate slack.
        self.refused.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the acceptor thread. Established
    /// sessions keep running until their routers disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RtrListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    cache: Arc<CacheServer>,
    config: ListenerConfig,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    refused: Arc<AtomicUsize>,
) {
    let interval = config.poll_interval.max(Duration::from_millis(10));
    while !shutdown.load(Ordering::SeqCst) {
        if !wait_readable(listener.as_raw_fd(), interval) {
            continue; // timeout: re-check the shutdown flag
        }
        loop {
            match listener.accept() {
                Ok((conn, _)) => {
                    // Relaxed suffices for the watermark: the counter is
                    // the only shared state and an off-by-one admission
                    // under a race is harmless.
                    if sessions.load(Ordering::Relaxed) >= config.max_sessions.max(1) {
                        // Relaxed: independent statistic, see above.
                        refused.fetch_add(1, Ordering::Relaxed);
                        drop(conn); // refused before the handshake
                        continue;
                    }
                    // The session thread does blocking I/O again; undo
                    // the inherited non-blocking mode where it applies.
                    let _ = conn.set_nonblocking(false);
                    // Relaxed: independent statistic, see above.
                    sessions.fetch_add(1, Ordering::Relaxed);
                    let cache = Arc::clone(&cache);
                    let session_gauge = Arc::clone(&sessions);
                    let poll = config.session_poll;
                    let spawned = std::thread::Builder::new()
                        .name("ripki-rtr-session".into())
                        .spawn(move || {
                            let _ = cache.serve_tcp_with_notify(conn, poll);
                            // Relaxed: independent statistic, see above.
                            session_gauge.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        // Thread exhaustion: treat like a watermark
                        // refusal (the accepted stream already dropped
                        // with the failed spawn's closure).
                        // Relaxed: independent statistic, see above.
                        sessions.fetch_sub(1, Ordering::Relaxed);
                        // Relaxed: independent statistic, see above.
                        refused.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets serving code.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::client::{Client, SyncOutcome};
    use ripki_bgp::rov::VrpTriple;
    use std::net::TcpStream;

    fn cache_with_vrps() -> Arc<CacheServer> {
        let cache = Arc::new(CacheServer::new(0x2222));
        let vrp = VrpTriple {
            asn: "AS65000".parse().unwrap(),
            prefix: "192.0.2.0/24".parse().unwrap(),
            max_length: 24,
        };
        cache.install_snapshot(1, [vrp]);
        cache
    }

    #[test]
    fn listener_serves_a_full_rtr_sync() {
        let cache = cache_with_vrps();
        let bound = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut listener =
            RtrListener::spawn(bound, Arc::clone(&cache), ListenerConfig::default()).unwrap();
        let stream = TcpStream::connect(listener.addr()).unwrap();
        let mut client = Client::new(stream);
        let SyncOutcome::Updated { serial, .. } = client.sync().unwrap();
        assert_eq!(serial, 1);
        assert_eq!(client.vrps().len(), 1);
        listener.shutdown();
    }

    #[test]
    fn watermark_refuses_extra_sessions_but_keeps_serving() {
        let cache = cache_with_vrps();
        let bound = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = ListenerConfig {
            max_sessions: 1,
            poll_interval: Duration::from_millis(20),
            ..ListenerConfig::default()
        };
        let mut listener = RtrListener::spawn(bound, Arc::clone(&cache), config).unwrap();
        // First session occupies the single slot.
        let stream = TcpStream::connect(listener.addr()).unwrap();
        let mut client = Client::new(stream);
        let SyncOutcome::Updated { .. } = client.sync().unwrap();
        assert_eq!(client.vrps().len(), 1);
        // While it is held open (the client keeps the socket), a second
        // connection must be refused: its socket closes without a
        // single RTR PDU arriving.
        let mut second = TcpStream::connect(listener.addr()).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            use std::io::Read;
            let mut byte = [0u8; 1];
            match second.read(&mut byte) {
                Ok(0) => break, // refused: clean close, no PDU
                Ok(_) => panic!("refused session received data"),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "refusal did not surface in time"
                    );
                }
                Err(_) => break, // reset also counts as refusal
            }
        }
        assert!(listener.refused_count() >= 1);
        // The original session still works after the refusal.
        let SyncOutcome::Updated { serial, .. } = client.sync().unwrap();
        assert_eq!(serial, 1);
        drop(client);
        listener.shutdown();
    }

    #[test]
    fn shutdown_returns_promptly_without_a_wakeup_connection() {
        let cache = cache_with_vrps();
        let bound = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = ListenerConfig {
            poll_interval: Duration::from_millis(20),
            ..ListenerConfig::default()
        };
        let mut listener = RtrListener::spawn(bound, cache, config).unwrap();
        let started = std::time::Instant::now();
        listener.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown must not wait for a connection"
        );
    }
}
