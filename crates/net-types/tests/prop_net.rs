//! Property-based tests for `ripki-net` invariants.

use proptest::prelude::*;
use ripki_net::{Asn, AsnRange, AsnSet, IpPrefix, Ipv4Prefix, Ipv6Prefix, PrefixSet, PrefixTrie};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_v4_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr::from(bits), len).unwrap())
}

fn arb_v6_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(bits, len)| Ipv6Prefix::new(Ipv6Addr::from(bits), len).unwrap())
}

fn arb_prefix() -> impl Strategy<Value = IpPrefix> {
    prop_oneof![
        arb_v4_prefix().prop_map(IpPrefix::V4),
        arb_v6_prefix().prop_map(IpPrefix::V6),
    ]
}

fn arb_addr() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<u32>().prop_map(|b| IpAddr::V4(Ipv4Addr::from(b))),
        any::<u128>().prop_map(|b| IpAddr::V6(Ipv6Addr::from(b))),
    ]
}

proptest! {
    /// Display → parse is the identity for all prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: IpPrefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    /// A prefix always covers itself and anything it covers has >= length.
    #[test]
    fn covers_reflexive_and_monotone(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) {
            prop_assert!(a.len() <= b.len());
            if a.len() == b.len() {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Covering is antisymmetric: mutual cover implies equality.
    #[test]
    fn covers_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// The parent of a prefix covers it.
    #[test]
    fn parent_covers_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(&p));
            prop_assert_eq!(parent.len() + 1, p.len());
        } else {
            prop_assert_eq!(p.len(), 0);
        }
    }

    /// contains_addr agrees with covers-of-host-route.
    #[test]
    fn contains_addr_equals_covers_host(p in arb_prefix(), addr in arb_addr()) {
        prop_assert_eq!(p.contains_addr(addr), p.covers(&IpPrefix::host(addr)));
    }

    /// Trie longest-match returns the maximum-length member of covering().
    #[test]
    fn trie_longest_match_is_max_covering(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..120),
        addr in any::<u32>(),
    ) {
        let trie: PrefixTrie<usize> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| (IpPrefix::V4(*p), i))
            .collect();
        let addr = IpAddr::V4(Ipv4Addr::from(addr));
        let covering = trie.covering_addr(addr);
        // covering() is ordered most-general first.
        for w in covering.windows(2) {
            prop_assert!(w[0].0.len() < w[1].0.len());
            prop_assert!(w[0].0.covers(&w[1].0));
        }
        let lm = trie.longest_match_addr(addr).map(|(p, _)| p);
        prop_assert_eq!(lm, covering.last().map(|(p, _)| *p));
    }

    /// Every inserted prefix is retrievable exactly, and len() matches the
    /// number of distinct keys.
    #[test]
    fn trie_insert_get_consistency(
        prefixes in prop::collection::vec(arb_prefix(), 0..150),
    ) {
        let mut trie = PrefixTrie::new();
        let mut seen = std::collections::HashSet::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
            seen.insert(*p);
        }
        prop_assert_eq!(trie.len(), seen.len());
        for p in &seen {
            prop_assert!(trie.get(p).is_some());
        }
        prop_assert_eq!(trie.iter().len(), seen.len());
    }

    /// covered_by and covering are adjoint: q covers p in trie iff p
    /// appears in covered_by(q).
    #[test]
    fn trie_covered_by_matches_filter(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..100),
        qbits in any::<u32>(),
        qlen in 0u8..=24,
    ) {
        let trie: PrefixTrie<()> = prefixes
            .iter()
            .map(|p| (IpPrefix::V4(*p), ()))
            .collect();
        let q = IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::from(qbits), qlen).unwrap());
        let mut got: Vec<IpPrefix> =
            trie.covered_by(&q).into_iter().map(|(p, _)| p).collect();
        got.sort();
        let mut want: Vec<IpPrefix> = trie
            .iter()
            .into_iter()
            .map(|(p, _)| p)
            .filter(|p| q.covers(p))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// PrefixSet normalisation is idempotent and order-insensitive.
    #[test]
    fn prefix_set_canonical(mut prefixes in prop::collection::vec(arb_prefix(), 0..60)) {
        let a = PrefixSet::from_prefixes(prefixes.clone());
        prefixes.reverse();
        let b = PrefixSet::from_prefixes(prefixes.clone());
        prop_assert_eq!(&a, &b);
        let c = PrefixSet::from_prefixes(a.members().iter().copied());
        prop_assert_eq!(&a, &c);
        // No member covers another.
        for (i, x) in a.members().iter().enumerate() {
            for (j, y) in a.members().iter().enumerate() {
                if i != j {
                    prop_assert!(!x.covers(y));
                }
            }
        }
    }

    /// Union encompasses both operands; encompasses is transitive through
    /// union.
    #[test]
    fn prefix_set_union_encompasses(
        xs in prop::collection::vec(arb_prefix(), 0..30),
        ys in prop::collection::vec(arb_prefix(), 0..30),
    ) {
        let a = PrefixSet::from_prefixes(xs);
        let b = PrefixSet::from_prefixes(ys);
        let u = a.union(&b);
        prop_assert!(u.encompasses(&a));
        prop_assert!(u.encompasses(&b));
    }

    /// AsnSet membership agrees with the raw ranges it was built from.
    #[test]
    fn asn_set_membership(
        ranges in prop::collection::vec((any::<u32>(), any::<u32>()), 0..40),
        probe in any::<u32>(),
    ) {
        let ranges: Vec<AsnRange> = ranges
            .into_iter()
            .map(|(a, b)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                AsnRange::new(Asn::new(lo), Asn::new(hi)).unwrap()
            })
            .collect();
        let set = AsnSet::from_ranges(ranges.clone());
        let want = ranges.iter().any(|r| r.contains(Asn::new(probe)));
        prop_assert_eq!(set.contains(Asn::new(probe)), want);
        // Merged ranges are sorted and disjoint with gaps.
        for w in set.ranges().windows(2) {
            prop_assert!(w[0].end.value() + 1 < w[1].start.value());
        }
    }

    /// ASN display/parse round-trip.
    #[test]
    fn asn_roundtrip(v in any::<u32>()) {
        let asn = Asn::new(v);
        prop_assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }
}
