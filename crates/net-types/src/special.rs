//! IANA special-purpose address registries.
//!
//! The RiPKI methodology (step 2) excludes "all special-purpose IPv4 and
//! IPv6 addresses reserved by the IANA" from the DNS answers before
//! mapping them to BGP prefixes. This module reproduces the two registries
//! (RFC 6890 and successors) as they stood around the paper's measurement
//! period (2014–2015).
//!
//! The table entries carry the registry name so that reports can say *why*
//! an address was excluded, mirroring the paper's "0.07% incorrect DNS
//! answers" accounting.

use crate::prefix::IpPrefix;
use crate::trie::PrefixTrie;
use std::net::IpAddr;
use std::sync::OnceLock;

/// One entry of a special-purpose registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecialEntry {
    /// The reserved block, e.g. `192.0.2.0/24`.
    pub block: &'static str,
    /// The registry name, e.g. "Documentation (TEST-NET-1)".
    pub name: &'static str,
    /// Whether addresses in the block can ever appear as a *global*
    /// destination (e.g. `192.88.99.0/24` 6to4 relay anycast was globally
    /// routable). The pipeline excludes non-global blocks.
    pub globally_reachable: bool,
}

/// IPv4 special-purpose address registry (RFC 6890 et al.).
pub const IPV4_SPECIAL: &[SpecialEntry] = &[
    SpecialEntry {
        block: "0.0.0.0/8",
        name: "This host on this network (RFC 1122)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "10.0.0.0/8",
        name: "Private-Use (RFC 1918)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "100.64.0.0/10",
        name: "Shared Address Space / CGN (RFC 6598)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "127.0.0.0/8",
        name: "Loopback (RFC 1122)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "169.254.0.0/16",
        name: "Link Local (RFC 3927)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "172.16.0.0/12",
        name: "Private-Use (RFC 1918)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "192.0.0.0/24",
        name: "IETF Protocol Assignments (RFC 6890)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "192.0.2.0/24",
        name: "Documentation TEST-NET-1 (RFC 5737)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "192.88.99.0/24",
        name: "6to4 Relay Anycast (RFC 3068)",
        globally_reachable: true,
    },
    SpecialEntry {
        block: "192.168.0.0/16",
        name: "Private-Use (RFC 1918)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "198.18.0.0/15",
        name: "Benchmarking (RFC 2544)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "198.51.100.0/24",
        name: "Documentation TEST-NET-2 (RFC 5737)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "203.0.113.0/24",
        name: "Documentation TEST-NET-3 (RFC 5737)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "224.0.0.0/4",
        name: "Multicast (RFC 5771)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "240.0.0.0/4",
        name: "Reserved (RFC 1112)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "255.255.255.255/32",
        name: "Limited Broadcast (RFC 919)",
        globally_reachable: false,
    },
];

/// IPv6 special-purpose address registry (RFC 6890 et al.).
pub const IPV6_SPECIAL: &[SpecialEntry] = &[
    SpecialEntry {
        block: "::/128",
        name: "Unspecified Address (RFC 4291)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "::1/128",
        name: "Loopback Address (RFC 4291)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "::ffff:0:0/96",
        name: "IPv4-mapped Address (RFC 4291)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "64:ff9b::/96",
        name: "IPv4-IPv6 Translation (RFC 6052)",
        globally_reachable: true,
    },
    SpecialEntry {
        block: "100::/64",
        name: "Discard-Only Address Block (RFC 6666)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "2001::/32",
        name: "TEREDO (RFC 4380)",
        globally_reachable: true,
    },
    SpecialEntry {
        block: "2001:2::/48",
        name: "Benchmarking (RFC 5180)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "2001:db8::/32",
        name: "Documentation (RFC 3849)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "2001:10::/28",
        name: "ORCHID (RFC 4843)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "2002::/16",
        name: "6to4 (RFC 3056)",
        globally_reachable: true,
    },
    SpecialEntry {
        block: "fc00::/7",
        name: "Unique-Local (RFC 4193)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "fe80::/10",
        name: "Linked-Scoped Unicast (RFC 4291)",
        globally_reachable: false,
    },
    SpecialEntry {
        block: "ff00::/8",
        name: "Multicast (RFC 4291)",
        globally_reachable: false,
    },
];

/// Pre-built lookup structure over both registries.
pub struct SpecialRegistry {
    trie: PrefixTrie<&'static SpecialEntry>,
}

impl SpecialRegistry {
    fn build() -> SpecialRegistry {
        let mut trie = PrefixTrie::new();
        for entry in IPV4_SPECIAL.iter().chain(IPV6_SPECIAL.iter()) {
            let prefix: IpPrefix = entry
                .block
                .parse()
                .expect("registry literals are well-formed");
            trie.insert(prefix, entry);
        }
        SpecialRegistry { trie }
    }

    /// The process-wide registry instance.
    pub fn global() -> &'static SpecialRegistry {
        static REGISTRY: OnceLock<SpecialRegistry> = OnceLock::new();
        REGISTRY.get_or_init(SpecialRegistry::build)
    }

    /// The most specific special-purpose entry covering `addr`, if any.
    pub fn lookup(&self, addr: IpAddr) -> Option<&'static SpecialEntry> {
        self.trie.longest_match_addr(addr).map(|(_, entry)| *entry)
    }

    /// Whether `addr` must be excluded from measurements as an invalid DNS
    /// answer (special-purpose and not globally reachable).
    pub fn is_invalid_answer(&self, addr: IpAddr) -> bool {
        self.lookup(addr)
            .is_some_and(|entry| !entry.globally_reachable)
    }
}

/// Convenience: whether `addr` is an acceptable, globally-routable DNS
/// answer for the measurement pipeline.
pub fn is_global_unicast(addr: IpAddr) -> bool {
    !SpecialRegistry::global().is_invalid_answer(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn registry_literals_parse() {
        // `SpecialRegistry::build` would panic otherwise, but make the
        // check explicit and count entries.
        let reg = SpecialRegistry::global();
        assert!(reg.lookup(a("10.1.2.3")).is_some());
        assert_eq!(IPV4_SPECIAL.len() + IPV6_SPECIAL.len(), 16 + 13);
    }

    #[test]
    fn private_and_documentation_are_invalid() {
        let reg = SpecialRegistry::global();
        for s in [
            "10.0.0.1",
            "172.16.0.1",
            "172.31.255.255",
            "192.168.1.1",
            "127.0.0.1",
            "169.254.0.5",
            "192.0.2.1",
            "198.51.100.7",
            "203.0.113.250",
            "224.0.0.1",
            "240.0.0.1",
            "255.255.255.255",
            "0.1.2.3",
            "100.64.0.1",
            "198.18.0.1",
        ] {
            assert!(reg.is_invalid_answer(a(s)), "{s} should be invalid");
        }
    }

    #[test]
    fn boundaries_of_172_slash_12() {
        let reg = SpecialRegistry::global();
        assert!(reg.is_invalid_answer(a("172.16.0.0")));
        assert!(reg.is_invalid_answer(a("172.31.255.255")));
        assert!(!reg.is_invalid_answer(a("172.15.255.255")));
        assert!(!reg.is_invalid_answer(a("172.32.0.0")));
    }

    #[test]
    fn global_unicast_passes() {
        for s in [
            "8.8.8.8",
            "93.184.216.34",
            "1.1.1.1",
            "2606:2800:220:1::1946",
        ] {
            assert!(is_global_unicast(a(s)), "{s} should be global");
        }
    }

    #[test]
    fn v6_special_blocks_are_invalid() {
        let reg = SpecialRegistry::global();
        for s in [
            "::",
            "::1",
            "::ffff:10.0.0.1",
            "100::1",
            "2001:db8::1",
            "2001:2::1",
            "fc00::1",
            "fdff::1",
            "fe80::1",
            "ff02::1",
        ] {
            assert!(reg.is_invalid_answer(a(s)), "{s} should be invalid");
        }
    }

    #[test]
    fn globally_reachable_transition_blocks_pass() {
        // 6to4, Teredo, and NAT64 well-known prefixes were globally routed;
        // the paper's exclusion list targets *reserved* space only.
        for s in ["2002::1", "2001::1", "64:ff9b::a00:1"] {
            assert!(is_global_unicast(a(s)), "{s} should pass");
        }
        // But the benchmarking block inside 2001::/23 region stays invalid.
        assert!(!is_global_unicast(a("2001:2::5")));
    }

    #[test]
    fn lookup_reports_most_specific_entry() {
        let reg = SpecialRegistry::global();
        // 2001:2::/48 (benchmarking) is inside no other block; Teredo is
        // 2001::/32 and must not swallow it.
        assert_eq!(
            reg.lookup(a("2001:2::1")).unwrap().name,
            "Benchmarking (RFC 5180)"
        );
        assert_eq!(reg.lookup(a("2001::1")).unwrap().name, "TEREDO (RFC 4380)");
        assert!(reg.lookup(a("8.8.8.8")).is_none());
    }
}
