//! CIDR prefixes for IPv4 and IPv6.
//!
//! A prefix is stored canonically: all bits below the prefix length are
//! forced to zero, so two prefixes that denote the same address block
//! always compare equal. The RiPKI pipeline manipulates prefixes in every
//! step after DNS resolution: mapping addresses to covering prefixes,
//! comparing the prefix footprints of `www`/non-`www` names (Fig 1), and
//! RFC 6811 origin validation (Fig 2).

use crate::error::NetParseError;
use crate::Family;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IPv4 prefix in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

/// An IPv6 prefix in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    bits: u128,
    len: u8,
}

/// Mask with the top `len` bits of a 32-bit word set.
fn mask4(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// Mask with the top `len` bits of a 128-bit word set.
fn mask6(len: u8) -> u128 {
    debug_assert!(len <= 128);
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

impl Ipv4Prefix {
    /// Construct from an address and a length, canonicalising host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Ipv4Prefix, NetParseError> {
        if len > 32 {
            return Err(NetParseError::InvalidPrefixLength(format!("/{len}")));
        }
        Ok(Ipv4Prefix {
            bits: u32::from(addr) & mask4(len),
            len,
        })
    }

    /// The all-IPv4 prefix `0.0.0.0/0`.
    pub const fn default_route() -> Ipv4Prefix {
        Ipv4Prefix { bits: 0, len: 0 }
    }

    /// A host route (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// The network address (lowest address in the block).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The highest address in the block.
    pub fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask4(self.len))
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // mask length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The raw network bits, left-aligned.
    pub fn raw_bits(&self) -> u32 {
        self.bits
    }

    /// Whether `addr` falls within this prefix.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask4(self.len)) == self.bits
    }

    /// Whether `other` is equal to or more specific than `self`
    /// (i.e. `self` *covers* `other`).
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.bits & mask4(self.len)) == self.bits
    }

    /// The immediate parent prefix (one bit shorter), or `None` for `/0`.
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv4Prefix {
                bits: self.bits & mask4(len),
                len,
            })
        }
    }

    /// The two child prefixes (one bit longer), or `None` for `/32`.
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            None
        } else {
            let len = self.len + 1;
            let left = Ipv4Prefix {
                bits: self.bits,
                len,
            };
            let right = Ipv4Prefix {
                bits: self.bits | (1u32 << (32 - len)),
                len,
            };
            Some((left, right))
        }
    }

    /// Value of the bit at position `index` (0 = most significant).
    pub fn bit(&self, index: u8) -> bool {
        debug_assert!(index < 32);
        (self.bits >> (31 - index)) & 1 == 1
    }

    /// Number of addresses in the block, as a `u64` (to represent `/0`).
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }
}

impl Ipv6Prefix {
    /// Construct from an address and a length, canonicalising host bits.
    ///
    /// Returns an error if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Ipv6Prefix, NetParseError> {
        if len > 128 {
            return Err(NetParseError::InvalidPrefixLength(format!("/{len}")));
        }
        Ok(Ipv6Prefix {
            bits: u128::from(addr) & mask6(len),
            len,
        })
    }

    /// The all-IPv6 prefix `::/0`.
    pub const fn default_route() -> Ipv6Prefix {
        Ipv6Prefix { bits: 0, len: 0 }
    }

    /// A host route (`/128`) for a single address.
    pub fn host(addr: Ipv6Addr) -> Ipv6Prefix {
        Ipv6Prefix {
            bits: u128::from(addr),
            len: 128,
        }
    }

    /// The network address (lowest address in the block).
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// The highest address in the block.
    pub fn last_addr(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits | !mask6(self.len))
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // mask length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The raw network bits, left-aligned.
    pub fn raw_bits(&self) -> u128 {
        self.bits
    }

    /// Whether `addr` falls within this prefix.
    pub fn contains_addr(&self, addr: Ipv6Addr) -> bool {
        (u128::from(addr) & mask6(self.len)) == self.bits
    }

    /// Whether `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        self.len <= other.len && (other.bits & mask6(self.len)) == self.bits
    }

    /// The immediate parent prefix (one bit shorter), or `None` for `/0`.
    pub fn parent(&self) -> Option<Ipv6Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv6Prefix {
                bits: self.bits & mask6(len),
                len,
            })
        }
    }

    /// The two child prefixes (one bit longer), or `None` for `/128`.
    pub fn children(&self) -> Option<(Ipv6Prefix, Ipv6Prefix)> {
        if self.len == 128 {
            None
        } else {
            let len = self.len + 1;
            let left = Ipv6Prefix {
                bits: self.bits,
                len,
            };
            let right = Ipv6Prefix {
                bits: self.bits | (1u128 << (128 - len)),
                len,
            };
            Some((left, right))
        }
    }

    /// Value of the bit at position `index` (0 = most significant).
    pub fn bit(&self, index: u8) -> bool {
        debug_assert!(index < 128);
        (self.bits >> (127 - index)) & 1 == 1
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = NetParseError;

    fn from_str(s: &str) -> Result<Ipv4Prefix, NetParseError> {
        let (addr, len) = split_cidr(s)?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetParseError::InvalidAddress(addr.to_string()))?;
        Ipv4Prefix::new(addr, len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = NetParseError;

    fn from_str(s: &str) -> Result<Ipv6Prefix, NetParseError> {
        let (addr, len) = split_cidr(s)?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| NetParseError::InvalidAddress(addr.to_string()))?;
        Ipv6Prefix::new(addr, len)
    }
}

fn split_cidr(s: &str) -> Result<(&str, u8), NetParseError> {
    let (addr, len) = s
        .split_once('/')
        .ok_or_else(|| NetParseError::Malformed(s.to_string()))?;
    let len: u8 = len
        .parse()
        .map_err(|_| NetParseError::InvalidPrefixLength(s.to_string()))?;
    Ok((addr, len))
}

/// Ordering: by network bits, then by length (shorter first). This makes a
/// sorted list of prefixes place covering prefixes immediately before the
/// prefixes they cover, which [`crate::set::PrefixSet`] exploits.
impl Ord for Ipv4Prefix {
    fn cmp(&self, other: &Ipv4Prefix) -> Ordering {
        self.bits.cmp(&other.bits).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Ipv4Prefix {
    fn partial_cmp(&self, other: &Ipv4Prefix) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ipv6Prefix {
    fn cmp(&self, other: &Ipv6Prefix) -> Ordering {
        self.bits.cmp(&other.bits).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Ipv6Prefix {
    fn partial_cmp(&self, other: &Ipv6Prefix) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A prefix of either address family.
///
/// ```
/// use ripki_net::IpPrefix;
/// let p: IpPrefix = "192.0.2.0/24".parse().unwrap();
/// assert!(p.contains_addr("192.0.2.55".parse().unwrap()));
/// let p6: IpPrefix = "2001:db8::/32".parse().unwrap();
/// assert_eq!(p6.len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpPrefix {
    /// An IPv4 prefix.
    V4(Ipv4Prefix),
    /// An IPv6 prefix.
    V6(Ipv6Prefix),
}

impl IpPrefix {
    /// Construct from any IP address and a length.
    pub fn new(addr: IpAddr, len: u8) -> Result<IpPrefix, NetParseError> {
        match addr {
            IpAddr::V4(a) => Ipv4Prefix::new(a, len).map(IpPrefix::V4),
            IpAddr::V6(a) => Ipv6Prefix::new(a, len).map(IpPrefix::V6),
        }
    }

    /// A host route for a single address (`/32` or `/128`).
    pub fn host(addr: IpAddr) -> IpPrefix {
        match addr {
            IpAddr::V4(a) => IpPrefix::V4(Ipv4Prefix::host(a)),
            IpAddr::V6(a) => IpPrefix::V6(Ipv6Prefix::host(a)),
        }
    }

    /// The address family.
    pub fn family(&self) -> Family {
        match self {
            IpPrefix::V4(_) => Family::V4,
            IpPrefix::V6(_) => Family::V6,
        }
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // mask length, not a container
    pub fn len(&self) -> u8 {
        match self {
            IpPrefix::V4(p) => p.len(),
            IpPrefix::V6(p) => p.len(),
        }
    }

    /// True only for a default route of either family.
    pub fn is_default(&self) -> bool {
        self.len() == 0
    }

    /// The network address.
    pub fn network(&self) -> IpAddr {
        match self {
            IpPrefix::V4(p) => IpAddr::V4(p.network()),
            IpPrefix::V6(p) => IpAddr::V6(p.network()),
        }
    }

    /// Whether `addr` falls within this prefix. Always false across
    /// families.
    pub fn contains_addr(&self, addr: IpAddr) -> bool {
        match (self, addr) {
            (IpPrefix::V4(p), IpAddr::V4(a)) => p.contains_addr(a),
            (IpPrefix::V6(p), IpAddr::V6(a)) => p.contains_addr(a),
            _ => false,
        }
    }

    /// Whether `other` is equal to or more specific than `self`. Always
    /// false across families.
    pub fn covers(&self, other: &IpPrefix) -> bool {
        match (self, other) {
            (IpPrefix::V4(a), IpPrefix::V4(b)) => a.covers(b),
            (IpPrefix::V6(a), IpPrefix::V6(b)) => a.covers(b),
            _ => false,
        }
    }

    /// The immediate parent prefix, or `None` for a default route.
    pub fn parent(&self) -> Option<IpPrefix> {
        match self {
            IpPrefix::V4(p) => p.parent().map(IpPrefix::V4),
            IpPrefix::V6(p) => p.parent().map(IpPrefix::V6),
        }
    }

    /// The inner IPv4 prefix, if this is one.
    pub fn as_v4(&self) -> Option<&Ipv4Prefix> {
        match self {
            IpPrefix::V4(p) => Some(p),
            IpPrefix::V6(_) => None,
        }
    }

    /// The inner IPv6 prefix, if this is one.
    pub fn as_v6(&self) -> Option<&Ipv6Prefix> {
        match self {
            IpPrefix::V6(p) => Some(p),
            IpPrefix::V4(_) => None,
        }
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpPrefix::V4(p) => p.fmt(f),
            IpPrefix::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for IpPrefix {
    type Err = NetParseError;

    fn from_str(s: &str) -> Result<IpPrefix, NetParseError> {
        // IPv6 textual form always contains ':'.
        if s.contains(':') {
            s.parse::<Ipv6Prefix>().map(IpPrefix::V6)
        } else {
            s.parse::<Ipv4Prefix>().map(IpPrefix::V4)
        }
    }
}

impl From<Ipv4Prefix> for IpPrefix {
    fn from(p: Ipv4Prefix) -> IpPrefix {
        IpPrefix::V4(p)
    }
}

impl From<Ipv6Prefix> for IpPrefix {
    fn from(p: Ipv6Prefix) -> IpPrefix {
        IpPrefix::V6(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        assert_eq!(p4("192.0.2.77/24"), p4("192.0.2.0/24"));
        assert_eq!(p6("2001:db8::dead:beef/32"), p6("2001:db8::/32"));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("::/129".parse::<Ipv6Prefix>().is_err());
        assert!("10.0.0.0/-1".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn rejects_missing_slash() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<IpPrefix>().is_err());
    }

    #[test]
    fn rejects_wrong_family_literal() {
        assert!("::1/128".parse::<Ipv4Prefix>().is_err());
        assert!("1.2.3.4/32".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "192.0.2.128/25",
            "203.0.113.7/32",
        ] {
            assert_eq!(s.parse::<Ipv4Prefix>().unwrap().to_string(), s);
        }
        for s in ["::/0", "2001:db8::/32", "fe80::/10", "::1/128"] {
            assert_eq!(s.parse::<Ipv6Prefix>().unwrap().to_string(), s);
        }
    }

    #[test]
    fn contains_addr_boundaries() {
        let p = p4("192.0.2.0/24");
        assert!(p.contains_addr("192.0.2.0".parse().unwrap()));
        assert!(p.contains_addr("192.0.2.255".parse().unwrap()));
        assert!(!p.contains_addr("192.0.3.0".parse().unwrap()));
        assert!(!p.contains_addr("192.0.1.255".parse().unwrap()));
    }

    #[test]
    fn default_route_contains_everything() {
        let d4 = Ipv4Prefix::default_route();
        assert!(d4.contains_addr("255.255.255.255".parse().unwrap()));
        assert!(d4.contains_addr("0.0.0.0".parse().unwrap()));
        let d6 = Ipv6Prefix::default_route();
        assert!(d6.contains_addr("::".parse().unwrap()));
        assert!(d6.contains_addr("ffff::1".parse().unwrap()));
    }

    #[test]
    fn covers_is_reflexive_and_length_ordered() {
        let a = p4("10.0.0.0/8");
        let b = p4("10.1.0.0/16");
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(!a.covers(&p4("11.0.0.0/16")));
    }

    #[test]
    fn covers_does_not_cross_families() {
        let a: IpPrefix = "0.0.0.0/0".parse().unwrap();
        let b: IpPrefix = "::/0".parse().unwrap();
        assert!(!a.covers(&b));
        assert!(!b.covers(&a));
        assert!(!a.contains_addr("::1".parse().unwrap()));
    }

    #[test]
    fn parent_and_children_invert() {
        let p = p4("192.0.2.128/25");
        assert_eq!(p.parent().unwrap(), p4("192.0.2.0/24"));
        let (l, r) = p4("192.0.2.0/24").children().unwrap();
        assert_eq!(l, p4("192.0.2.0/25"));
        assert_eq!(r, p4("192.0.2.128/25"));
        assert!(p4("1.2.3.4/32").children().is_none());
        assert!(Ipv4Prefix::default_route().parent().is_none());
    }

    #[test]
    fn children_v6() {
        let (l, r) = p6("2001:db8::/32").children().unwrap();
        assert_eq!(l, p6("2001:db8::/33"));
        assert_eq!(r, p6("2001:db8:8000::/33"));
        assert!(Ipv6Prefix::host("::1".parse().unwrap())
            .children()
            .is_none());
    }

    #[test]
    fn bit_indexing() {
        let p = p4("128.0.0.0/1");
        assert!(p.bit(0));
        let p = p4("64.0.0.0/2");
        assert!(!p.bit(0));
        assert!(p.bit(1));
        let p = p6("8000::/1");
        assert!(p.bit(0));
    }

    #[test]
    fn broadcast_and_counts() {
        let p = p4("192.0.2.0/24");
        assert_eq!(p.broadcast(), "192.0.2.255".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.address_count(), 256);
        assert_eq!(Ipv4Prefix::default_route().address_count(), 1u64 << 32);
        assert_eq!(
            p6("2001:db8::/127").last_addr(),
            "2001:db8::1".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn ordering_places_covering_before_covered() {
        let mut v = vec![p4("10.0.0.0/16"), p4("10.0.0.0/8"), p4("9.0.0.0/8")];
        v.sort();
        assert_eq!(
            v,
            vec![p4("9.0.0.0/8"), p4("10.0.0.0/8"), p4("10.0.0.0/16")]
        );
    }

    #[test]
    fn ip_prefix_dispatch() {
        let p: IpPrefix = "2001:db8::/48".parse().unwrap();
        assert_eq!(p.family(), Family::V6);
        assert_eq!(p.len(), 48);
        assert!(p.as_v6().is_some());
        assert!(p.as_v4().is_none());
        assert_eq!(p.parent().unwrap().to_string(), "2001:db8::/47");
        let h = IpPrefix::host("10.0.0.1".parse().unwrap());
        assert_eq!(h.to_string(), "10.0.0.1/32");
    }
}
