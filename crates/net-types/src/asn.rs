//! Autonomous System Numbers.
//!
//! BGP identifies networks by a 32-bit AS number (RFC 6793 extended the
//! original 16-bit space). The RiPKI methodology manipulates ASNs in three
//! places: extracting the origin AS from AS paths (step 3), matching origin
//! ASes against ROAs (step 4), and keyword-spotting AS assignment lists for
//! the CDN audit (§4.2).

use crate::error::NetParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit Autonomous System Number.
///
/// Displayed in the canonical `AS64496` notation ("asplain" with the `AS`
/// prefix). Parsing accepts both `AS64496` (case-insensitive) and bare
/// `64496`.
///
/// ```
/// use ripki_net::Asn;
/// let asn: Asn = "AS65000".parse().unwrap();
/// assert_eq!(asn, Asn::new(65000));
/// assert_eq!(asn.to_string(), "AS65000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(u32);

impl Asn {
    /// AS0, reserved by RFC 7607. A ROA for AS0 is a statement that the
    /// prefix must *not* be routed ("AS0 ROA").
    pub const RESERVED_AS0: Asn = Asn(0);

    /// Wrap a raw 32-bit AS number.
    pub const fn new(value: u32) -> Asn {
        Asn(value)
    }

    /// The raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is a 16-bit ("2-byte") AS number.
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Whether the ASN falls in an IANA private-use range
    /// (64512–65534 or 4200000000–4294967294, RFC 6996).
    pub fn is_private_use(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }

    /// Whether the ASN falls in a documentation range
    /// (64496–64511 or 65536–65551, RFC 5398).
    pub fn is_documentation(self) -> bool {
        (64496..=64511).contains(&self.0) || (65536..=65551).contains(&self.0)
    }

    /// Whether the ASN is reserved (AS0, AS23456 "AS_TRANS", 65535,
    /// 4294967295, or a private-use/documentation value).
    pub fn is_reserved(self) -> bool {
        self.0 == 0
            || self.0 == 23456
            || self.0 == 65535
            || self.0 == u32::MAX
            || self.is_private_use()
            || self.is_documentation()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Asn {
        Asn(value)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> u32 {
        asn.0
    }
}

impl FromStr for Asn {
    type Err = NetParseError;

    fn from_str(s: &str) -> Result<Asn, NetParseError> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .or_else(|| s.strip_prefix("aS"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetParseError::InvalidAsn(s.to_string()))
    }
}

/// An inclusive range of AS numbers, as used in RFC 3779 resource
/// extensions ("ASIdentifiers" may carry ranges, not just single ASNs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsnRange {
    /// Lowest ASN in the range.
    pub start: Asn,
    /// Highest ASN in the range (inclusive).
    pub end: Asn,
}

impl AsnRange {
    /// Build a range; `start` must not exceed `end`.
    pub fn new(start: Asn, end: Asn) -> Result<AsnRange, NetParseError> {
        if start > end {
            return Err(NetParseError::InvertedRange(format!("{start}-{end}")));
        }
        Ok(AsnRange { start, end })
    }

    /// A range holding a single ASN.
    pub fn single(asn: Asn) -> AsnRange {
        AsnRange {
            start: asn,
            end: asn,
        }
    }

    /// Whether `asn` falls within the range.
    pub fn contains(&self, asn: Asn) -> bool {
        self.start <= asn && asn <= self.end
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_range(&self, other: &AsnRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two ranges share at least one ASN.
    pub fn overlaps(&self, other: &AsnRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Number of ASNs in the range.
    pub fn len(&self) -> u64 {
        (self.end.value() as u64) - (self.start.value() as u64) + 1
    }

    /// Ranges are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for AsnRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

impl FromStr for AsnRange {
    type Err = NetParseError;

    /// Parses `AS10-AS20`, `10-20`, or a single `AS10`.
    fn from_str(s: &str) -> Result<AsnRange, NetParseError> {
        match s.split_once('-') {
            Some((a, b)) => AsnRange::new(a.trim().parse()?, b.trim().parse()?),
            None => Ok(AsnRange::single(s.trim().parse()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_and_prefixed() {
        assert_eq!("65000".parse::<Asn>().unwrap(), Asn::new(65000));
        assert_eq!("AS65000".parse::<Asn>().unwrap(), Asn::new(65000));
        assert_eq!("as65000".parse::<Asn>().unwrap(), Asn::new(65000));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ASfoo".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // > u32::MAX
    }

    #[test]
    fn parse_accepts_full_32bit_space() {
        assert_eq!("AS4294967295".parse::<Asn>().unwrap(), Asn::new(u32::MAX));
    }

    #[test]
    fn display_roundtrip() {
        let asn = Asn::new(3320);
        assert_eq!(asn.to_string(), "AS3320");
        assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn sixteen_bit_classification() {
        assert!(Asn::new(65535).is_16bit());
        assert!(!Asn::new(65536).is_16bit());
    }

    #[test]
    fn reserved_ranges() {
        assert!(Asn::RESERVED_AS0.is_reserved());
        assert!(Asn::new(23456).is_reserved()); // AS_TRANS
        assert!(Asn::new(64512).is_private_use());
        assert!(Asn::new(65534).is_private_use());
        assert!(!Asn::new(65535).is_private_use());
        assert!(Asn::new(65535).is_reserved());
        assert!(Asn::new(4_200_000_000).is_private_use());
        assert!(Asn::new(64496).is_documentation());
        assert!(Asn::new(65551).is_documentation());
        assert!(!Asn::new(3320).is_reserved());
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = AsnRange::new(Asn::new(10), Asn::new(20)).unwrap();
        assert!(r.contains(Asn::new(10)));
        assert!(r.contains(Asn::new(20)));
        assert!(!r.contains(Asn::new(21)));
        assert!(r.contains_range(&AsnRange::new(Asn::new(12), Asn::new(18)).unwrap()));
        assert!(!r.contains_range(&AsnRange::new(Asn::new(12), Asn::new(21)).unwrap()));
        assert!(r.overlaps(&AsnRange::new(Asn::new(20), Asn::new(30)).unwrap()));
        assert!(!r.overlaps(&AsnRange::new(Asn::new(21), Asn::new(30)).unwrap()));
    }

    #[test]
    fn range_rejects_inversion() {
        assert!(AsnRange::new(Asn::new(20), Asn::new(10)).is_err());
    }

    #[test]
    fn range_parse_and_display() {
        let r: AsnRange = "AS10-AS20".parse().unwrap();
        assert_eq!(r, AsnRange::new(Asn::new(10), Asn::new(20)).unwrap());
        assert_eq!(r.to_string(), "AS10-AS20");
        let single: AsnRange = "AS7".parse().unwrap();
        assert_eq!(single.to_string(), "AS7");
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn range_len_full_space() {
        let r = AsnRange::new(Asn::new(0), Asn::new(u32::MAX)).unwrap();
        assert_eq!(r.len(), 1u64 << 32);
    }
}
