//! A path-compressed binary radix trie ("Patricia trie") keyed by CIDR
//! prefixes.
//!
//! This is the workhorse of the RiPKI pipeline:
//!
//! * step 3 asks, for each resolved IP address, for **all covering
//!   prefixes** present in a BGP table dump ([`PrefixTrie::covering`]);
//! * step 4 (RFC 6811 origin validation) asks, for each announced prefix,
//!   for all **covering VRPs** ([`PrefixTrie::covering`] again);
//! * the ecosystem generator asks which allocations are **covered by** a
//!   block ([`PrefixTrie::covered_by`]).
//!
//! The trie stores IPv4 and IPv6 entries in two separate trees internally,
//! so cross-family queries never match. Nodes are path-compressed: a chain
//! of single-child internal nodes collapses into one node, which keeps
//! memory proportional to the number of stored prefixes rather than to the
//! address-space depth.

use crate::prefix::{IpPrefix, Ipv4Prefix, Ipv6Prefix};
use crate::Family;
use std::net::IpAddr;

/// Internal key: prefix bits left-aligned in 128 bits plus a length.
///
/// IPv4 prefixes are shifted into the top 32 bits; both families then share
/// one node representation while living in distinct trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    bits: u128,
    len: u8,
}

impl Key {
    fn from_v4(p: &Ipv4Prefix) -> Key {
        Key {
            bits: (p.raw_bits() as u128) << 96,
            len: p.len(),
        }
    }

    fn from_v6(p: &Ipv6Prefix) -> Key {
        Key {
            bits: p.raw_bits(),
            len: p.len(),
        }
    }

    fn from_prefix(p: &IpPrefix) -> Key {
        match p {
            IpPrefix::V4(p) => Key::from_v4(p),
            IpPrefix::V6(p) => Key::from_v6(p),
        }
    }

    fn to_prefix(self, family: Family) -> IpPrefix {
        match family {
            Family::V4 => IpPrefix::V4(
                Ipv4Prefix::new(((self.bits >> 96) as u32).into(), self.len)
                    .expect("key length is valid by construction"),
            ),
            Family::V6 => IpPrefix::V6(
                Ipv6Prefix::new(self.bits.into(), self.len)
                    .expect("key length is valid by construction"),
            ),
        }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    /// Whether `self` covers `other` (is equal or less specific).
    fn covers(&self, other: &Key) -> bool {
        self.len <= other.len && (other.bits & Key::mask(self.len)) == self.bits
    }

    /// Bit of `self.bits` at position `index` (0 = most significant).
    fn bit(&self, index: u8) -> bool {
        (self.bits >> (127 - index)) & 1 == 1
    }

    /// The longest prefix both keys share.
    fn common_prefix(&self, other: &Key) -> Key {
        let max = self.len.min(other.len);
        let diff = self.bits ^ other.bits;
        let agree = if diff == 0 {
            128
        } else {
            diff.leading_zeros() as u8
        };
        let len = agree.min(max);
        Key {
            bits: self.bits & Key::mask(len),
            len,
        }
    }
}

#[derive(Debug, Clone)]
struct Node<T> {
    key: Key,
    value: Option<T>,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

impl<T> Node<T> {
    fn leaf(key: Key, value: Option<T>) -> Box<Node<T>> {
        Box::new(Node {
            key,
            value,
            left: None,
            right: None,
        })
    }

    fn child_mut(&mut self, bit: bool) -> &mut Option<Box<Node<T>>> {
        if bit {
            &mut self.right
        } else {
            &mut self.left
        }
    }

    fn child(&self, bit: bool) -> Option<&Node<T>> {
        if bit {
            self.right.as_deref()
        } else {
            self.left.as_deref()
        }
    }
}

/// One tree (one address family).
#[derive(Debug, Clone)]
struct Tree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

impl<T> Default for Tree<T> {
    fn default() -> Tree<T> {
        Tree { root: None, len: 0 }
    }
}

impl<T> Tree<T> {
    fn insert(&mut self, key: Key, value: T) -> Option<T> {
        let replaced = Self::insert_rec(&mut self.root, key, value);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn insert_rec(slot: &mut Option<Box<Node<T>>>, key: Key, value: T) -> Option<T> {
        let Some(node) = slot else {
            *slot = Some(Node::leaf(key, Some(value)));
            return None;
        };
        if node.key == key {
            return node.value.replace(value);
        }
        if node.key.covers(&key) {
            // Descend; choose child by the first bit of `key` below the
            // node's length.
            let bit = key.bit(node.key.len);
            return Self::insert_rec(node.child_mut(bit), key, value);
        }
        if key.covers(&node.key) {
            // The new key becomes an ancestor of the existing node.
            let old = slot.take().expect("checked Some above");
            let bit = old.key.bit(key.len);
            let mut fresh = Node::leaf(key, Some(value));
            *fresh.child_mut(bit) = Some(old);
            *slot = Some(fresh);
            return None;
        }
        // Diverging keys: create a join node at the common prefix.
        let join = node.key.common_prefix(&key);
        let old = slot.take().expect("checked Some above");
        let mut fresh = Node::leaf(join, None);
        let old_bit = old.key.bit(join.len);
        *fresh.child_mut(old_bit) = Some(old);
        *fresh.child_mut(!old_bit) = Some(Node::leaf(key, Some(value)));
        *slot = Some(fresh);
        None
    }

    fn get(&self, key: Key) -> Option<&T> {
        let mut node = self.root.as_deref()?;
        loop {
            if node.key == key {
                return node.value.as_ref();
            }
            if !node.key.covers(&key) || node.key.len >= key.len {
                return None;
            }
            node = node.child(key.bit(node.key.len))?;
        }
    }

    fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        let mut node = self.root.as_deref_mut()?;
        loop {
            if node.key == key {
                return node.value.as_mut();
            }
            if !node.key.covers(&key) || node.key.len >= key.len {
                return None;
            }
            let bit = key.bit(node.key.len);
            node = node.child_mut(bit).as_deref_mut()?;
        }
    }

    fn remove(&mut self, key: Key) -> Option<T> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(slot: &mut Option<Box<Node<T>>>, key: Key) -> Option<T> {
        let node = slot.as_deref_mut()?;
        let removed = if node.key == key {
            node.value.take()
        } else if node.key.covers(&key) && node.key.len < key.len {
            let bit = key.bit(node.key.len);
            Self::remove_rec(node.child_mut(bit), key)
        } else {
            None
        };
        if removed.is_some() {
            Self::prune(slot);
        }
        removed
    }

    /// Collapse a valueless node with fewer than two children.
    fn prune(slot: &mut Option<Box<Node<T>>>) {
        let Some(node) = slot.as_deref_mut() else {
            return;
        };
        if node.value.is_some() {
            return;
        }
        match (node.left.is_some(), node.right.is_some()) {
            (false, false) => *slot = None,
            (true, false) => {
                let child = node.left.take().expect("checked above");
                *slot = Some(child);
            }
            (false, true) => {
                let child = node.right.take().expect("checked above");
                *slot = Some(child);
            }
            (true, true) => {}
        }
    }

    /// Visit every entry whose key covers `key`, most general first.
    fn covering<'a>(&'a self, key: Key, out: &mut Vec<(Key, &'a T)>) {
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if !n.key.covers(&key) {
                return;
            }
            if let Some(v) = &n.value {
                out.push((n.key, v));
            }
            if n.key.len >= key.len {
                return;
            }
            node = n.child(key.bit(n.key.len));
        }
    }

    /// Visit every entry whose key is covered by `key` (including equal).
    fn covered_by<'a>(&'a self, key: Key, out: &mut Vec<(Key, &'a T)>) {
        // Walk down while the node still covers the query region.
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if key.covers(&n.key) {
                Self::collect_subtree(n, out);
                return;
            }
            if !n.key.covers(&key) {
                return;
            }
            node = n.child(key.bit(n.key.len));
        }
    }

    fn collect_subtree<'a>(node: &'a Node<T>, out: &mut Vec<(Key, &'a T)>) {
        if let Some(v) = &node.value {
            out.push((node.key, v));
        }
        if let Some(l) = node.left.as_deref() {
            Self::collect_subtree(l, out);
        }
        if let Some(r) = node.right.as_deref() {
            Self::collect_subtree(r, out);
        }
    }

    fn longest_match(&self, key: Key) -> Option<(Key, &T)> {
        let mut best = None;
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if !n.key.covers(&key) {
                break;
            }
            if let Some(v) = &n.value {
                best = Some((n.key, v));
            }
            if n.key.len >= key.len {
                break;
            }
            node = n.child(key.bit(n.key.len));
        }
        best
    }

    fn iter<'a>(&'a self, out: &mut Vec<(Key, &'a T)>) {
        if let Some(root) = self.root.as_deref() {
            Self::collect_subtree(root, out);
        }
    }
}

/// A map from CIDR prefixes (of either family) to values, supporting the
/// covering/covered queries of longest-prefix routing.
///
/// ```
/// use ripki_net::{IpPrefix, PrefixTrie};
/// let mut t: PrefixTrie<&str> = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let addr: std::net::IpAddr = "10.1.2.3".parse().unwrap();
/// let (p, v) = t.longest_match_addr(addr).unwrap();
/// assert_eq!(*v, "fine");
/// assert_eq!(p, "10.1.0.0/16".parse::<IpPrefix>().unwrap());
/// assert_eq!(t.covering_addr(addr).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    v4: Tree<T>,
    v6: Tree<T>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> PrefixTrie<T> {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Create an empty trie.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie {
            v4: Tree::default(),
            v6: Tree::default(),
        }
    }

    fn tree(&self, family: Family) -> &Tree<T> {
        match family {
            Family::V4 => &self.v4,
            Family::V6 => &self.v6,
        }
    }

    fn tree_mut(&mut self, family: Family) -> &mut Tree<T> {
        match family {
            Family::V4 => &mut self.v4,
            Family::V6 => &mut self.v6,
        }
    }

    /// Insert a value under `prefix`, returning any value it replaces.
    pub fn insert(&mut self, prefix: IpPrefix, value: T) -> Option<T> {
        let key = Key::from_prefix(&prefix);
        self.tree_mut(prefix.family()).insert(key, value)
    }

    /// Exact lookup.
    pub fn get(&self, prefix: &IpPrefix) -> Option<&T> {
        self.tree(prefix.family()).get(Key::from_prefix(prefix))
    }

    /// Exact lookup, mutable. Lets table builders extend an existing
    /// entry in place instead of clone-and-reinsert.
    pub fn get_mut(&mut self, prefix: &IpPrefix) -> Option<&mut T> {
        self.tree_mut(prefix.family())
            .get_mut(Key::from_prefix(prefix))
    }

    /// Remove the entry stored exactly at `prefix`.
    pub fn remove(&mut self, prefix: &IpPrefix) -> Option<T> {
        let key = Key::from_prefix(prefix);
        self.tree_mut(prefix.family()).remove(key)
    }

    /// Number of entries across both families.
    pub fn len(&self) -> usize {
        self.v4.len + self.v6.len
    }

    /// Whether the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries whose prefix covers `prefix` (equal or less specific),
    /// ordered most general first.
    pub fn covering(&self, prefix: &IpPrefix) -> Vec<(IpPrefix, &T)> {
        let key = Key::from_prefix(prefix);
        let family = prefix.family();
        let mut out = Vec::new();
        self.tree(family).covering(key, &mut out);
        out.into_iter()
            .map(|(k, v)| (k.to_prefix(family), v))
            .collect()
    }

    /// All entries whose prefix covers the single address `addr`.
    pub fn covering_addr(&self, addr: IpAddr) -> Vec<(IpPrefix, &T)> {
        self.covering(&IpPrefix::host(addr))
    }

    /// All entries covered by `prefix` (equal or more specific).
    pub fn covered_by(&self, prefix: &IpPrefix) -> Vec<(IpPrefix, &T)> {
        let key = Key::from_prefix(prefix);
        let family = prefix.family();
        let mut out = Vec::new();
        self.tree(family).covered_by(key, &mut out);
        out.into_iter()
            .map(|(k, v)| (k.to_prefix(family), v))
            .collect()
    }

    /// The most specific entry covering `prefix`, if any.
    pub fn longest_match(&self, prefix: &IpPrefix) -> Option<(IpPrefix, &T)> {
        let key = Key::from_prefix(prefix);
        let family = prefix.family();
        self.tree(family)
            .longest_match(key)
            .map(|(k, v)| (k.to_prefix(family), v))
    }

    /// The most specific entry covering the address `addr`, if any.
    pub fn longest_match_addr(&self, addr: IpAddr) -> Option<(IpPrefix, &T)> {
        self.longest_match(&IpPrefix::host(addr))
    }

    /// Every `(prefix, value)` pair in the trie, IPv4 first.
    pub fn iter(&self) -> Vec<(IpPrefix, &T)> {
        let mut out = Vec::new();
        let mut raw = Vec::new();
        self.v4.iter(&mut raw);
        out.extend(raw.drain(..).map(|(k, v)| (k.to_prefix(Family::V4), v)));
        self.v6.iter(&mut raw);
        out.extend(raw.into_iter().map(|(k, v)| (k.to_prefix(Family::V6), v)));
        out
    }
}

impl<T> FromIterator<(IpPrefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (IpPrefix, T)>>(iter: I) -> PrefixTrie<T> {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_replace() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn default_route_storable() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "d4");
        t.insert(p("::/0"), "d6");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&p("0.0.0.0/0")), Some(&"d4"));
        assert_eq!(
            t.longest_match_addr("9.9.9.9".parse().unwrap()).unwrap().1,
            &"d4"
        );
        assert_eq!(
            t.longest_match_addr("2001:db8::1".parse().unwrap())
                .unwrap()
                .1,
            &"d6"
        );
    }

    #[test]
    fn families_are_disjoint() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "v4");
        assert!(t.covering_addr("::1".parse().unwrap()).is_empty());
        assert!(t.longest_match_addr("::1".parse().unwrap()).is_none());
    }

    #[test]
    fn covering_returns_general_to_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.2.0.0/16"), 99);
        let cov = t.covering_addr("10.1.2.3".parse().unwrap());
        let lens: Vec<u8> = cov.iter().map(|(pfx, _)| pfx.len()).collect();
        assert_eq!(lens, vec![8, 16, 24]);
        let cov = t.covering(&p("10.1.0.0/16"));
        assert_eq!(cov.len(), 2);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ());
        t.insert(p("10.1.2.0/24"), ());
        t.insert(p("11.0.0.0/8"), ());
        let mut covered: Vec<String> = t
            .covered_by(&p("10.0.0.0/8"))
            .into_iter()
            .map(|(pfx, _)| pfx.to_string())
            .collect();
        covered.sort();
        assert_eq!(covered, vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
        assert_eq!(t.covered_by(&p("12.0.0.0/8")).len(), 0);
        // Query prefix need not itself be present.
        assert_eq!(t.covered_by(&p("10.1.0.0/12")).len(), 2);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "a");
        t.insert(p("10.1.0.0/16"), "b");
        assert_eq!(
            t.longest_match_addr("10.1.9.9".parse().unwrap()).unwrap().1,
            &"b"
        );
        assert_eq!(
            t.longest_match_addr("10.2.9.9".parse().unwrap()).unwrap().1,
            &"a"
        );
        assert!(t.longest_match_addr("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn join_nodes_do_not_leak_into_results() {
        let mut t = PrefixTrie::new();
        // These two force a valueless join node at 192.0.2.0/25.
        t.insert(p("192.0.2.0/26"), 1);
        t.insert(p("192.0.2.64/26"), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().len(), 2);
        assert!(t.get(&p("192.0.2.0/25")).is_none());
        let cov = t.covering_addr("192.0.2.65".parse().unwrap());
        assert_eq!(cov.len(), 1);
        assert_eq!(*cov[0].1, 2);
    }

    #[test]
    fn insert_ancestor_after_descendants() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.0.0.0/8"), 8);
        let cov = t.covering_addr("10.1.0.1".parse().unwrap());
        let lens: Vec<u8> = cov.iter().map(|(pfx, _)| pfx.len()).collect();
        assert_eq!(lens, vec![8, 16]);
    }

    #[test]
    fn remove_and_prune() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/26"), 1);
        t.insert(p("192.0.2.64/26"), 2);
        assert_eq!(t.remove(&p("192.0.2.0/26")), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&p("192.0.2.0/26")), None);
        assert_eq!(t.get(&p("192.0.2.64/26")), Some(&2));
        assert_eq!(t.remove(&p("192.0.2.64/26")), Some(2));
        assert!(t.is_empty());
    }

    #[test]
    fn remove_interior_value_keeps_children() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(8));
        assert_eq!(t.get(&p("10.1.0.0/16")), Some(&16));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ipv6_operations() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), "doc");
        t.insert(p("2001:db8:1::/48"), "sub");
        let cov = t.covering_addr("2001:db8:1::1".parse().unwrap());
        assert_eq!(cov.len(), 2);
        let cov = t.covering_addr("2001:db8:2::1".parse().unwrap());
        assert_eq!(cov.len(), 1);
        assert_eq!(t.longest_match(&p("2001:db8:1:2::/64")).unwrap().1, &"sub");
    }

    #[test]
    fn from_iterator_and_iter() {
        let t: PrefixTrie<u32> = vec![
            (p("10.0.0.0/8"), 1),
            (p("2001:db8::/32"), 2),
            (p("172.16.0.0/12"), 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 3);
        let all = t.iter();
        assert_eq!(all.len(), 3);
        // IPv4 entries come first.
        assert!(all[0].0.family() == Family::V4);
        assert!(all[2].0.family() == Family::V6);
    }

    /// Randomised comparison with a naive oracle over all four queries.
    #[test]
    fn randomized_against_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x51d2_31a7);
        for _ in 0..20 {
            let mut trie = PrefixTrie::new();
            let mut oracle: Vec<(IpPrefix, u32)> = Vec::new();
            for i in 0..300u32 {
                let len = rng.gen_range(0..=32u8);
                let addr = std::net::Ipv4Addr::from(rng.gen::<u32>());
                let pfx = IpPrefix::new(addr.into(), len).unwrap();
                if oracle.iter().all(|(q, _)| *q != pfx) {
                    oracle.push((pfx, i));
                }
                trie.insert(pfx, i);
            }
            assert_eq!(trie.len(), oracle.len());
            for _ in 0..100 {
                let addr: IpAddr = std::net::Ipv4Addr::from(rng.gen::<u32>()).into();
                let q = IpPrefix::host(addr);
                let mut want: Vec<IpPrefix> = oracle
                    .iter()
                    .filter(|(pfx, _)| pfx.covers(&q))
                    .map(|(pfx, _)| *pfx)
                    .collect();
                want.sort_by_key(super::super::prefix::IpPrefix::len);
                let got: Vec<IpPrefix> =
                    trie.covering(&q).into_iter().map(|(pfx, _)| pfx).collect();
                assert_eq!(got, want, "covering mismatch for {q}");
                let want_lm = want.last().copied();
                let got_lm = trie.longest_match(&q).map(|(pfx, _)| pfx);
                assert_eq!(got_lm, want_lm, "longest-match mismatch for {q}");
            }
            for _ in 0..50 {
                let len = rng.gen_range(0..=16u8);
                let addr = std::net::Ipv4Addr::from(rng.gen::<u32>());
                let q = IpPrefix::new(addr.into(), len).unwrap();
                let mut want: Vec<IpPrefix> = oracle
                    .iter()
                    .filter(|(pfx, _)| q.covers(pfx))
                    .map(|(pfx, _)| *pfx)
                    .collect();
                want.sort();
                let mut got: Vec<IpPrefix> = trie
                    .covered_by(&q)
                    .into_iter()
                    .map(|(pfx, _)| pfx)
                    .collect();
                got.sort();
                assert_eq!(got, want, "covered_by mismatch for {q}");
            }
        }
    }

    /// Randomised removal keeps the trie consistent with the oracle.
    #[test]
    fn randomized_removal_against_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xdead_cafe);
        let mut trie = PrefixTrie::new();
        let mut oracle: std::collections::HashMap<IpPrefix, u32> = Default::default();
        for i in 0..500u32 {
            let len = rng.gen_range(8..=28u8);
            let addr = std::net::Ipv4Addr::from(rng.gen::<u32>() & 0x0fff_ffff);
            let pfx = IpPrefix::new(addr.into(), len).unwrap();
            trie.insert(pfx, i);
            oracle.insert(pfx, i);
        }
        let keys: Vec<IpPrefix> = oracle.keys().copied().collect();
        for (n, key) in keys.iter().enumerate() {
            if n % 2 == 0 {
                assert_eq!(trie.remove(key), oracle.remove(key));
            }
        }
        assert_eq!(trie.len(), oracle.len());
        for (key, val) in &oracle {
            assert_eq!(trie.get(key), Some(val));
        }
    }
}
