//! Error types for parsing network resources.

use std::fmt;

/// An error produced while parsing an ASN, address, or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetParseError {
    /// The ASN was not a number, or exceeded 32 bits.
    InvalidAsn(String),
    /// The address part of a prefix did not parse.
    InvalidAddress(String),
    /// The prefix length was missing, not a number, or out of range for
    /// the address family.
    InvalidPrefixLength(String),
    /// The input had a shape we do not recognise at all.
    Malformed(String),
    /// An ASN or prefix range had its endpoints in the wrong order.
    InvertedRange(String),
}

impl fmt::Display for NetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetParseError::InvalidAsn(s) => write!(f, "invalid AS number: {s:?}"),
            NetParseError::InvalidAddress(s) => write!(f, "invalid IP address: {s:?}"),
            NetParseError::InvalidPrefixLength(s) => {
                write!(f, "invalid prefix length: {s:?}")
            }
            NetParseError::Malformed(s) => write!(f, "malformed input: {s:?}"),
            NetParseError::InvertedRange(s) => write!(f, "inverted range: {s:?}"),
        }
    }
}

impl std::error::Error for NetParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offending_input() {
        let e = NetParseError::InvalidAsn("ASfoo".into());
        assert!(e.to_string().contains("ASfoo"));
        let e = NetParseError::InvalidPrefixLength("/129".into());
        assert!(e.to_string().contains("/129"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NetParseError::Malformed("x".into()));
    }
}
