//! # ripki-net
//!
//! Foundation types for the `ripki` workspace: IP prefixes, autonomous
//! system numbers, longest-prefix-match tries, prefix/ASN sets, and the
//! IANA special-purpose address registries.
//!
//! This crate is deliberately dependency-light and synchronous. Its design
//! follows the smoltcp school: simple, robust data structures with explicit
//! error types, no macro or type-level tricks, and extensive documentation.
//!
//! ## What is implemented
//!
//! * [`Asn`] — 32-bit AS numbers with `AS64496`-style parsing and the
//!   IANA-reserved ranges (documentation, private use).
//! * [`IpPrefix`], [`Ipv4Prefix`], [`Ipv6Prefix`] — canonical CIDR prefixes
//!   (host bits forced to zero) with containment and covering predicates.
//! * [`PrefixTrie`] — a binary radix trie per address family supporting
//!   exact lookup, longest-prefix match, *all covering prefixes* of an
//!   address or prefix (the operation RiPKI step 3 needs), and enumeration
//!   of covered entries (the operation RFC 6811 needs).
//! * [`PrefixSet`] / [`AsnSet`] — resource sets with subset tests, used by
//!   the RFC 3779 resource-extension logic in `ripki-rpki`.
//! * [`special`] — the IANA special-purpose registries (RFC 6890 family),
//!   used by the measurement pipeline to discard invalid DNS answers.
//!
//! ## What is omitted
//!
//! * No IP packet formats; this crate is about address *algebra* only.
//! * No IPv6 scope identifiers or zone indices.

pub mod asn;
pub mod error;
pub mod prefix;
pub mod set;
pub mod special;
pub mod trie;

pub use asn::{Asn, AsnRange};
pub use error::NetParseError;
pub use prefix::{IpPrefix, Ipv4Prefix, Ipv6Prefix};
pub use set::{AsnSet, PrefixSet};
pub use trie::PrefixTrie;

use std::net::IpAddr;

/// Address family of a prefix or address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// IPv4 (32-bit addresses).
    V4,
    /// IPv6 (128-bit addresses).
    V6,
}

impl Family {
    /// The number of bits in an address of this family.
    pub fn bits(self) -> u8 {
        match self {
            Family::V4 => 32,
            Family::V6 => 128,
        }
    }

    /// The family of an [`IpAddr`].
    pub fn of(addr: IpAddr) -> Family {
        match addr {
            IpAddr::V4(_) => Family::V4,
            IpAddr::V6(_) => Family::V6,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::V4 => write!(f, "IPv4"),
            Family::V6 => write!(f, "IPv6"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_bits() {
        assert_eq!(Family::V4.bits(), 32);
        assert_eq!(Family::V6.bits(), 128);
    }

    #[test]
    fn family_of_addr() {
        assert_eq!(Family::of("1.2.3.4".parse().unwrap()), Family::V4);
        assert_eq!(Family::of("::1".parse().unwrap()), Family::V6);
    }

    #[test]
    fn family_display() {
        assert_eq!(Family::V4.to_string(), "IPv4");
        assert_eq!(Family::V6.to_string(), "IPv6");
    }
}
