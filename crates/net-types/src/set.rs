//! Resource sets: collections of prefixes and ASN ranges with subset
//! semantics.
//!
//! RFC 3779 certificate extensions carry *sets* of IP address blocks and
//! AS identifiers, and RPKI validation (RFC 6487 §7) requires that a
//! subordinate certificate's resources be *encompassed* by its issuer's.
//! [`PrefixSet::encompasses`] and [`AsnSet::encompasses`] implement exactly
//! that check; `ripki-rpki` builds its resource-containment validation on
//! them.

use crate::asn::{Asn, AsnRange};
use crate::prefix::IpPrefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalised set of CIDR prefixes.
///
/// Internally the set is kept sorted and *minimal*: any prefix covered by
/// another member is dropped at normalisation time. (Adjacent-block
/// aggregation — merging `10.0.0.0/25` + `10.0.0.128/25` into `/24` — is
/// deliberately **not** performed: RPKI resource checks never need it, and
/// keeping members as-issued makes audit output match certificate
/// contents.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefixSet {
    members: Vec<IpPrefix>,
}

impl PrefixSet {
    /// The empty set.
    pub fn empty() -> PrefixSet {
        PrefixSet::default()
    }

    /// Build a set from any iterator of prefixes, normalising it.
    pub fn from_prefixes<I: IntoIterator<Item = IpPrefix>>(iter: I) -> PrefixSet {
        let mut members: Vec<IpPrefix> = iter.into_iter().collect();
        Self::normalise(&mut members);
        PrefixSet { members }
    }

    fn normalise(members: &mut Vec<IpPrefix>) {
        members.sort();
        members.dedup();
        // After sorting, a covering prefix sorts immediately before the
        // prefixes it covers — one pass with a "last kept" cursor removes
        // all covered members.
        let mut kept: Vec<IpPrefix> = Vec::with_capacity(members.len());
        for p in members.drain(..) {
            match kept.last() {
                Some(last) if last.covers(&p) => {}
                _ => kept.push(p),
            }
        }
        *members = kept;
    }

    /// Insert one prefix (re-normalising).
    pub fn insert(&mut self, prefix: IpPrefix) {
        if self.contains_prefix(&prefix) {
            return;
        }
        self.members.push(prefix);
        Self::normalise(&mut self.members);
    }

    /// The normalised members, sorted.
    pub fn members(&self) -> &[IpPrefix] {
        &self.members
    }

    /// Number of (minimal) member prefixes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `prefix` is fully contained in the set, i.e. some member
    /// covers it.
    pub fn contains_prefix(&self, prefix: &IpPrefix) -> bool {
        self.members.iter().any(|m| m.covers(prefix))
    }

    /// Whether every member of `other` is contained in `self` — the
    /// RFC 3779 "encompasses" relation used for issuer/subject resource
    /// checks.
    pub fn encompasses(&self, other: &PrefixSet) -> bool {
        other.members.iter().all(|p| self.contains_prefix(p))
    }

    /// Members of `other` that are *not* contained in `self` — the
    /// "overclaim" a misbehaving CA introduces. Empty iff
    /// [`encompasses`](Self::encompasses) holds.
    pub fn excess_of<'o>(&self, other: &'o PrefixSet) -> Vec<&'o IpPrefix> {
        other
            .members
            .iter()
            .filter(|p| !self.contains_prefix(p))
            .collect()
    }

    /// Union of two sets.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        PrefixSet::from_prefixes(self.members.iter().chain(other.members.iter()).copied())
    }
}

impl FromIterator<IpPrefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = IpPrefix>>(iter: I) -> PrefixSet {
        PrefixSet::from_prefixes(iter)
    }
}

impl fmt::Display for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// A normalised set of AS numbers, stored as merged inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AsnSet {
    ranges: Vec<AsnRange>,
}

impl AsnSet {
    /// The empty set.
    pub fn empty() -> AsnSet {
        AsnSet::default()
    }

    /// Build from ranges, merging overlapping and adjacent ones.
    pub fn from_ranges<I: IntoIterator<Item = AsnRange>>(iter: I) -> AsnSet {
        let mut ranges: Vec<AsnRange> = iter.into_iter().collect();
        Self::normalise(&mut ranges);
        AsnSet { ranges }
    }

    /// Build from individual ASNs.
    pub fn from_asns<I: IntoIterator<Item = Asn>>(iter: I) -> AsnSet {
        AsnSet::from_ranges(iter.into_iter().map(AsnRange::single))
    }

    fn normalise(ranges: &mut Vec<AsnRange>) {
        ranges.sort_by_key(|r| (r.start, r.end));
        let mut merged: Vec<AsnRange> = Vec::with_capacity(ranges.len());
        for r in ranges.drain(..) {
            match merged.last_mut() {
                Some(last) if r.start.value() <= last.end.value().saturating_add(1) => {
                    if r.end > last.end {
                        last.end = r.end;
                    }
                }
                _ => merged.push(r),
            }
        }
        *ranges = merged;
    }

    /// Insert one ASN (re-normalising).
    pub fn insert(&mut self, asn: Asn) {
        self.ranges.push(AsnRange::single(asn));
        Self::normalise(&mut self.ranges);
    }

    /// Insert one range (re-normalising).
    pub fn insert_range(&mut self, range: AsnRange) {
        self.ranges.push(range);
        Self::normalise(&mut self.ranges);
    }

    /// The merged, sorted ranges.
    pub fn ranges(&self) -> &[AsnRange] {
        &self.ranges
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of ASNs in the set.
    pub fn count(&self) -> u64 {
        self.ranges.iter().map(AsnRange::len).sum()
    }

    /// Whether the set contains `asn`. Binary search over merged ranges.
    pub fn contains(&self, asn: Asn) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if r.end < asn {
                    std::cmp::Ordering::Less
                } else if r.start > asn {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether every ASN of `other` is in `self` (RFC 3779 encompasses).
    pub fn encompasses(&self, other: &AsnSet) -> bool {
        other
            .ranges
            .iter()
            .all(|r| self.ranges.iter().any(|mine| mine.contains_range(r)))
    }

    /// Iterate every individual ASN. Intended for small sets (tests,
    /// reports); ranges can be astronomically large.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ranges
            .iter()
            .flat_map(|r| (r.start.value()..=r.end.value()).map(Asn::new))
    }

    /// Union of two sets.
    pub fn union(&self, other: &AsnSet) -> AsnSet {
        AsnSet::from_ranges(self.ranges.iter().chain(other.ranges.iter()).copied())
    }
}

impl FromIterator<Asn> for AsnSet {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> AsnSet {
        AsnSet::from_asns(iter)
    }
}

impl fmt::Display for AsnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_set_drops_covered_members() {
        let s = PrefixSet::from_prefixes(vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("192.0.2.0/24"),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.members(), &[p("10.0.0.0/8"), p("192.0.2.0/24")]);
    }

    #[test]
    fn prefix_set_does_not_merge_siblings() {
        let s = PrefixSet::from_prefixes(vec![p("10.0.0.0/25"), p("10.0.0.128/25")]);
        assert_eq!(s.len(), 2);
        assert!(!s.contains_prefix(&p("10.0.0.0/24")));
    }

    #[test]
    fn prefix_set_contains() {
        let s = PrefixSet::from_prefixes(vec![p("10.0.0.0/8"), p("2001:db8::/32")]);
        assert!(s.contains_prefix(&p("10.5.0.0/16")));
        assert!(s.contains_prefix(&p("10.0.0.0/8")));
        assert!(!s.contains_prefix(&p("11.0.0.0/16")));
        assert!(s.contains_prefix(&p("2001:db8:1::/48")));
        assert!(!s.contains_prefix(&p("2001:db9::/48")));
    }

    #[test]
    fn prefix_set_encompasses_and_excess() {
        let issuer = PrefixSet::from_prefixes(vec![p("10.0.0.0/8"), p("192.0.2.0/24")]);
        let ok = PrefixSet::from_prefixes(vec![p("10.9.0.0/16"), p("192.0.2.128/25")]);
        let bad = PrefixSet::from_prefixes(vec![p("10.9.0.0/16"), p("198.51.100.0/24")]);
        assert!(issuer.encompasses(&ok));
        assert!(!issuer.encompasses(&bad));
        let excess = issuer.excess_of(&bad);
        assert_eq!(excess, vec![&p("198.51.100.0/24")]);
        assert!(issuer.excess_of(&ok).is_empty());
        assert!(issuer.encompasses(&PrefixSet::empty()));
        assert!(!PrefixSet::empty().encompasses(&ok));
    }

    #[test]
    fn prefix_set_insert_and_union() {
        let mut s = PrefixSet::empty();
        s.insert(p("10.1.0.0/16"));
        s.insert(p("10.0.0.0/8")); // absorbs the /16
        assert_eq!(s.len(), 1);
        s.insert(p("10.2.0.0/16")); // already covered, no-op
        assert_eq!(s.len(), 1);
        let u = s.union(&PrefixSet::from_prefixes(vec![p("172.16.0.0/12")]));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn prefix_set_display() {
        let s = PrefixSet::from_prefixes(vec![p("10.0.0.0/8")]);
        assert_eq!(s.to_string(), "{10.0.0.0/8}");
    }

    fn r(a: u32, b: u32) -> AsnRange {
        AsnRange::new(Asn::new(a), Asn::new(b)).unwrap()
    }

    #[test]
    fn asn_set_merges_overlaps_and_adjacency() {
        let s = AsnSet::from_ranges(vec![r(10, 20), r(15, 25), r(26, 30), r(40, 41)]);
        assert_eq!(s.ranges(), &[r(10, 30), r(40, 41)]);
        assert_eq!(s.count(), 23);
    }

    #[test]
    fn asn_set_contains_binary_search() {
        let s = AsnSet::from_ranges(vec![r(10, 20), r(40, 50), r(100, 100)]);
        for v in [10, 15, 20, 40, 50, 100] {
            assert!(s.contains(Asn::new(v)), "expected {v}");
        }
        for v in [9, 21, 39, 51, 99, 101] {
            assert!(!s.contains(Asn::new(v)), "unexpected {v}");
        }
    }

    #[test]
    fn asn_set_encompasses() {
        let issuer = AsnSet::from_ranges(vec![r(100, 200)]);
        assert!(issuer.encompasses(&AsnSet::from_ranges(vec![r(100, 150), r(180, 200)])));
        assert!(!issuer.encompasses(&AsnSet::from_ranges(vec![r(150, 201)])));
        assert!(issuer.encompasses(&AsnSet::empty()));
    }

    #[test]
    fn asn_set_from_asns_and_iter() {
        let s = AsnSet::from_asns([3, 1, 2, 10].map(Asn::new));
        assert_eq!(s.ranges(), &[r(1, 3), r(10, 10)]);
        let all: Vec<u32> = s.iter().map(super::super::asn::Asn::value).collect();
        assert_eq!(all, vec![1, 2, 3, 10]);
    }

    #[test]
    fn asn_set_merge_does_not_overflow_at_u32_max() {
        let s = AsnSet::from_ranges(vec![r(u32::MAX - 1, u32::MAX), r(0, 0)]);
        assert_eq!(s.ranges().len(), 2);
        assert!(s.contains(Asn::new(u32::MAX)));
    }
}
