//! Property: any payload survives `write_vrps_json` → `parse_vrps_json`
//! byte-loss-free, and the parser rejects duplicate/overlapping-serial
//! garbage with a named error instead of quietly repairing it.

use proptest::prelude::*;
use ripki_bgp::rov::VrpTriple;
use ripki_net::{Asn, IpPrefix};
use ripki_payload::json::{parse_vrps_json, write_vrps_json, ParseError};
use ripki_payload::VrpPayload;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// An arbitrary VRP: IPv4 or IPv6, any legal length, maxLength anywhere
/// in `[len, family bits]`. `IpPrefix::new` canonicalises host bits, so
/// every generated prefix is on the wire exactly as constructed.
fn arb_vrp() -> impl Strategy<Value = VrpTriple> {
    let v4 = (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
        (
            IpPrefix::new(IpAddr::V4(Ipv4Addr::from(addr)), len).expect("len <= 32"),
            32u8,
        )
    });
    let v6 = (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
        (
            IpPrefix::new(IpAddr::V6(Ipv6Addr::from(addr)), len).expect("len <= 128"),
            128u8,
        )
    });
    (prop_oneof![v4, v6], any::<u32>(), any::<u8>()).prop_map(|((prefix, bits), asn, slack)| {
        let span = bits - prefix.len();
        let max_length = if span == 0 {
            prefix.len()
        } else {
            prefix.len() + slack % (span + 1)
        };
        VrpTriple {
            prefix,
            max_length,
            asn: Asn::new(asn),
        }
    })
}

fn arb_payload() -> impl Strategy<Value = VrpPayload> {
    (any::<u64>(), proptest::collection::vec(arb_vrp(), 0..40))
        .prop_map(|(epoch, vrps)| VrpPayload::new(epoch, vrps))
}

proptest! {
    #[test]
    fn json_round_trip_is_byte_loss_free(payload in arb_payload()) {
        let mut bytes = Vec::new();
        write_vrps_json(&payload, None, &mut bytes).expect("write to Vec");
        let text = String::from_utf8(bytes.clone()).expect("writer emits UTF-8");
        let parsed = parse_vrps_json(&text).expect("own output parses");
        prop_assert_eq!(&parsed, &payload, "parse(write(p)) == p");
        let mut again = Vec::new();
        write_vrps_json(&parsed, None, &mut again).expect("write to Vec");
        prop_assert_eq!(again, bytes, "write is a fixed point after one trip");
    }

    #[test]
    fn a_duplicated_record_is_rejected_by_name(
        epoch in any::<u64>(),
        vrps in proptest::collection::vec(arb_vrp(), 1..40),
        pick in any::<proptest::sample::Index>(),
    ) {
        let payload = VrpPayload::new(epoch, vrps);
        let vrps = payload.vrps();
        let dup = vrps
            .iter()
            .nth(pick.index(vrps.len()))
            .copied()
            .expect("index in range");
        let mut bytes = Vec::new();
        write_vrps_json(&payload, None, &mut bytes).expect("write to Vec");
        let text = String::from_utf8(bytes).expect("writer emits UTF-8");
        // Splice the duplicate record in front of the roas array.
        let record = format!(
            "{{\"asn\":\"{}\",\"prefix\":\"{}\",\"maxLength\":{},\"ta\":\"sim\"}},",
            dup.asn, dup.prefix, dup.max_length
        );
        let garbled = text.replacen("\"roas\":[", &format!("\"roas\":[{record}"), 1);
        match parse_vrps_json(&garbled) {
            Err(ParseError::DuplicateVrp { .. }) => {}
            other => prop_assert!(false, "expected DuplicateVrp, got {:?}", other),
        }
    }

    #[test]
    fn an_overlapping_serial_claim_is_rejected_by_name(
        payload in arb_payload(),
        raw_serial in any::<u64>(),
    ) {
        let serial = if raw_serial == payload.epoch() {
            raw_serial.wrapping_add(1)
        } else {
            raw_serial
        };
        let mut bytes = Vec::new();
        write_vrps_json(&payload, None, &mut bytes).expect("write to Vec");
        let text = String::from_utf8(bytes).expect("writer emits UTF-8");
        let garbled = text.replacen(
            "\"metadata\":{",
            &format!("\"metadata\":{{\"serial\":{serial},"),
            1,
        );
        prop_assert_eq!(
            parse_vrps_json(&garbled),
            Err(ParseError::ConflictingSerial { epoch: payload.epoch(), serial })
        );
        // An agreeing serial is redundant, not garbage.
        let agreeing = text.replacen(
            "\"metadata\":{",
            &format!("\"metadata\":{{\"serial\":{},", payload.epoch()),
            1,
        );
        prop_assert_eq!(parse_vrps_json(&agreeing), Ok(payload));
    }
}
