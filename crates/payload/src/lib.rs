//! # ripki-payload
//!
//! The crate-neutral VRP payload abstraction every serving layer sits
//! on. Before this crate, each plane carried its own private
//! representation of "a validated VRP set at a point in time": the RTR
//! cache kept a `BTreeSet` behind a serial, the HTTP exporter walked a
//! `WorldSnapshot`'s slice, and the engine emitted `EpochDelta`s that
//! only the RTR cache knew how to consume. A distribution fabric — one
//! validator feeding chained proxies feeding routers — needs one
//! currency that flows through every hop unchanged:
//!
//! * [`VrpPayload`] — an **epoch-stamped, canonically ordered** VRP set.
//!   The set lives behind an `Arc`, so fan-out to N subscribers clones a
//!   pointer, not the data. Two payloads are byte-identical on the wire
//!   iff they are `==` here (the `BTreeSet` fixes the order).
//! * [`VrpDelta`] — what changed between two adjacent epochs, in RTR
//!   announce/withdraw terms. Built by [`VrpPayload::diff`] or converted
//!   from the engine's `EpochDelta`; consumed by the RTR cache's
//!   incremental install path and by proxy hops that forward deltas
//!   instead of re-snapshotting.
//! * [`PayloadUpdate`] — the unit of gossip in the proxy fabric: a full
//!   payload plus, when the publisher knows it, the delta from the
//!   previous epoch. Receivers that are in lockstep apply the delta;
//!   receivers that fell behind fall back to the snapshot.
//!
//! ## Epochs vs serials
//!
//! The study engine stamps epochs as `u64`; RTR serials are `u32` with
//! RFC 1982 wrap semantics. The payload keeps the engine's `u64` epoch
//! as the source of truth and derives the RTR serial by truncation
//! ([`VrpPayload::serial`]). Within any window the fabric actually
//! compares (bounded delta history, contiguous hops), truncation is
//! injective; the RTR layers already force a Cache Reset on any
//! non-contiguous jump, which covers the pathological wrap.
//!
//! This module is one of the lint catalog's *blessed epoch modules*
//! (R5): it writes `epoch`/`from_epoch`/`to_epoch` fields directly and
//! in exchange carries the monotonicity assertions every consumer
//! inherits by construction.

pub use ripki_bgp::rov::VrpTriple;

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An epoch-stamped, canonically ordered VRP set.
///
/// Cheap to clone (the set is shared behind an `Arc`) and totally
/// ordered inside (a `BTreeSet`), so equality here implies byte
/// equality of every derived wire form (RTR PDU stream, `vrps.json`,
/// CSV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VrpPayload {
    epoch: u64,
    vrps: Arc<BTreeSet<VrpTriple>>,
}

impl VrpPayload {
    /// Stamp a VRP set with its epoch.
    pub fn new<I: IntoIterator<Item = VrpTriple>>(epoch: u64, vrps: I) -> VrpPayload {
        VrpPayload {
            epoch,
            vrps: Arc::new(vrps.into_iter().collect()),
        }
    }

    /// Wrap an already-shared set without copying it.
    pub fn from_shared(epoch: u64, vrps: Arc<BTreeSet<VrpTriple>>) -> VrpPayload {
        VrpPayload { epoch, vrps }
    }

    /// The epoch this set was validated at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The RTR serial this payload maps to (truncating; see the module
    /// docs for why that is sound in the windows RTR compares).
    pub fn serial(&self) -> u32 {
        self.epoch as u32
    }

    /// The VRPs, in canonical order.
    pub fn vrps(&self) -> &BTreeSet<VrpTriple> {
        &self.vrps
    }

    /// Shared handle to the set (for zero-copy fan-out).
    pub fn shared_vrps(&self) -> Arc<BTreeSet<VrpTriple>> {
        Arc::clone(&self.vrps)
    }

    /// Number of VRPs.
    pub fn len(&self) -> usize {
        self.vrps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vrps.is_empty()
    }

    /// An order-independent digest of the set contents (FNV-1a over the
    /// canonical iteration order — the order *is* canonical, so equal
    /// digests plus equal lengths make byte-identity overwhelmingly
    /// likely; tests use full `==`, operators use this for log lines).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for vrp in self.vrps.iter() {
            for b in vrp.prefix.to_string().bytes() {
                mix(b);
            }
            mix(vrp.max_length);
            for b in vrp.asn.value().to_be_bytes() {
                mix(b);
            }
        }
        h
    }

    /// The delta that turns `self` into `newer`.
    ///
    /// # Panics
    ///
    /// If `newer.epoch() <= self.epoch()` — deltas only describe forward
    /// motion; a backwards "delta" would launder a serial regression
    /// into the fabric.
    pub fn diff(&self, newer: &VrpPayload) -> VrpDelta {
        assert!(
            newer.epoch > self.epoch,
            "payload diff must move the epoch forward ({} -> {})",
            self.epoch,
            newer.epoch,
        );
        VrpDelta {
            from_epoch: self.epoch,
            to_epoch: newer.epoch,
            announced: newer.vrps.difference(&self.vrps).copied().collect(),
            withdrawn: self.vrps.difference(&newer.vrps).copied().collect(),
        }
    }

    /// Apply a delta, producing the next payload. Returns `None` when
    /// the delta does not chain from this payload's epoch (the caller
    /// falls back to a snapshot fetch, mirroring RTR's Cache Reset).
    pub fn apply(&self, delta: &VrpDelta) -> Option<VrpPayload> {
        if delta.from_epoch != self.epoch {
            return None;
        }
        let mut vrps: BTreeSet<VrpTriple> = (*self.vrps).clone();
        for vrp in &delta.withdrawn {
            vrps.remove(vrp);
        }
        for vrp in &delta.announced {
            vrps.insert(*vrp);
        }
        Some(VrpPayload {
            epoch: delta.to_epoch,
            vrps: Arc::new(vrps),
        })
    }
}

impl fmt::Display for VrpPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} ({} vrps, digest {:016x})",
            self.epoch,
            self.vrps.len(),
            self.digest()
        )
    }
}

/// What changed between two adjacent payload epochs, in RTR
/// announce/withdraw terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VrpDelta {
    /// Epoch the set moved from.
    pub from_epoch: u64,
    /// Epoch the set moved to.
    pub to_epoch: u64,
    /// VRPs present now but not before.
    pub announced: Vec<VrpTriple>,
    /// VRPs present before but not now.
    pub withdrawn: Vec<VrpTriple>,
}

impl VrpDelta {
    /// Build a delta from its parts.
    ///
    /// # Panics
    ///
    /// If `to_epoch <= from_epoch` — the single construction site where
    /// forward motion is enforced for every consumer (the R5 bargain).
    pub fn new(
        from_epoch: u64,
        to_epoch: u64,
        announced: Vec<VrpTriple>,
        withdrawn: Vec<VrpTriple>,
    ) -> VrpDelta {
        assert!(
            to_epoch > from_epoch,
            "VrpDelta must move the epoch forward ({from_epoch} -> {to_epoch})"
        );
        VrpDelta {
            from_epoch,
            to_epoch,
            announced,
            withdrawn,
        }
    }

    /// No VRP-level change between the epochs.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// The unit of gossip in the proxy fabric: the full payload, plus the
/// delta from the previous published epoch when the publisher knows it
/// chains contiguously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadUpdate {
    /// The complete set at this epoch (always present — late joiners
    /// and desynced hops resync from it).
    pub payload: VrpPayload,
    /// The change from the previously published epoch, when contiguous.
    pub delta: Option<VrpDelta>,
}

impl PayloadUpdate {
    /// A snapshot-only update (no delta context).
    pub fn snapshot(payload: VrpPayload) -> PayloadUpdate {
        PayloadUpdate {
            payload,
            delta: None,
        }
    }

    /// An update carrying its delta from `previous`.
    ///
    /// # Panics
    ///
    /// Via [`VrpPayload::diff`] if `payload` does not advance past
    /// `previous`.
    pub fn from_previous(previous: &VrpPayload, payload: VrpPayload) -> PayloadUpdate {
        let delta = previous.diff(&payload);
        PayloadUpdate {
            payload,
            delta: Some(delta),
        }
    }

    /// The epoch of the carried payload.
    pub fn epoch(&self) -> u64 {
        self.payload.epoch()
    }
}

pub mod json {
    //! The Routinator-shaped `vrps.json` wire form, shared by the HTTP
    //! serving plane (writer), the proxy's JSON target (writer), and the
    //! proxy's JSON-over-HTTP ingest unit (parser). One shape, one
    //! module — a proxy chained behind `ripki-serve` round-trips
    //! byte-identically.

    use super::{VrpPayload, VrpTriple};
    use std::io::{self, Write};

    /// Stream `payload` as `vrps.json`: Routinator's `metadata` +
    /// `roas` shape, with the epoch and an optional rejected-object
    /// count in the metadata. Returns the bytes written.
    pub fn write_vrps_json(
        payload: &VrpPayload,
        rejected: Option<usize>,
        w: &mut dyn Write,
    ) -> io::Result<u64> {
        let mut written = 0u64;
        let mut put = |w: &mut dyn Write, s: &str| -> io::Result<()> {
            w.write_all(s.as_bytes())?;
            written += s.len() as u64;
            Ok(())
        };
        let rejected_field = match rejected {
            Some(n) => format!(",\"rpki_rejected\":{n}"),
            None => String::new(),
        };
        put(
            w,
            &format!(
                "{{\"metadata\":{{\"epoch\":{},\"vrp_count\":{}{}}},\"roas\":[",
                payload.epoch(),
                payload.len(),
                rejected_field,
            ),
        )?;
        for (i, vrp) in payload.vrps().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            put(
                w,
                &format!(
                    "{sep}{{\"asn\":\"{}\",\"prefix\":\"{}\",\"maxLength\":{},\"ta\":\"sim\"}}",
                    vrp.asn, vrp.prefix, vrp.max_length
                ),
            )?;
        }
        put(w, "]}\n")?;
        Ok(written)
    }

    /// Stream `payload` as the RTR-client-style CSV export.
    pub fn write_vrps_csv(payload: &VrpPayload, w: &mut dyn Write) -> io::Result<u64> {
        let mut written = 0u64;
        let header = "ASN,IP Prefix,Max Length,Trust Anchor\n";
        w.write_all(header.as_bytes())?;
        written += header.len() as u64;
        for vrp in payload.vrps() {
            let line = format!("{},{},{},sim\n", vrp.asn, vrp.prefix, vrp.max_length);
            w.write_all(line.as_bytes())?;
            written += line.len() as u64;
        }
        Ok(written)
    }

    /// Parse failures from [`parse_vrps_json`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum ParseError {
        /// Lexically or structurally broken document.
        Malformed(String),
        /// The same VRP appeared twice in `roas`. A VRP set has no
        /// duplicates; a producer that emits them is corrupt, and
        /// rejecting beats silently deduplicating its output.
        DuplicateVrp {
            /// Index of the second occurrence in `roas`.
            index: usize,
            /// The duplicated record, rendered `ASN prefix-maxlen`.
            record: String,
        },
        /// `metadata` carried both an `epoch` and a disagreeing
        /// `serial` — two overlapping serial claims leave the document
        /// with no well-defined epoch.
        ConflictingSerial {
            /// The `metadata.epoch` value.
            epoch: u64,
            /// The disagreeing `metadata.serial` value.
            serial: u64,
        },
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ParseError::Malformed(s) => write!(f, "vrps.json: {s}"),
                ParseError::DuplicateVrp { index, record } => {
                    write!(f, "vrps.json: roas[{index}]: duplicate VRP {record}")
                }
                ParseError::ConflictingSerial { epoch, serial } => write!(
                    f,
                    "vrps.json: metadata: serial {serial} conflicts with epoch {epoch}"
                ),
            }
        }
    }

    impl std::error::Error for ParseError {}

    /// Parse a `vrps.json` document back into a payload. Accepts the
    /// exact shape [`write_vrps_json`] produces (which is Routinator's);
    /// unknown fields are ignored, malformed records are an error, not
    /// a skip — a proxy must never silently drop VRPs.
    pub fn parse_vrps_json(text: &str) -> Result<VrpPayload, ParseError> {
        use std::collections::BTreeSet;
        let malformed = |s: String| ParseError::Malformed(s);
        let root: serde_json::Value =
            serde_json::from_str(text).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
        let field = |v: &serde_json::Value, key: &str| -> Option<serde_json::Value> {
            v.as_object().and_then(|m| m.get(key)).cloned()
        };
        let metadata = field(&root, "metadata");
        let epoch = metadata
            .as_ref()
            .and_then(|m| field(m, "epoch"))
            .and_then(|v| v.as_u128())
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| malformed("missing metadata.epoch".into()))?;
        // A producer that also stamps a `serial` must agree with its own
        // epoch; two overlapping serial claims are garbage, not data.
        if let Some(serial) = metadata
            .as_ref()
            .and_then(|m| field(m, "serial"))
            .and_then(|v| v.as_u128())
            .and_then(|n| u64::try_from(n).ok())
        {
            if serial != epoch {
                return Err(ParseError::ConflictingSerial { epoch, serial });
            }
        }
        let roas = field(&root, "roas")
            .and_then(|v| v.as_array().map(<[serde_json::Value]>::to_vec))
            .ok_or_else(|| malformed("missing roas array".into()))?;
        let mut vrps = Vec::with_capacity(roas.len());
        let mut seen: BTreeSet<VrpTriple> = BTreeSet::new();
        for (i, roa) in roas.iter().enumerate() {
            let asn = field(roa, "asn")
                .and_then(|v| v.as_str().map(str::to_string))
                .ok_or_else(|| malformed(format!("roas[{i}]: missing asn")))?;
            let prefix = field(roa, "prefix")
                .and_then(|v| v.as_str().map(str::to_string))
                .ok_or_else(|| malformed(format!("roas[{i}]: missing prefix")))?;
            let max_length = field(roa, "maxLength")
                .and_then(|v| v.as_u128())
                .ok_or_else(|| malformed(format!("roas[{i}]: missing maxLength")))?;
            let max_length = u8::try_from(max_length)
                .map_err(|_| malformed(format!("roas[{i}]: maxLength {max_length} > 255")))?;
            let vrp = VrpTriple {
                prefix: prefix
                    .parse()
                    .map_err(|e| malformed(format!("roas[{i}]: prefix {prefix:?}: {e}")))?,
                max_length,
                asn: asn
                    .parse()
                    .map_err(|e| malformed(format!("roas[{i}]: asn {asn:?}: {e}")))?,
            };
            if !seen.insert(vrp) {
                return Err(ParseError::DuplicateVrp {
                    index: i,
                    record: format!("{asn} {prefix}-{max_length}"),
                });
            }
            vrps.push(vrp);
        }
        Ok(VrpPayload::new(epoch, vrps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::Asn;

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().expect("test prefix"),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let a = VrpPayload::new(3, [vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        let b = VrpPayload::new(4, [vrp("10.0.0.0/16", 16, 1), vrp("12.0.0.0/16", 16, 3)]);
        let delta = a.diff(&b);
        assert_eq!(delta.from_epoch, 3);
        assert_eq!(delta.to_epoch, 4);
        assert_eq!(delta.announced, vec![vrp("12.0.0.0/16", 16, 3)]);
        assert_eq!(delta.withdrawn, vec![vrp("11.0.0.0/16", 16, 2)]);
        assert_eq!(a.apply(&delta), Some(b));
    }

    #[test]
    fn apply_refuses_non_chaining_delta() {
        let a = VrpPayload::new(3, [vrp("10.0.0.0/16", 16, 1)]);
        let delta = VrpDelta::new(5, 6, vec![vrp("12.0.0.0/16", 16, 3)], Vec::new());
        assert_eq!(a.apply(&delta), None);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backwards_diff_panics() {
        let a = VrpPayload::new(3, [vrp("10.0.0.0/16", 16, 1)]);
        let b = VrpPayload::new(3, [vrp("10.0.0.0/16", 16, 1)]);
        let _ = a.diff(&b);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backwards_delta_panics() {
        let _ = VrpDelta::new(4, 4, Vec::new(), Vec::new());
    }

    #[test]
    fn equal_sets_share_digest_and_equality() {
        let a = VrpPayload::new(1, [vrp("10.0.0.0/16", 16, 1), vrp("2001:db8::/32", 48, 2)]);
        let b = VrpPayload::new(1, [vrp("2001:db8::/32", 48, 2), vrp("10.0.0.0/16", 16, 1)]);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = VrpPayload::new(1, [vrp("10.0.0.0/16", 16, 1)]);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn serial_truncates_epoch() {
        let p = VrpPayload::new(u64::from(u32::MAX) + 5, [] as [VrpTriple; 0]);
        assert_eq!(p.serial(), 4);
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let payload = VrpPayload::new(
            7,
            [
                vrp("10.0.0.0/16", 20, 64500),
                vrp("2001:db8::/32", 48, 64501),
            ],
        );
        let mut bytes = Vec::new();
        json::write_vrps_json(&payload, Some(2), &mut bytes).expect("write");
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        let parsed = json::parse_vrps_json(&text).expect("parse");
        assert_eq!(parsed, payload);
        // Re-serialising the parsed payload reproduces the bytes
        // exactly (modulo the rejected count only the origin knows).
        let mut again = Vec::new();
        json::write_vrps_json(&parsed, Some(2), &mut again).expect("write");
        assert_eq!(bytes, again);
    }

    #[test]
    fn json_parse_rejects_malformed_records() {
        assert!(json::parse_vrps_json("{").is_err());
        assert!(json::parse_vrps_json("{\"roas\":[]}").is_err());
        let missing_prefix =
            "{\"metadata\":{\"epoch\":1},\"roas\":[{\"asn\":\"AS1\",\"maxLength\":24}]}";
        assert!(json::parse_vrps_json(missing_prefix).is_err());
        let bad_asn = "{\"metadata\":{\"epoch\":1},\"roas\":[{\"asn\":\"bogus\",\
                       \"prefix\":\"10.0.0.0/8\",\"maxLength\":24}]}";
        assert!(json::parse_vrps_json(bad_asn).is_err());
    }

    #[test]
    fn update_from_previous_carries_delta() {
        let a = VrpPayload::new(1, [vrp("10.0.0.0/16", 16, 1)]);
        let b = VrpPayload::new(2, [vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        let update = PayloadUpdate::from_previous(&a, b.clone());
        assert_eq!(update.epoch(), 2);
        let delta = update.delta.expect("delta present");
        assert!(a.apply(&delta) == Some(b));
    }
}
