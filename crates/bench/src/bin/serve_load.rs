//! Keep-alive load harness for the event-driven HTTP serving plane.
//!
//! Opens a large population of concurrent keep-alive sessions against a
//! running `ripki-cli serve` (or any `ripki-serve` instance), drives a
//! bounded number of them at a time round-robin so every session serves
//! traffic without tripping the server's overload shedding, and reports
//! sustained throughput plus the server-side p99 interpolated from the
//! `/metrics` cumulative latency histogram. The client is built on the
//! same `poll(2)` readiness primitives as the server's reactor
//! ([`ripki_serve::reactor::poll_fds`]) — one thread, no blocking I/O,
//! which is what makes 10k sockets from a single process practical.
//!
//! Writes `results/BENCH_serve_async.json` and compares against the
//! thread-pool-era baseline in `results/BENCH_serve.json`; a missing
//! baseline is a loud configuration error (exit 2), mirroring
//! `scripts/bench_gate.py`.
//!
//! ```text
//! serve_load --connect 127.0.0.1:8080 --sessions 10000 --requests 50000
//! ```

use ripki_serve::reactor::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// How many connect attempts are in flight at once while building the
/// session population. Bounded so the server's accept backlog (and the
/// kernel SYN queue) never overflows into multi-second retransmits.
const CONNECT_BATCH: usize = 256;

/// Harness tunables, all settable from the command line.
struct Options {
    connect: SocketAddr,
    sessions: usize,
    active: usize,
    requests: usize,
    pipeline: usize,
    query: String,
    out: String,
    baseline: String,
}

fn usage() -> &'static str {
    "usage: serve_load --connect ADDR [--sessions N] [--active N]\n\
     \u{20}                 [--requests N] [--pipeline N] [--query PATH]\n\
     \u{20}                 [--out FILE] [--baseline FILE]\n\
     drive N concurrent keep-alive sessions against a running\n\
     ripki-serve instance and write results/BENCH_serve_async.json"
}

fn parse_options() -> Result<Options, String> {
    let mut connect = None;
    let mut options = Options {
        connect: "127.0.0.1:0".parse().expect("literal addr"),
        sessions: 10_000,
        active: 48,
        requests: 50_000,
        pipeline: 4,
        query: "/api/v1/validity?asn=AS65000&prefix=10.0.0.0/24".into(),
        out: "results/BENCH_serve_async.json".into(),
        baseline: "results/BENCH_serve.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--connect" => {
                connect = Some(
                    value("--connect")?
                        .parse()
                        .map_err(|e| format!("--connect: {e}"))?,
                )
            }
            "--sessions" => {
                options.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--active" => {
                options.active = value("--active")?
                    .parse()
                    .map_err(|e| format!("--active: {e}"))?
            }
            "--requests" => {
                options.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--pipeline" => {
                options.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?
            }
            "--query" => options.query = value("--query")?,
            "--out" => options.out = value("--out")?,
            "--baseline" => options.baseline = value("--baseline")?,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    options.connect = connect.ok_or_else(|| format!("--connect is required\n{}", usage()))?;
    options.sessions = options.sessions.max(1);
    options.active = options.active.clamp(1, options.sessions);
    options.pipeline = options.pipeline.max(1);
    options.requests = options.requests.max(options.sessions);
    Ok(options)
}

/// One keep-alive session: its socket, unsent request bytes, the
/// response-reassembly buffer, and how many responses it still owes.
struct Session {
    stream: TcpStream,
    write_buf: Vec<u8>,
    written: usize,
    read_buf: Vec<u8>,
    awaiting: usize,
}

impl Session {
    fn new(stream: TcpStream) -> Session {
        Session {
            stream,
            write_buf: Vec::new(),
            written: 0,
            read_buf: Vec::new(),
            awaiting: 0,
        }
    }
}

/// Establish `count` non-blocking connections in bounded batches.
fn establish(addr: SocketAddr, count: usize) -> Result<Vec<Session>, String> {
    let mut sessions = Vec::with_capacity(count);
    while sessions.len() < count {
        let batch = CONNECT_BATCH.min(count - sessions.len());
        let mut pending: Vec<TcpStream> = Vec::with_capacity(batch);
        for _ in 0..batch {
            let stream = TcpStream::connect(addr)
                .map_err(|e| format!("connect {addr} (session {}): {e}", sessions.len()))?;
            stream
                .set_nonblocking(true)
                .map_err(|e| format!("set_nonblocking: {e}"))?;
            let _ = stream.set_nodelay(true);
            pending.push(stream);
        }
        // Each batch connected with blocking sockets, so the streams are
        // established on return; a per-batch error check still catches
        // servers that accept-then-reset under pressure.
        for stream in pending {
            if let Ok(Some(e)) = stream.take_error() {
                return Err(format!("session failed during connect: {e}"));
            }
            sessions.push(Session::new(stream));
        }
        // Pace against the server's own accounting: on a shared single
        // core the connect loop can outrun the acceptor by more than
        // the listen backlog, and every overflowed handshake stalls for
        // a full SYN retransmit. The roundtrip also yields the CPU to
        // the acceptor, which is half the point.
        if sessions.len() < count {
            wait_until_accepted(addr, sessions.len())?;
        }
    }
    Ok(sessions)
}

/// Block until the server's `/status` gauge reports at least `at_least`
/// open connections.
fn wait_until_accepted(addr: SocketAddr, at_least: usize) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = control_get(addr, "/status")?;
        let open = status_u64(&status, "open_connections").unwrap_or(0);
        if open as usize >= at_least {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(format!(
                "server accepted only {open}/{at_least} sessions within 30s"
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Queue `count` pipelined requests on the session.
fn enqueue_requests(session: &mut Session, query: &str, count: usize) {
    for _ in 0..count {
        session
            .write_buf
            .extend_from_slice(format!("GET {query} HTTP/1.1\r\nhost: load\r\n\r\n").as_bytes());
    }
    session.awaiting += count;
}

/// Consume complete content-length-framed responses from the session's
/// read buffer. Returns completed responses; errors on a non-200.
fn harvest(session: &mut Session) -> Result<usize, String> {
    let mut done = 0usize;
    while let Some(head_end) = session
        .read_buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
    {
        let head = String::from_utf8_lossy(&session.read_buf[..head_end]).to_string();
        if !head.starts_with("HTTP/1.1 200") {
            let status = head.lines().next().unwrap_or("<empty>").to_string();
            return Err(format!("non-200 response under load: {status}"));
        }
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .ok_or_else(|| "response without content-length framing".to_string())?;
        if session.read_buf.len() < head_end + content_length {
            break;
        }
        session.read_buf.drain(..head_end + content_length);
        session.awaiting -= 1;
        done += 1;
        if session.awaiting == 0 {
            break;
        }
    }
    Ok(done)
}

/// Drive `total` requests round-robin across all sessions, at most
/// `active` sessions in flight at a time. Returns the spent wall time.
fn drive(sessions: &mut [Session], options: &Options, total: usize) -> Result<Duration, String> {
    // Per-session remaining budget; round-robin queue of session
    // indices with budget left ensures every session serves requests.
    let mut budget = vec![total / sessions.len(); sessions.len()];
    for slot in budget.iter_mut().take(total % sessions.len()) {
        *slot += 1;
    }
    let mut queue: VecDeque<usize> = (0..sessions.len()).filter(|i| budget[*i] > 0).collect();
    let mut in_flight: Vec<usize> = Vec::with_capacity(options.active);
    let mut completed = 0usize;
    let started = Instant::now();
    let deadline = started + Duration::from_secs(600);
    let mut fds: Vec<PollFd> = Vec::with_capacity(options.active);
    while completed < total {
        if Instant::now() > deadline {
            return Err(format!(
                "load run timed out: {completed}/{total} responses after 600s"
            ));
        }
        // Admit sessions into the active window.
        while in_flight.len() < options.active {
            let Some(idx) = queue.pop_front() else { break };
            let burst = options.pipeline.min(budget[idx]);
            budget[idx] -= burst;
            enqueue_requests(&mut sessions[idx], &options.query, burst);
            in_flight.push(idx);
        }
        if in_flight.is_empty() {
            return Err(format!(
                "drive stalled: {completed}/{total} responses, no sessions in flight"
            ));
        }
        // Poll only the in-flight sockets: idle keep-alive sessions
        // stay open but cost nothing here.
        fds.clear();
        for &idx in &in_flight {
            let session = &sessions[idx];
            let mut events = POLLIN;
            if session.written < session.write_buf.len() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(session.stream.as_raw_fd(), events));
        }
        poll_fds(&mut fds, 1000).map_err(|e| format!("poll: {e}"))?;
        let mut finished: Vec<usize> = Vec::new();
        for (slot, &idx) in in_flight.iter().enumerate() {
            let revents = fds[slot].revents;
            if revents & (POLLERR | POLLNVAL) != 0 {
                return Err(format!("session {idx} failed mid-run"));
            }
            let session = &mut sessions[idx];
            if revents & POLLOUT != 0 && session.written < session.write_buf.len() {
                match session.stream.write(&session.write_buf[session.written..]) {
                    Ok(n) => session.written += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(format!("session {idx} write: {e}")),
                }
                if session.written == session.write_buf.len() {
                    session.write_buf.clear();
                    session.written = 0;
                }
            }
            if revents & (POLLIN | POLLHUP) != 0 {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match session.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(format!(
                                "session {idx} closed by server with {} responses pending",
                                session.awaiting
                            ))
                        }
                        Ok(n) => {
                            session.read_buf.extend_from_slice(&chunk[..n]);
                            if n < chunk.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(format!("session {idx} read: {e}")),
                    }
                }
                completed += harvest(session)?;
            }
            if sessions[idx].awaiting == 0 {
                finished.push(slot);
            }
        }
        // Retire finished sessions (highest slot first so the
        // swap-removes do not shift pending entries).
        for slot in finished.into_iter().rev() {
            let idx = in_flight.swap_remove(slot);
            if budget[idx] > 0 {
                queue.push_back(idx);
            }
        }
    }
    Ok(started.elapsed())
}

/// One blocking GET over a fresh connection (control plane, not timed).
fn control_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("control connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("control timeout: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: load\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("control send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("control read {path}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("control response to {path} has no body"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "control GET {path}: {}",
            head.lines().next().unwrap_or("<empty>")
        ));
    }
    Ok(body.to_string())
}

/// Parse the cumulative `endpoint="validity"` latency buckets out of the
/// Prometheus exposition and interpolate the p99 in seconds.
fn p99_from_metrics(text: &str) -> Result<f64, String> {
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line
            .strip_prefix("ripki_http_request_duration_seconds_bucket{endpoint=\"validity\",le=\"")
        else {
            continue;
        };
        let Some((le, count)) = rest.split_once("\"} ") else {
            continue;
        };
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse()
                .map_err(|e| format!("bucket bound {le:?}: {e}"))?
        };
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|e| format!("bucket count {count:?}: {e}"))?;
        buckets.push((le, count));
    }
    let total = buckets.last().map(|(_, n)| *n).unwrap_or(0);
    if total == 0 {
        return Err("no validity observations in the server histogram".into());
    }
    let rank = (total as f64 * 0.99).ceil() as u64;
    let mut previous_bound = 0.0f64;
    let mut previous_count = 0u64;
    for (le, count) in buckets {
        if count >= rank {
            if le.is_infinite() {
                // p99 beyond the last finite bucket: report that bound.
                return Ok(previous_bound);
            }
            let in_bucket = (count - previous_count).max(1) as f64;
            let need = (rank - previous_count) as f64;
            return Ok(previous_bound + (le - previous_bound) * need / in_bucket);
        }
        previous_bound = le;
        previous_count = count;
    }
    Ok(previous_bound)
}

/// Pull one u64 field out of the `/status` JSON body without a parser
/// dependency: the value is a bare number after `"<key>":`.
fn status_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn run() -> Result<(), String> {
    let options = parse_options()?;

    // Fail loud before opening a single socket if the baseline the
    // throughput comparison needs is absent (PR 7 convention: a skipped
    // comparison must never look like a pass).
    let baseline_text = std::fs::read_to_string(&options.baseline).map_err(|e| {
        format!(
            "missing thread-pool baseline {}: {e}\n(run the serve_throughput bench \
             or restore the checked-in results/BENCH_serve.json)",
            options.baseline
        )
    })?;
    let baseline: serde_json::Value = serde_json::from_str(&baseline_text)
        .map_err(|e| format!("{} is not JSON: {e}", options.baseline))?;
    let baseline_rps = baseline["validity_req_per_s"]
        .as_f64()
        .ok_or_else(|| format!("{} has no validity_req_per_s", options.baseline))?;

    eprintln!(
        "establishing {} keep-alive sessions against {} ...",
        options.sessions, options.connect
    );
    let t0 = Instant::now();
    let mut sessions = establish(options.connect, options.sessions)?;
    eprintln!(
        "  {} sessions open in {:.1}s",
        sessions.len(),
        t0.elapsed().as_secs_f64()
    );

    // Server-observed concurrency while the population is at its peak.
    let status = control_get(options.connect, "/status")?;
    let server_open = status_u64(&status, "open_connections")
        .ok_or_else(|| format!("/status body has no open_connections: {status}"))?;
    let admission_window = status_u64(&status, "admission_window")
        .ok_or_else(|| format!("/status body has no admission_window: {status}"))?;
    eprintln!(
        "  server reports open_connections={server_open} admission_window={admission_window}"
    );

    eprintln!(
        "driving {} requests, {} sessions active at a time (pipeline {}) ...",
        options.requests, options.active, options.pipeline
    );
    let elapsed = drive(&mut sessions, &options, options.requests)?;
    let req_per_s = options.requests as f64 / elapsed.as_secs_f64();

    let metrics = control_get(options.connect, "/metrics")?;
    let p99_seconds = p99_from_metrics(&metrics)?;

    let throughput_vs_threadpool = req_per_s / baseline_rps;
    println!(
        "\n=== serve_load: event-driven plane under {} sessions ===",
        sessions.len()
    );
    println!(
        "{} requests in {:.2}s -> {req_per_s:.0} req/s (thread-pool baseline {baseline_rps:.0}, \
         ratio {throughput_vs_threadpool:.2})",
        options.requests,
        elapsed.as_secs_f64(),
    );
    println!("server-side validity p99 {:.3} ms", p99_seconds * 1e3);

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    let int = |v: u64| serde_json::to_value(&v).expect("u64 serializes");
    json.insert("bench".into(), "serve_load".into());
    json.insert("concurrent_sessions".into(), int(sessions.len() as u64));
    json.insert("server_open_connections".into(), int(server_open));
    json.insert("requests".into(), int(options.requests as u64));
    json.insert("active_window".into(), int(options.active as u64));
    json.insert("pipeline_depth".into(), int(options.pipeline as u64));
    json.insert("req_per_s".into(), num(req_per_s));
    json.insert("p99_seconds".into(), num(p99_seconds));
    json.insert("threadpool_baseline_req_per_s".into(), num(baseline_rps));
    json.insert(
        "throughput_vs_threadpool".into(),
        num(throughput_vs_threadpool),
    );
    let json = serde_json::Value::Object(json);
    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(
        &options.out,
        serde_json::to_string_pretty(&json).expect("report serializes") + "\n",
    )
    .map_err(|e| format!("write {}: {e}", options.out))?;
    println!("wrote {}", options.out);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_load: {message}");
            ExitCode::from(2)
        }
    }
}
