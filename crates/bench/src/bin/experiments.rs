//! The one-shot experiment record: regenerates every table and figure of
//! the paper at a configurable scale, prints the paper-style series, and
//! writes machine-readable JSON to `results/`.
//!
//! ```sh
//! cargo run --release -p ripki-bench --bin experiments            # 20k
//! cargo run --release -p ripki-bench --bin experiments -- 200000  # bigger
//! ```

use ripki::cdn_audit::{audit_cdns, summarize};
use ripki::classify::HttpArchiveClassifier;
use ripki::figures;
use ripki::report::HeadlineStats;
use ripki::tables;
use ripki_bench::{print_bin_header, print_percent_series, Study};
use ripki_rpki::validate;
use ripki_websim::operators::CDN_SPECS;
use std::io::Write;

fn main() {
    let domains: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(ripki_bench::bench_domains);
    println!("=== RiPKI experiment record, {domains} domains ===");
    let t0 = std::time::Instant::now();
    let study = Study::at_scale(domains);
    let n = study.results.domains.len();
    println!("world + measurement: {:.1?}\n", t0.elapsed());

    let mut json = serde_json::Map::new();
    json.insert("domains".into(), domains.into());

    // Headline.
    let stats = HeadlineStats::compute(&study.results);
    println!("--- headline (§4) ---\n{stats}\n");
    json.insert(
        "headline".into(),
        serde_json::to_value(&stats).expect("serializable"),
    );

    // Figure 1.
    let fig1 = figures::fig1_www_overlap(&study.results, study.bin);
    println!("--- Figure 1 ---");
    print_bin_header(study.bin, fig1.len());
    print_percent_series("equal prefixes %", &fig1);
    json.insert("fig1".into(), serde_json::to_value(&fig1).unwrap());

    // Figure 2.
    let fig2 = figures::fig2_rpki_outcome(&study.results, study.bin);
    println!("\n--- Figure 2 ---");
    print_bin_header(study.bin, fig2.valid.len());
    print_percent_series("valid %", &fig2.valid);
    print_percent_series("invalid %", &fig2.invalid);
    print_percent_series("not found %", &fig2.not_found);
    println!(
        "head {:.2}% → tail {:.2}% (paper 4.0 → 5.5)",
        fig2.valid.range_mean(0, n / 10).unwrap_or(0.0) * 100.0,
        fig2.valid.range_mean(n * 9 / 10, n).unwrap_or(0.0) * 100.0
    );
    json.insert("fig2".into(), serde_json::to_value(&fig2).unwrap());

    // Figure 3.
    let classifier = HttpArchiveClassifier::new(&study.scenario.zones, study.cdn_patterns());
    let fig3 = figures::fig3_cdn_popularity(&study.results, &classifier, study.bin);
    println!("\n--- Figure 3 ---");
    print_bin_header(study.bin, fig3.cname_heuristic.len());
    print_percent_series("CNAME heuristic %", &fig3.cname_heuristic);
    print_percent_series("HTTPArchive %", &fig3.httparchive);
    json.insert("fig3".into(), serde_json::to_value(&fig3).unwrap());

    // Figure 4.
    let fig4 = figures::fig4_rpki_on_cdns(&study.results, study.bin);
    println!("\n--- Figure 4 ---");
    print_bin_header(study.bin, fig4.rpki_enabled.len());
    print_percent_series("RPKI-enabled %", &fig4.rpki_enabled);
    print_percent_series("on CDNs %", &fig4.rpki_enabled_on_cdns);
    println!(
        "overall {:.2}% vs CDN-hosted {:.2}% (paper ≈5 vs ≈0.9)",
        fig4.rpki_enabled.overall_mean().unwrap_or(0.0) * 100.0,
        fig4.rpki_enabled_on_cdns.overall_mean().unwrap_or(0.0) * 100.0
    );
    json.insert("fig4".into(), serde_json::to_value(&fig4).unwrap());

    // Table 1.
    let rows = tables::table1_top_covered(&study.results, 10);
    println!("\n--- Table 1 ---");
    print!("{}", tables::render_table1(&rows));
    json.insert("table1".into(), serde_json::to_value(&rows).unwrap());

    // §4.2 audit.
    let report = validate(&study.scenario.repository, study.scenario.now);
    let names: Vec<&str> = CDN_SPECS.iter().map(|(na, _, _)| *na).collect();
    let audit = audit_cdns(&study.scenario.registry, &report.vrps, &names);
    let summary = summarize(&audit, &study.scenario.registry, &report.vrps);
    println!("\n--- §4.2 CDN audit ---");
    println!(
        "CDN ASes {}   RPKI entries {}   deployers {:?}",
        summary.total_cdn_asns, summary.total_rpki_entries, summary.cdns_with_deployment
    );
    println!(
        "ISP penetration {:.1}%   webhoster {:.1}%",
        summary.isp_penetration * 100.0,
        summary.webhoster_penetration * 100.0
    );
    json.insert("cdn_audit".into(), serde_json::to_value(&summary).unwrap());

    // Persist: JSON record plus per-figure CSVs for plotting.
    std::fs::create_dir_all("results").ok();
    let csv = [
        ("fig1_equal_prefixes", fig1.to_csv("equal_fraction")),
        ("fig2_valid", fig2.valid.to_csv("valid_fraction")),
        ("fig2_invalid", fig2.invalid.to_csv("invalid_fraction")),
        (
            "fig2_not_found",
            fig2.not_found.to_csv("not_found_fraction"),
        ),
        (
            "fig3_cname_heuristic",
            fig3.cname_heuristic.to_csv("cdn_fraction"),
        ),
        ("fig3_httparchive", fig3.httparchive.to_csv("cdn_fraction")),
        (
            "fig4_rpki_enabled",
            fig4.rpki_enabled.to_csv("covered_fraction"),
        ),
        (
            "fig4_on_cdns",
            fig4.rpki_enabled_on_cdns.to_csv("covered_fraction"),
        ),
    ];
    for (name, text) in csv {
        let _ = std::fs::write(format!("results/{name}_{domains}.csv"), text);
    }
    let path = format!("results/experiments_{domains}.json");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&serde_json::Value::Object(json)).unwrap()
            );
            println!("\nwrote {path}");
        }
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!("total {:.1?}", t0.elapsed());
}
