//! # ripki-bench
//!
//! Shared machinery for the benchmark/experiment harness. Every figure
//! and table of the paper has a Criterion bench under `benches/` that
//!
//! 1. builds a calibrated study at `RIPKI_BENCH_DOMAINS` scale
//!    (default 20,000 — override for the paper's full 1M run),
//! 2. **prints the regenerated series** (the rows the paper plots), so
//!    `cargo bench` output doubles as the experiment record, and
//! 3. measures the cost of the regenerating computation.
//!
//! The standalone `experiments` binary prints everything in one pass and
//! dumps machine-readable JSON next to it.

use ripki::classify::HttpArchiveClassifier;
use ripki::engine::StudyEngine;
use ripki::pipeline::{PipelineConfig, StudyResults};
use ripki::stats::BinnedSeries;
use ripki_websim::{Scenario, ScenarioConfig};

/// Default domain count for benches.
pub const DEFAULT_DOMAINS: usize = 20_000;

/// Scale taken from `RIPKI_BENCH_DOMAINS`, or the default.
pub fn bench_domains() -> usize {
    std::env::var("RIPKI_BENCH_DOMAINS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_DOMAINS)
}

/// A fully built and measured study: the input to every figure builder.
pub struct Study {
    /// The generated world.
    pub scenario: Scenario,
    /// Snapshot-owning engine over this study's world (for re-runs and
    /// per-domain measurements in benches).
    pub engine: StudyEngine,
    /// Engine output over the whole ranking.
    pub results: StudyResults,
    /// Bin width scaled so each study has 10 bins (mirrors the paper's
    /// 10k bins over 1M domains).
    pub bin: usize,
}

impl Study {
    /// Build and measure at the given scale.
    pub fn at_scale(domains: usize) -> Study {
        let scenario = Scenario::build(ScenarioConfig::with_domains(domains));
        let engine = StudyEngine::new(
            scenario.zones.clone(),
            scenario.rib.clone(),
            &scenario.repository,
            PipelineConfig {
                bogus_dns_ppm: scenario.config.bogus_dns_ppm,
                now: scenario.now,
                ..Default::default()
            },
        );
        let results = engine.run(&scenario.ranking);
        let bin = (domains / 10).max(1);
        Study {
            scenario,
            engine,
            results,
            bin,
        }
    }

    /// Build at the env-configured bench scale.
    pub fn at_bench_scale() -> Study {
        Study::at_scale(bench_domains())
    }

    /// The HTTPArchive classifier for this study's CDN namespace.
    pub fn httparchive(&self) -> HttpArchiveClassifier<'_> {
        HttpArchiveClassifier::new(&self.scenario.zones, self.cdn_patterns())
    }

    /// CDN DNS suffix patterns of the generated world.
    pub fn cdn_patterns(&self) -> Vec<String> {
        self.scenario
            .cdn_infras
            .iter()
            .map(|i| format!("{}-sim.net", i.name))
            .collect()
    }
}

/// Print a series as one row of percentages, paper-style.
pub fn print_percent_series(label: &str, series: &BinnedSeries) {
    print!("{label:<26}");
    for m in &series.means {
        match m {
            Some(v) => print!(" {:>6.2}", v * 100.0),
            None => print!("      -"),
        }
    }
    println!();
}

/// Print a bin-start header row aligned with [`print_percent_series`].
pub fn print_bin_header(bin: usize, n_bins: usize) {
    print!("{:<26}", "rank bin start");
    for i in 0..n_bins {
        print!(" {:>6}", i * bin / 1000);
    }
    println!("  (thousands)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_builds_at_small_scale() {
        let s = Study::at_scale(400);
        assert_eq!(s.results.domains.len(), 400);
        assert_eq!(s.bin, 40);
        assert_eq!(s.cdn_patterns().len(), 16);
        // Re-running through the engine gives identical counts.
        let again = s.engine.run(&s.scenario.ranking);
        assert_eq!(again.domains.len(), 400);
    }

    #[test]
    fn bench_domains_env_override() {
        // No env set in tests: default applies.
        assert_eq!(bench_domains(), DEFAULT_DOMAINS);
    }
}
