//! §5.2: how much does the ROA catalog reveal beyond what BGP collectors
//! already show? Latent-relation share across a population of prefix
//! owners with varying backup arrangements.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_bench::Study;
use ripki_bgp::collector::Collector;
use ripki_rpki::privacy::exposure;
use ripki_rpki::validate;
use std::collections::BTreeSet;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let report = validate(&study.scenario.repository, study.scenario.now);

    // The collector sees what the scenario's table announces.
    let mut collector = Collector::new(
        ripki_websim::scenario::COLLECTOR_PEERS
            .iter()
            .map(|a| ripki_net::Asn::new(*a)),
    );
    for po in study.scenario.rib.all_prefix_origins() {
        collector.observe_raw(po.prefix, po.origin);
    }
    let observed: BTreeSet<_> = collector.observations().clone();
    let exp = exposure(&report.vrps, &observed);

    println!("\n=== §5.2: ROA catalog exposure vs BGP collectors ===");
    println!("catalog relations:     {}", exp.total());
    println!("operational (in BGP):  {}", exp.operational.len());
    println!("latent (RPKI-only):    {}", exp.latent.len());
    println!(
        "latent fraction:       {:.1}%  (misconfigured + standby authorizations)",
        exp.latent_fraction() * 100.0
    );

    c.bench_function("privacy/exposure_analysis", |b| {
        b.iter(|| exposure(&report.vrps, &observed))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
