//! Engine hot path: memoized shared-tail resolution vs the seed's
//! uncached per-name walk, on a shared-CNAME-heavy workload.
//!
//! The paper's central observation makes this the workload that
//! matters: popular domains ride CDNs, and "CDNs use CNAME chains to
//! redirect DNS requests to their own infrastructure" — thousands of
//! customer names funnel into the same handful of provider load-balancer
//! chains. The seed pipeline re-walked those shared tails once per
//! referring domain; the engine's [`ResolutionCache`] walks each tail
//! once per epoch and splices it everywhere else.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_bench::bench_domains;
use ripki_dns::cache::ResolutionCache;
use ripki_dns::faults::FaultyResolver;
use ripki_dns::resolver::Resolver;
use ripki_dns::zone::ZoneStore;
use ripki_dns::{DomainName, Vantage};

const PROVIDERS: usize = 12;
const CHAIN_DEPTH: usize = 8;

fn n(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid bench name")
}

/// A CDN-heavy web: every customer name CNAMEs through a per-customer
/// alias into its provider's deep, shared load-balancer chain.
fn shared_tail_zones(customers: usize) -> ZoneStore {
    let mut zones = ZoneStore::new();
    for p in 0..PROVIDERS {
        for hop in 0..CHAIN_DEPTH - 1 {
            zones.add_cname(
                n(&format!("lb{hop}.cdn{p}-sim.net")),
                n(&format!("lb{}.cdn{p}-sim.net", hop + 1)),
            );
        }
        zones.add_addr(
            n(&format!("lb{}.cdn{p}-sim.net", CHAIN_DEPTH - 1)),
            format!("198.51.{}.7", 100 + p).parse().unwrap(),
        );
    }
    for k in 0..customers {
        let p = k % PROVIDERS;
        zones.add_cname(
            n(&format!("www.site{k}.example")),
            n(&format!("cust{k}.cdn{p}-sim.net")),
        );
        zones.add_cname(
            n(&format!("cust{k}.cdn{p}-sim.net")),
            n(&format!("lb0.cdn{p}-sim.net")),
        );
    }
    zones
}

fn bench(c: &mut Criterion) {
    let customers = bench_domains();
    let zones = shared_tail_zones(customers);
    // The engine's per-worker resolver, paper-default fault rate.
    let resolver = FaultyResolver::new(
        Resolver::new(&zones, Vantage::GOOGLE_DNS_BERLIN),
        700,
        0x0ddf_a017,
    );
    let names: Vec<DomainName> = (0..customers)
        .map(|k| n(&format!("www.site{k}.example")))
        .collect();

    // Cached and uncached resolution must be observably identical.
    let check = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
    for name in &names {
        let uncached = resolver.resolve(name);
        let cached = resolver.resolve_cached(name, &check);
        assert_eq!(
            format!("{uncached:?}"),
            format!("{cached:?}"),
            "cache changed the outcome for {name}"
        );
    }
    let probes = check.hits() + check.misses();
    println!("\n=== engine: memoized resolution vs seed hot path ===");
    println!(
        "{} customer names over {PROVIDERS} shared depth-{CHAIN_DEPTH} CDN chains",
        names.len(),
    );
    println!(
        "shared-tail cache: {} entries, {} hits / {} misses ({:.1}% tail-probe hit rate)",
        check.len(),
        check.hits(),
        check.misses(),
        100.0 * check.hits() as f64 / probes.max(1) as f64,
    );
    // Every query after each provider's first walks two unique nodes
    // (query name, customer alias) and then splices the shared tail from
    // one cache hit — saving CHAIN_DEPTH - 1 zone walks per name.
    assert!(
        check.hits() as usize >= customers - PROVIDERS * CHAIN_DEPTH,
        "workload must be shared-CNAME-heavy for this bench to mean anything"
    );

    let mut group = c.benchmark_group("engine_snapshot");
    group.sample_size(10);
    // The seed's hot path: every name re-walks the full shared chain.
    group.bench_function("resolve_uncached_seed_style", |b| {
        b.iter(|| {
            names
                .iter()
                .filter(|name| resolver.resolve(name).is_ok())
                .count()
        })
    });
    // The engine's hot path on a cold cache — what one epoch's first
    // full run pays, misses and fills included.
    group.bench_function("resolve_memoized_cold_cache", |b| {
        b.iter(|| {
            let cache = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
            names
                .iter()
                .filter(|name| resolver.resolve_cached(name, &cache).is_ok())
                .count()
        })
    });
    // Steady state within an epoch: re-runs, subdomain probes and
    // revalidation studies hit a warm cache (read-locks only).
    let warm = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
    for name in &names {
        let _ = resolver.resolve_cached(name, &warm);
    }
    group.bench_function("resolve_memoized_warm_cache", |b| {
        b.iter(|| {
            names
                .iter()
                .filter(|name| resolver.resolve_cached(name, &warm).is_ok())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
