//! Ablation: bin size. The paper settled on 10k bins "after
//! experimenting with different bin sizes" — this bench repeats that
//! experiment on Figure 2's valid series: the head-vs-tail trend must be
//! robust across bin widths, while per-bin noise shrinks as bins grow.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig2_rpki_outcome;
use ripki::stats::trend_slope;
use ripki_bench::Study;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let n = study.results.domains.len();
    // Bin widths proportional to the paper's 1k/5k/10k/50k over 1M.
    let widths = [n / 100, n / 20, n / 10, n / 2];

    println!("\n=== ablation: bin size (Figure 2 valid series) ===");
    println!("bin width   bins   head%   tail%   slope sign");
    for w in widths {
        let w = w.max(1);
        let fig = fig2_rpki_outcome(&study.results, w);
        let head = fig.valid.range_mean(0, n / 10).unwrap_or(0.0);
        let tail = fig.valid.range_mean(n * 9 / 10, n).unwrap_or(0.0);
        let slope = trend_slope(&fig.valid);
        println!(
            "{:>9}   {:>4}   {:>5.2}   {:>5.2}   {}",
            w,
            fig.valid.len(),
            head * 100.0,
            tail * 100.0,
            match slope {
                Some(s) if s > 0.0 => "rising",
                Some(s) if s < 0.0 => "falling",
                _ => "flat",
            }
        );
    }
    println!("(the rank trend must not be an artifact of the bin width)");

    c.bench_function("ablation_binning/four_widths", |b| {
        b.iter(|| {
            for w in widths {
                let _ = fig2_rpki_outcome(&study.results, w.max(1));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
