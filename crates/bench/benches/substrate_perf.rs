//! Substrate micro-benchmarks: the data-structure and crypto choices the
//! pipeline's throughput rests on.
//!
//! * prefix-trie covering lookup vs a naive linear scan (the design
//!   choice DESIGN.md calls out for step 3);
//! * SHA-256 throughput (manifest hashing);
//! * signature verification (certificate chain walking);
//! * RFC 6811 validation per announcement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_crypto::schnorr::SecretKey;
use ripki_crypto::sha256::sha256;
use ripki_net::{Asn, IpPrefix, Ipv4Prefix, PrefixTrie};
use std::net::{IpAddr, Ipv4Addr};

fn random_prefixes(n: usize, seed: u64) -> Vec<IpPrefix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(12..=24);
            IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::from(rng.gen::<u32>()), len).unwrap())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // --- trie vs linear scan -------------------------------------------
    let prefixes = random_prefixes(100_000, 7);
    let trie: PrefixTrie<usize> = prefixes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<IpAddr> = (0..1024)
        .map(|_| IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())))
        .collect();

    let mut group = c.benchmark_group("covering_lookup_100k_table");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("radix_trie", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for q in &queries {
                found += trie.covering_addr(*q).len();
            }
            found
        })
    });
    group.sample_size(10);
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for q in &queries {
                found += prefixes.iter().filter(|p| p.contains_addr(*q)).count();
            }
            found
        })
    });
    group.finish();

    // --- SHA-256 throughput --------------------------------------------
    let data = vec![0xabu8; 64 * 1024];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("hash_64KiB", |b| b.iter(|| sha256(&data)));
    group.finish();

    // --- signatures ------------------------------------------------------
    let sk = SecretKey::from_seed(b"bench");
    let pk = sk.public_key();
    let msg = vec![0x5au8; 512];
    let sig = sk.sign(&msg);
    let mut group = c.benchmark_group("sim_signature");
    group.bench_function("sign_512B", |b| b.iter(|| sk.sign(&msg)));
    group.bench_function("verify_512B", |b| b.iter(|| pk.verify(&msg, &sig)));
    group.finish();

    // --- RFC 6811 --------------------------------------------------------
    let vrps: Vec<VrpTriple> = random_prefixes(50_000, 11)
        .into_iter()
        .enumerate()
        .map(|(i, prefix)| VrpTriple {
            prefix,
            max_length: prefix.len().saturating_add(4).min(32),
            asn: Asn::new(i as u32 % 5_000),
        })
        .collect();
    let validator = RouteOriginValidator::from_vrps(vrps);
    let announcements = random_prefixes(1024, 13);
    let mut group = c.benchmark_group("rfc6811");
    group.throughput(Throughput::Elements(announcements.len() as u64));
    group.bench_function("validate_50k_vrps", |b| {
        b.iter(|| {
            announcements
                .iter()
                .enumerate()
                .map(|(i, p)| validator.validate(p, Asn::new(i as u32 % 5_000)) as u8 as u64)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
