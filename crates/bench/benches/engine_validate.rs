//! Incremental RPKI validation vs a from-scratch full pass.
//!
//! `IncrementalValidator` memoizes validation per publication point, so
//! an epoch of churn that dirties a handful of CAs should revalidate
//! only those subtrees while every clean point is reused. This bench
//! builds a repository at roughly the 20k-object scale of a small RIR
//! (5 trust anchors, 200 CAs, 100 ROAs each), then replays epochs in
//! which two CAs change a ROA each — ~1% of publication points, and
//! with each dirty point revalidated whole, ~1% of all objects.
//!
//! Besides the Criterion comparison, the bench writes a machine-readable
//! summary (mean per-epoch apply cost, full-pass cost, speedup) to
//! `results/BENCH_validate.json` so the acceptance number survives the
//! run.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::repo::{Repository, RepositoryBuilder};
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::{Duration, SimTime};
use ripki_rpki::validate::validate;
use ripki_rpki::{IncrementalValidator, Resources};

const TAS: usize = 5;
const CAS_PER_TA: usize = 40;
const ROAS_PER_CA: usize = 100;
/// CAs whose ROA set changes each epoch (= dirty publication points).
const DIRTY_CAS_PER_EPOCH: usize = 2;
/// Dirty CAs per epoch for the thread-scaling sweep: the ~1% default
/// leaves too little parallel grain to occupy several workers, so the
/// sweep churns ~8% of publication points per epoch instead.
const SCALING_DIRTY_CAS: usize = 16;
/// Timed epochs; one extra snapshot seeds the validator outside timing.
const EPOCHS: usize = 24;

fn prefix(ta: usize, ca: usize, roa: usize) -> IpPrefix {
    format!("{}.{}.{}.0/24", 10 + ta, ca, roa)
        .parse()
        .expect("well-formed bench prefix")
}

/// The repository sequence: a base snapshot plus `EPOCHS` churned
/// successors, each differing from its predecessor in the ROA sets of
/// `dirty_per_epoch` distinct CAs (one ROA swapped per CA).
fn build_epochs(dirty_per_epoch: usize) -> (Vec<Repository>, SimTime) {
    let start = SimTime::EPOCH;
    let now = start + Duration::days(1);
    let mut b = RepositoryBuilder::new(42, start);
    let mut cas = Vec::with_capacity(TAS * CAS_PER_TA);
    for t in 0..TAS {
        let ta_res = Resources::from_prefixes([format!("{}.0.0.0/8", 10 + t)
            .parse::<IpPrefix>()
            .expect("well-formed TA block")]);
        let ta = b.add_trust_anchor(&format!("TA-{t}"), ta_res);
        for c in 0..CAS_PER_TA {
            let ca_res = Resources::from_prefixes([format!("{}.{c}.0.0/16", 10 + t)
                .parse::<IpPrefix>()
                .expect("well-formed CA block")]);
            let ca = b
                .add_ca(ta, &format!("CA-{t}-{c}"), ca_res)
                .expect("CA resources within TA");
            for r in 0..ROAS_PER_CA {
                b.add_roa(
                    ca,
                    Asn::new((1000 + t * CAS_PER_TA + c) as u32),
                    vec![RoaPrefix::exact(prefix(t, c, r))],
                )
                .expect("ROA within CA resources");
            }
            cas.push((t, c, ca));
        }
    }

    let mut repos = Vec::with_capacity(EPOCHS + 1);
    repos.push(b.snapshot());
    let total_cas = cas.len();
    for epoch in 0..EPOCHS {
        for d in 0..dirty_per_epoch {
            let (t, c, ca) = cas[(epoch * dirty_per_epoch + d) % total_cas];
            // Swap one ROA: retire the lowest-serial one still published
            // and issue a fresh one over an unused /24 of the CA's /16.
            if let Some((_, serial, _)) =
                b.list_roas().into_iter().find(|(owner, _, _)| *owner == ca)
            {
                b.remove_roa(ca, serial).expect("CA exists");
            }
            b.add_roa(
                ca,
                Asn::new((5000 + epoch) as u32),
                vec![RoaPrefix::exact(prefix(t, c, ROAS_PER_CA + epoch))],
            )
            .expect("replacement ROA within CA resources");
        }
        repos.push(b.snapshot());
    }
    (repos, now)
}

fn bench(c: &mut Criterion) {
    let (repos, now) = build_epochs(DIRTY_CAS_PER_EPOCH);

    // Seed on the base snapshot: the first apply is a full pass and
    // tells us the object count; a long-lived relying party pays it
    // once at startup.
    let mut inc = IncrementalValidator::default();
    let seed_delta = inc.apply(&repos[0], now);
    let objects = seed_delta.stats.objects_validated;

    // Instant-based acceptance measurement: mean apply cost over the
    // churned epochs vs mean full-pass cost on the final snapshot.
    let mut objects_revalidated = 0usize;
    let mut points_reused = 0usize;
    let mut points_total = 0usize;
    let t0 = std::time::Instant::now();
    for repo in &repos[1..] {
        let delta = inc.apply(repo, now);
        objects_revalidated += delta.stats.objects_validated;
        points_reused += delta.stats.points_reused;
        points_total += delta.stats.points_total;
    }
    let incremental_s = t0.elapsed().as_secs_f64() / EPOCHS as f64;
    let mean_objects = objects_revalidated as f64 / EPOCHS as f64;

    let t0 = std::time::Instant::now();
    let full_passes = 3;
    for _ in 0..full_passes {
        let report = validate(repos.last().expect("non-empty"), now);
        assert_eq!(report.vrps, inc.vrps(), "incremental diverged from full");
    }
    let full_s = t0.elapsed().as_secs_f64() / full_passes as f64;
    let speedup = full_s / incremental_s.max(f64::EPSILON);

    println!("\n=== rpki: incremental apply vs full validate ===");
    println!(
        "{objects} objects across {} publication points, {mean_objects:.1} \
         objects revalidated/epoch ({:.3}% churn), {points_reused}/{points_total} \
         point validations reused",
        TAS * CAS_PER_TA,
        100.0 * mean_objects / objects.max(1) as f64,
    );
    println!(
        "incremental {:.3} ms/epoch, full pass {:.1} ms, speedup {speedup:.1}x",
        incremental_s * 1e3,
        full_s * 1e3,
    );

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    json.insert("bench".into(), "engine_validate".into());
    json.insert(
        "objects".into(),
        serde_json::to_value(&objects).expect("usize serializes"),
    );
    json.insert(
        "publication_points".into(),
        serde_json::to_value(&(TAS * CAS_PER_TA)).expect("usize serializes"),
    );
    json.insert("mean_objects_revalidated".into(), num(mean_objects));
    json.insert(
        "churn_fraction".into(),
        num(mean_objects / objects.max(1) as f64),
    );
    json.insert("incremental_ms_per_epoch".into(), num(incremental_s * 1e3));
    json.insert("full_validate_ms".into(), num(full_s * 1e3));
    json.insert("speedup".into(), num(speedup));

    // Thread-scaling sweep over a heavier churn sequence: one fresh
    // validator per worker count, identical inputs, so the only varying
    // quantity is the execute stage's parallelism. The per-thread rows
    // are informational (bench_gate keeps gating on the 1-thread
    // numbers above); `cpus` records the host's real core budget so a
    // flat curve on a small machine reads as what it is.
    println!("\n--- thread scaling ({SCALING_DIRTY_CAS} dirty CAs/epoch) ---");
    let (scaling_repos, _) = build_epochs(SCALING_DIRTY_CAS);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut counts = vec![1usize, 2, 4, cpus];
    counts.sort_unstable();
    counts.dedup();
    let mut baseline_ms = f64::NAN;
    let mut reference_vrps = None;
    let mut rows = Vec::with_capacity(counts.len());
    for &threads in &counts {
        let mut v = IncrementalValidator::default();
        v.set_worker_threads(threads);
        v.apply(&scaling_repos[0], now);
        let t0 = std::time::Instant::now();
        for repo in &scaling_repos[1..] {
            v.apply(repo, now);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / EPOCHS as f64;
        if threads == 1 {
            baseline_ms = ms;
        }
        // Thread count must never change the result.
        match &reference_vrps {
            None => reference_vrps = Some(v.vrps()),
            Some(r) => assert_eq!(r, &v.vrps(), "thread count changed the VRP set"),
        }
        let speedup_vs_1 = baseline_ms / ms.max(f64::EPSILON);
        println!("{threads:>3} threads: {ms:.3} ms/epoch, speedup {speedup_vs_1:.2}x vs 1 thread");
        let mut row = serde_json::Map::new();
        row.insert(
            "threads".into(),
            serde_json::to_value(&threads).expect("usize serializes"),
        );
        row.insert("ms_per_epoch".into(), num(ms));
        row.insert("speedup_vs_1".into(), num(speedup_vs_1));
        rows.push(serde_json::Value::Object(row));
    }
    let mut scaling = serde_json::Map::new();
    scaling.insert(
        "cpus".into(),
        serde_json::to_value(&cpus).expect("usize serializes"),
    );
    scaling.insert(
        "dirty_cas_per_epoch".into(),
        serde_json::to_value(&SCALING_DIRTY_CAS).expect("usize serializes"),
    );
    scaling.insert("threads".into(), serde_json::Value::Array(rows));
    json.insert("scaling".into(), serde_json::Value::Object(scaling));
    let json = serde_json::Value::Object(json);
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).ok();
    let path = format!("{results_dir}/BENCH_validate.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut group = c.benchmark_group("engine_validate");
    group.sample_size(10);
    let mut cycle = repos[1..].iter().cycle();
    group.bench_function("incremental_apply_one_epoch", |b| {
        b.iter(|| {
            let repo = cycle.next().expect("cycle is infinite");
            inc.apply(repo, now)
        })
    });
    group.bench_function("full_validate", |b| {
        b.iter(|| validate(repos.last().expect("non-empty"), now))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
