//! Incremental counterfactual application vs full engine rebuild.
//!
//! The `whatif` runner's reason to exist: a counterfactual scenario
//! ("the top CDN signs ROAs for all its prefixes") compiles into one
//! synthetic churn epoch, and `StudyEngine::apply_events` carries it
//! through the same incremental plane real churn takes — the validator
//! revisits only the publication points the lever touched, and the
//! reverse indices re-measure only the ranks the new VRPs can reach. A
//! naive runner would instead rebuild a second engine against the
//! counterfactual repository and re-run the whole study; the gap
//! between the two is what makes interactive what-if exploration
//! feasible at paper scale.
//!
//! Besides the Criterion comparison, the bench writes a
//! machine-readable summary (mean counterfactual apply cost, full
//! rebuild cost, speedup) to `results/BENCH_whatif.json` so the
//! acceptance number survives the run.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_bench::Study;
use ripki_net::PrefixSet;
use ripki_rpki::{Resources, RoaPrefix};
use ripki_websim::allocation::RIR_NAMES;
use ripki_websim::churn::{EpochChurn, WorldEvent};
use std::sync::Arc;
use std::time::Instant;

/// Counterfactual epochs applied per timed round (alternating the
/// lever on and off, so every application does real validator work).
const ROUNDS: usize = 8;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let scenario = &study.scenario;
    let domains = study.results.domains.len();

    // Compile the canonical lever — the top CDN signs ROAs for every
    // prefix it announces — by evolving the still-open issuing program
    // that produced the scenario's repository (untouched CAs re-issue
    // byte-identically, so the delta is exactly the lever's ROAs).
    let (idx, op) = scenario
        .operators
        .iter()
        .enumerate()
        .find(|(_, op)| op.name == "Akamai")
        .expect("the operator model always includes the top CDN");
    let (mut builder, _) = scenario.issuing_builder();
    let ca_name = format!("{}-{}", op.name, idx);
    let ca = match builder.find_ca(&ca_name) {
        Some(ca) => ca,
        None => {
            let ta = builder
                .find_ca(RIR_NAMES[op.rir])
                .expect("the issuing program created all five RIR trust anchors");
            let resources = Resources {
                prefixes: PrefixSet::from_prefixes(
                    scenario
                        .holdings
                        .iter()
                        .filter(|h| h.operator == idx)
                        .map(|h| h.prefix),
                ),
                ..Default::default()
            };
            builder
                .add_ca(ta, &ca_name, resources)
                .expect("CDN holdings are within its RIR's resources")
        }
    };
    let mut signs = Vec::new();
    let mut revokes = Vec::new();
    for h in scenario.holdings.iter().filter(|h| h.operator == idx) {
        builder
            .add_roa(
                ca,
                h.asn,
                vec![RoaPrefix::up_to(h.prefix, h.deepest_announced)],
            )
            .expect("holding prefixes are within the CDN's CA resources");
        signs.push(WorldEvent::RoaAdded {
            prefix: h.prefix,
            asn: h.asn,
        });
        revokes.push(WorldEvent::RoaRevoked {
            prefix: h.prefix,
            asn: h.asn,
        });
    }
    let roas_signed = signs.len();
    let whatif_repo = Arc::new(builder.snapshot());
    let baseline_repo = Arc::new(scenario.repository.clone());
    let to_whatif = EpochChurn {
        events: signs,
        repository: Some(Arc::clone(&whatif_repo)),
        now: scenario.now,
    };
    let back = EpochChurn {
        events: revokes,
        repository: Some(Arc::clone(&baseline_repo)),
        now: scenario.now,
    };

    let engine = &study.engine;
    let mut results = study.results.clone();
    // First applications build the reverse indices and seed the
    // incremental validator; pay that outside the timed region, as a
    // long-lived what-if session would.
    engine.apply_events(&to_whatif, &mut results);
    engine.apply_events(&back, &mut results);

    // Instant-based acceptance measurement: mean counterfactual apply
    // cost (lever on, lever off, repeated) vs one full rebuild + re-run
    // against the counterfactual repository.
    let mut remeasured = 0usize;
    let t0 = Instant::now();
    for i in 0..ROUNDS {
        let batch = if i % 2 == 0 { &to_whatif } else { &back };
        let delta = engine.apply_events(batch, &mut results);
        remeasured += delta.domains_remeasured;
    }
    let incremental_s = t0.elapsed().as_secs_f64() / ROUNDS as f64;
    let mean_remeasured = remeasured as f64 / ROUNDS as f64;

    let t0 = Instant::now();
    let rebuilt = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        whatif_repo.as_ref(),
        PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            ..Default::default()
        },
    );
    let full = rebuilt.run(&scenario.ranking);
    let full_s = t0.elapsed().as_secs_f64();
    assert_eq!(full.domains.len(), domains);
    let speedup = full_s / incremental_s.max(f64::EPSILON);

    println!("\n=== whatif: incremental counterfactual vs full rebuild ===");
    println!(
        "{domains} domains, lever signs {roas_signed} ROAs, \
         ~{mean_remeasured:.0} domains re-measured/application"
    );
    println!(
        "incremental {:.2} ms/application, full rebuild {:.1} ms, speedup {speedup:.1}x",
        incremental_s * 1e3,
        full_s * 1e3,
    );

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    let count = |v: usize| serde_json::to_value(&v).expect("usize serializes");
    json.insert("bench".into(), "engine_whatif".into());
    json.insert("domains".into(), count(domains));
    json.insert("roas_signed".into(), count(roas_signed));
    json.insert("mean_domains_remeasured".into(), num(mean_remeasured));
    json.insert(
        "incremental_counterfactual_ms".into(),
        num(incremental_s * 1e3),
    );
    json.insert("full_rebuild_ms".into(), num(full_s * 1e3));
    json.insert("speedup".into(), num(speedup));
    let json = serde_json::Value::Object(json);
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).ok();
    let path = format!("{results_dir}/BENCH_whatif.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut group = c.benchmark_group("engine_whatif");
    group.sample_size(10);
    group.bench_function("incremental_counterfactual", |b| {
        b.iter(|| {
            engine.apply_events(&to_whatif, &mut results);
            engine.apply_events(&back, &mut results);
        });
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let rebuilt = StudyEngine::new(
                scenario.zones.clone(),
                scenario.rib.clone(),
                whatif_repo.as_ref(),
                PipelineConfig {
                    bogus_dns_ppm: scenario.config.bogus_dns_ppm,
                    now: scenario.now,
                    ..Default::default()
                },
            );
            rebuilt.run(&scenario.ranking)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
