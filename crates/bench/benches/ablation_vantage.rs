//! Ablation: resolver vantage. The paper argues "our main results remain
//! independent of the DNS server selection because CDNs are reluctant to
//! create ROAs at all" — re-run the pipeline from all three resolver
//! vantages and compare the Figure 2 means.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::engine::StudyEngine;
use ripki::figures::fig2_rpki_outcome;
use ripki::pipeline::PipelineConfig;
use ripki_bench::Study;
use ripki_dns::Vantage;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let vantages = [
        Vantage::GOOGLE_DNS_BERLIN,
        Vantage::OPEN_DNS,
        Vantage::LOOKING_GLASS_US01,
    ];

    println!("\n=== ablation: DNS vantage (Figure 2 overall means) ===");
    println!("vantage                     valid%   invalid%   notfound%");
    for vantage in vantages {
        let engine = StudyEngine::new(
            study.scenario.zones.clone(),
            study.scenario.rib.clone(),
            &study.scenario.repository,
            PipelineConfig {
                vantage,
                bogus_dns_ppm: 0,
                now: study.scenario.now,
                ..Default::default()
            },
        );
        let results = engine.run(&study.scenario.ranking);
        let fig = fig2_rpki_outcome(&results, study.bin);
        println!(
            "{:<26}  {:>6.2}   {:>8.3}   {:>9.2}",
            vantage.to_string(),
            fig.valid.overall_mean().unwrap_or(0.0) * 100.0,
            fig.invalid.overall_mean().unwrap_or(0.0) * 100.0,
            fig.not_found.overall_mean().unwrap_or(0.0) * 100.0,
        );
    }
    println!("(the conclusions must agree across vantages)");

    let mut group = c.benchmark_group("ablation_vantage");
    group.sample_size(10);
    group.bench_function("one_extra_vantage_run", |b| {
        let engine = StudyEngine::new(
            study.scenario.zones.clone(),
            study.scenario.rib.clone(),
            &study.scenario.repository,
            PipelineConfig {
                vantage: Vantage::OPEN_DNS,
                bogus_dns_ppm: 0,
                now: study.scenario.now,
                ..Default::default()
            },
        );
        b.iter(|| engine.run(&study.scenario.ranking))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
