//! Figure 2: "RPKI validation outcome for the 1 million Alexa domains" —
//! valid / invalid / not-found per rank bin.
//!
//! Paper: valid ≈4.0% in the top 100k rising to ≈5.5% in the last 100k;
//! invalid ≈0.09%, flat; the rest not found.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig2_rpki_outcome;
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let n = study.results.domains.len();
    let fig = fig2_rpki_outcome(&study.results, study.bin);

    println!("\n=== Figure 2: RPKI validation outcome ===");
    print_bin_header(study.bin, fig.valid.len());
    print_percent_series("valid %", &fig.valid);
    print_percent_series("invalid %", &fig.invalid);
    print_percent_series("not found %", &fig.not_found);
    println!(
        "valid head {:.2}% → tail {:.2}%   invalid avg {:.3}%   (paper: 4.0% → 5.5%, 0.09%)",
        fig.valid.range_mean(0, n / 10).unwrap_or(0.0) * 100.0,
        fig.valid.range_mean(n * 9 / 10, n).unwrap_or(0.0) * 100.0,
        fig.invalid.overall_mean().unwrap_or(0.0) * 100.0,
    );

    c.bench_function("fig2/build_series", |b| {
        b.iter(|| fig2_rpki_outcome(&study.results, study.bin))
    });

    // The expensive part Figure 2 sits on: the full engine run.
    let mut group = c.benchmark_group("fig2/pipeline");
    group.sample_size(10);
    group.bench_function("measure_all_domains", |b| {
        b.iter(|| study.engine.run(&study.scenario.ranking))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
