//! Throughput of the HTTP query plane under concurrent clients.
//!
//! Starts a real `ripki-serve` server over a bench-scale measured world
//! and hammers it from several keep-alive client threads: sustained
//! `/api/v1/validity` queries (the hot path — one trie lookup plus a
//! small JSON payload per request) and full `/vrps.json` exports (one
//! connection each; the body is streamed and close-delimited).
//!
//! Besides the Criterion numbers, writes the acceptance summary
//! (requests/s for both endpoints) to `results/BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_bench::Study;
use ripki_serve::{EpochView, Server, ServerConfig, SharedView};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const VALIDITY_REQUESTS_PER_CLIENT: usize = 500;
const VRPS_REQUESTS_PER_CLIENT: usize = 25;

/// One keep-alive GET; returns the response length. Reads exactly one
/// content-length-framed response off the stream.
fn keep_alive_get(stream: &mut TcpStream, path: &str) -> usize {
    // One write per request: interleaving small writes with Nagle on
    // triggers the 40 ms delayed-ACK stall and benchmarks the kernel
    // timer instead of the server.
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send");
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("read head");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("ascii head");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("framed response")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    head.len() + length
}

/// One connection-per-request GET (streamed endpoints close the socket).
fn oneshot_get(addr: SocketAddr, path: &str) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    assert!(raw.starts_with(b"HTTP/1.1 200"), "bad response");
    raw.len()
}

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let view = EpochView::new(
        study.engine.snapshot(),
        Arc::new(study.results.clone()),
        None,
        Default::default(),
    );
    let server = Server::start(
        "127.0.0.1:0",
        Arc::new(SharedView::new(view)),
        ServerConfig {
            workers: CLIENTS + 2,
            // Criterion's warm-up alone exceeds the default per-connection
            // request cap; an uncapped connection keeps the latency bench
            // on a single keep-alive stream.
            max_requests_per_connection: usize::MAX,
            ..Default::default()
        },
    )
    .expect("bind bench server");
    let addr = server.addr();

    // Query mix: every measured (prefix, origin) pair.
    let mut queries: Vec<String> = study
        .results
        .domains
        .iter()
        .flat_map(|d| d.bare.pairs.iter().chain(&d.www.pairs))
        .map(|p| format!("/api/v1/validity?asn={}&prefix={}", p.origin, p.prefix))
        .collect();
    queries.sort();
    queries.dedup();
    assert!(!queries.is_empty());
    let queries = Arc::new(queries);

    // Sustained validity throughput over keep-alive connections.
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut bytes = 0usize;
                for i in 0..VALIDITY_REQUESTS_PER_CLIENT {
                    let path = &queries[(client + i * CLIENTS) % queries.len()];
                    bytes += keep_alive_get(&mut stream, path);
                }
                bytes
            })
        })
        .collect();
    let validity_bytes: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let validity_total = CLIENTS * VALIDITY_REQUESTS_PER_CLIENT;
    let validity_rps = validity_total as f64 / t0.elapsed().as_secs_f64();

    // Full VRP exports, one connection per request.
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut bytes = 0usize;
                for _ in 0..VRPS_REQUESTS_PER_CLIENT {
                    bytes += oneshot_get(addr, "/vrps.json");
                }
                bytes
            })
        })
        .collect();
    let vrps_bytes: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let vrps_total = CLIENTS * VRPS_REQUESTS_PER_CLIENT;
    let vrps_rps = vrps_total as f64 / t0.elapsed().as_secs_f64();

    let vrp_count = study.engine.snapshot().vrps().len();
    println!("\n=== serve: HTTP query plane throughput ===");
    println!(
        "{} domains, {vrp_count} VRPs, {CLIENTS} concurrent clients",
        study.results.domains.len(),
    );
    println!(
        "validity {validity_rps:.0} req/s ({:.1} KiB total), vrps.json {vrps_rps:.0} req/s ({:.1} KiB total)",
        validity_bytes as f64 / 1024.0,
        vrps_bytes as f64 / 1024.0,
    );

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    json.insert("bench".into(), "serve_throughput".into());
    json.insert(
        "domains".into(),
        serde_json::to_value(&study.results.domains.len()).expect("usize serializes"),
    );
    json.insert(
        "vrp_count".into(),
        serde_json::to_value(&vrp_count).expect("usize serializes"),
    );
    json.insert(
        "clients".into(),
        serde_json::to_value(&CLIENTS).expect("usize serializes"),
    );
    json.insert(
        "validity_requests".into(),
        serde_json::to_value(&validity_total).expect("usize serializes"),
    );
    json.insert("validity_req_per_s".into(), num(validity_rps));
    json.insert(
        "vrps_json_requests".into(),
        serde_json::to_value(&vrps_total).expect("usize serializes"),
    );
    json.insert("vrps_json_req_per_s".into(), num(vrps_rps));
    let json = serde_json::Value::Object(json);
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).ok();
    let path = format!("{results_dir}/BENCH_serve.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Criterion latency view: one keep-alive round trip per iteration.
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut i = 0usize;
    group.bench_function("validity_roundtrip", |b| {
        b.iter(|| {
            let path = &queries[i % queries.len()];
            i += 1;
            keep_alive_get(&mut stream, path)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
