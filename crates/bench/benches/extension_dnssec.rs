//! Extension (paper §7): "we will compare RPKI deployment with the
//! adoption of other core protocols such as DNSSEC." The scenario signs
//! second-level zones at per-TLD 2015-era rates; the pipeline records a
//! validating resolver's AD bit alongside the RPKI outcome.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::ext_dnssec_comparison;
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let ext = ext_dnssec_comparison(&study.results, study.bin);

    println!("\n=== extension: RPKI vs DNSSEC adoption across the ranking ===");
    print_bin_header(study.bin, ext.rpki_covered.len());
    print_percent_series("RPKI-covered %", &ext.rpki_covered);
    print_percent_series("DNSSEC-signed %", &ext.dnssec_signed);
    println!(
        "overall: RPKI {:.2}% vs DNSSEC {:.2}% — both niche, DNSSEC the rarer at the SLD level",
        ext.rpki_covered.overall_mean().unwrap_or(0.0) * 100.0,
        ext.dnssec_signed.overall_mean().unwrap_or(0.0) * 100.0,
    );

    c.bench_function("extension_dnssec/build_series", |b| {
        b.iter(|| ext_dnssec_comparison(&study.results, study.bin))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
