//! Incremental re-measurement vs full re-run under realistic churn.
//!
//! The longitudinal engine's reason to exist: one epoch of world churn
//! (a handful of zone edits, route flaps and ROA changes) touches well
//! under 1% of measured domains, so `StudyEngine::apply_events` should
//! beat a from-scratch `run` by a wide margin — the reverse indices
//! re-measure only the ranks a delta can actually affect.
//!
//! Besides the Criterion comparison, the bench writes a machine-readable
//! summary (mean per-epoch apply cost, full-run cost, speedup) to
//! `results/BENCH_incremental.json` so the acceptance number survives
//! the run.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_bench::Study;
use ripki_websim::churn::{ChurnConfig, ChurnStream, EpochChurn};
use std::time::Instant;

/// Pre-generated churn epochs; cycled during timing so every iteration
/// applies a real, non-empty batch.
const EPOCHS: usize = 8;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let domains = study.results.domains.len();
    let mut stream = ChurnStream::new(&study.scenario, ChurnConfig::default());
    let batches: Vec<EpochChurn> = (0..EPOCHS).map(|_| stream.next_epoch()).collect();
    let events_per_epoch =
        batches.iter().map(|b| b.events.len()).sum::<usize>() as f64 / EPOCHS as f64;

    let engine = &study.engine;
    let mut results = study.results.clone();
    // First apply builds the reverse indices; pay that outside the
    // timed region, as a long-lived engine would.
    engine.apply_events(&batches[0], &mut results);

    // Instant-based acceptance measurement: mean apply cost over the
    // batch cycle vs mean full re-run cost on the same snapshot.
    let mut remeasured = 0usize;
    let t0 = Instant::now();
    for batch in batches.iter().cycle().take(EPOCHS * 4) {
        let delta = engine.apply_events(batch, &mut results);
        remeasured += delta.domains_remeasured;
    }
    let incremental_s = t0.elapsed().as_secs_f64() / (EPOCHS * 4) as f64;
    let mean_remeasured = remeasured as f64 / (EPOCHS * 4) as f64;

    let t0 = Instant::now();
    let full_runs = 3;
    for _ in 0..full_runs {
        let _ = engine.run(&study.scenario.ranking);
    }
    let full_s = t0.elapsed().as_secs_f64() / full_runs as f64;
    let speedup = full_s / incremental_s.max(f64::EPSILON);

    println!("\n=== engine: incremental apply_events vs full re-run ===");
    println!(
        "{domains} domains, {events_per_epoch:.1} events/epoch touching {mean_remeasured:.1} \
         domains ({:.3}% churn)",
        100.0 * mean_remeasured / domains.max(1) as f64,
    );
    println!(
        "incremental {:.3} ms/epoch, full re-run {:.1} ms, speedup {speedup:.1}x",
        incremental_s * 1e3,
        full_s * 1e3,
    );

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    json.insert("bench".into(), "engine_incremental".into());
    json.insert(
        "domains".into(),
        serde_json::to_value(&domains).expect("usize serializes"),
    );
    json.insert("events_per_epoch".into(), num(events_per_epoch));
    json.insert("mean_domains_remeasured".into(), num(mean_remeasured));
    json.insert(
        "churn_fraction".into(),
        num(mean_remeasured / domains.max(1) as f64),
    );
    json.insert("incremental_ms_per_epoch".into(), num(incremental_s * 1e3));
    json.insert("full_rerun_ms".into(), num(full_s * 1e3));
    json.insert("speedup".into(), num(speedup));

    // Thread-scaling sweep: one engine per worker count over the same
    // scenario, timing both parallel planes — the sharded full run and
    // the incremental apply_events re-measure. Rows are informational
    // (bench_gate keeps gating on the single-threaded numbers above);
    // `threads_effective` records what `worker_threads()` actually
    // resolved to (the RIPKI_THREADS env override wins over the config),
    // and `cpus` the host's real core budget.
    println!("\n--- thread scaling ---");
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut counts = vec![1usize, 2, 4, cpus];
    counts.sort_unstable();
    counts.dedup();
    let mut baseline_run = f64::NAN;
    let mut baseline_apply = f64::NAN;
    let mut rows = Vec::with_capacity(counts.len());
    for &threads in &counts {
        let config = PipelineConfig {
            bogus_dns_ppm: study.scenario.config.bogus_dns_ppm,
            now: study.scenario.now,
            threads,
            ..Default::default()
        };
        let effective = config.worker_threads();
        let engine = StudyEngine::new(
            study.scenario.zones.clone(),
            study.scenario.rib.clone(),
            &study.scenario.repository,
            config,
        );
        // Warm run (fills the resolution cache) + index build happen
        // outside the timed regions, as for the headline numbers.
        let mut res = engine.run(&study.scenario.ranking);
        engine.apply_events(&batches[0], &mut res);

        let t0 = Instant::now();
        let _ = engine.run(&study.scenario.ranking);
        let run_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for batch in batches.iter().cycle().take(EPOCHS) {
            engine.apply_events(batch, &mut res);
        }
        let apply_ms = t0.elapsed().as_secs_f64() * 1e3 / EPOCHS as f64;
        if threads == 1 {
            baseline_run = run_ms;
            baseline_apply = apply_ms;
        }
        let run_speedup = baseline_run / run_ms.max(f64::EPSILON);
        let apply_speedup = baseline_apply / apply_ms.max(f64::EPSILON);
        println!(
            "{threads:>3} threads (effective {effective}): full run {run_ms:.1} ms \
             ({run_speedup:.2}x vs 1), apply_events {apply_ms:.3} ms/epoch \
             ({apply_speedup:.2}x vs 1)"
        );
        let mut row = serde_json::Map::new();
        row.insert(
            "threads".into(),
            serde_json::to_value(&threads).expect("usize serializes"),
        );
        row.insert(
            "threads_effective".into(),
            serde_json::to_value(&effective).expect("usize serializes"),
        );
        row.insert("full_run_ms".into(), num(run_ms));
        row.insert("full_run_speedup_vs_1".into(), num(run_speedup));
        row.insert("apply_ms_per_epoch".into(), num(apply_ms));
        row.insert("apply_speedup_vs_1".into(), num(apply_speedup));
        rows.push(serde_json::Value::Object(row));
    }
    let mut scaling = serde_json::Map::new();
    scaling.insert(
        "cpus".into(),
        serde_json::to_value(&cpus).expect("usize serializes"),
    );
    scaling.insert("threads".into(), serde_json::Value::Array(rows));
    json.insert("scaling".into(), serde_json::Value::Object(scaling));
    let json = serde_json::Value::Object(json);
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).ok();
    let path = format!("{results_dir}/BENCH_incremental.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut group = c.benchmark_group("engine_incremental");
    group.sample_size(10);
    let mut cycle = batches.iter().cycle();
    group.bench_function("apply_events_one_epoch", |b| {
        b.iter(|| {
            let batch = cycle.next().expect("cycle is infinite");
            engine.apply_events(batch, &mut results)
        })
    });
    group.bench_function("full_rerun", |b| {
        b.iter(|| engine.run(&study.scenario.ranking))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
