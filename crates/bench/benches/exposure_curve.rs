//! Derived experiment: hijack exposure across the ranking — §2.3's
//! attacker turned loose on §4's measured web, on the scenario's real AS
//! topology with the measured VRPs and 50% ROV deployment.
//!
//! The expected result is the paper's thesis as a routing outcome: the
//! popular (CDN-heavy, ROA-poor) head of the ranking is *more* capturable
//! than the tail.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::exposure::{binned, exposure_curve, ExposureConfig};
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let snapshot = study.engine.snapshot();
    let config = ExposureConfig {
        stride: 40,
        ..Default::default()
    };
    let exposures = exposure_curve(
        &study.results.domains,
        &study.scenario.topology,
        snapshot.validator(),
        &config,
    );
    let series = binned(&exposures, study.results.domains.len(), study.bin);

    println!("\n=== exposure: mean hijack capture rate across the ranking ===");
    println!(
        "({} domains sampled, ROV at {:.0}% of {} ASes, {} attackers each)",
        exposures.len(),
        config.rov_deployment * 100.0,
        study.scenario.topology.len(),
        config.attackers_per_domain,
    );
    print_bin_header(study.bin, series.len());
    print_percent_series("capture rate %", &series);
    let covered: Vec<f64> = exposures
        .iter()
        .filter(|e| e.fully_covered)
        .map(|e| e.capture_rate)
        .collect();
    let uncovered: Vec<f64> = exposures
        .iter()
        .filter(|e| !e.fully_covered)
        .map(|e| e.capture_rate)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "fully ROA-covered domains: {:.1}% mean capture  |  uncovered: {:.1}%",
        mean(&covered) * 100.0,
        mean(&uncovered) * 100.0
    );
    assert!(
        covered.is_empty() || uncovered.is_empty() || mean(&covered) < mean(&uncovered),
        "ROA coverage must reduce capture under partial ROV"
    );

    let mut group = c.benchmark_group("exposure");
    group.sample_size(10);
    group.bench_function("curve_40_stride", |b| {
        b.iter(|| {
            exposure_curve(
                &study.results.domains,
                &study.scenario.topology,
                snapshot.validator(),
                &config,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
