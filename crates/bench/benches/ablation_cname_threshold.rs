//! Ablation: the CDN heuristic's indirection threshold. The paper uses
//! "two or more CNAMEs" and argues a conservative underestimate sharpens
//! the analysis; score thresholds 1, 2, 3 against the generator's ground
//! truth.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::classify::{cname_chain_is_cdn, ClassifierScore};
use ripki_bench::Study;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();

    println!("\n=== ablation: CNAME-chain threshold vs ground truth ===");
    println!("threshold   precision   recall");
    for threshold in [1usize, 2, 3] {
        let mut score = ClassifierScore::default();
        for (d, truth) in study.results.domains.iter().zip(&study.scenario.truth) {
            score.observe(cname_chain_is_cdn(d, threshold), truth.cdn.is_some());
        }
        println!(
            "{:>9}   {:>9.3}   {:>6.3}",
            threshold,
            score.precision(),
            score.recall()
        );
    }
    println!("(threshold 2 trades recall for near-perfect precision — the");
    println!(" paper's 'conservative (under)-estimate … sharpens our view')");

    c.bench_function("ablation_threshold/score_all", |b| {
        b.iter(|| {
            let mut score = ClassifierScore::default();
            for (d, truth) in study.results.domains.iter().zip(&study.scenario.truth) {
                score.observe(cname_chain_is_cdn(d, 2), truth.cdn.is_some());
            }
            score
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
