//! Table 1: "Top 10 Alexa domains that have partial or full RPKI
//! coverage, including number of prefixes."

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::tables::{render_table1, table1_top_covered};
use ripki_bench::Study;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let rows = table1_top_covered(&study.results, 10);

    println!("\n=== Table 1: top domains with RPKI coverage ===");
    print!("{}", render_table1(&rows));
    println!("(paper: facebook.com full, most others partial; lowest listed rank 130)");

    c.bench_function("table1/scan_ranking", |b| {
        b.iter(|| table1_top_covered(&study.results, 10))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
