//! §4.2: "CDN Content Benefits from 3rd Party ISPs" — the keyword audit.
//!
//! Paper: 199 CDN ASes, four RPKI entries (all Internap, three origin
//! ASes), ISPs/webhosters >5% penetration.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::cdn_audit::{audit_cdns, summarize};
use ripki_bench::Study;
use ripki_rpki::validate;
use ripki_websim::operators::CDN_SPECS;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let report = validate(&study.scenario.repository, study.scenario.now);
    let names: Vec<&str> = CDN_SPECS.iter().map(|(n, _, _)| *n).collect();
    let rows = audit_cdns(&study.scenario.registry, &report.vrps, &names);
    let summary = summarize(&rows, &study.scenario.registry, &report.vrps);

    println!("\n=== §4.2 CDN audit ===");
    for row in &rows {
        println!("  {row}");
    }
    println!(
        "total CDN ASes {}   RPKI entries {}   deployers {:?}",
        summary.total_cdn_asns, summary.total_rpki_entries, summary.cdns_with_deployment
    );
    println!(
        "ISP penetration {:.1}%   webhoster penetration {:.1}%   (paper: 199 ASes, 4 entries, only Internap, >5%)",
        summary.isp_penetration * 100.0,
        summary.webhoster_penetration * 100.0,
    );

    c.bench_function("cdn_audit/keyword_spotting", |b| {
        b.iter(|| audit_cdns(&study.scenario.registry, &report.vrps, &names))
    });

    let mut group = c.benchmark_group("cdn_audit/rpki");
    group.sample_size(10);
    group.bench_function("validate_repository", |b| {
        b.iter(|| validate(&study.scenario.repository, study.scenario.now))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
