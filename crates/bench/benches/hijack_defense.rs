//! §2.3 attacker model: prefix hijacks vs ROV deployment on an
//! Internet-like topology — capture-rate series plus the cost of a
//! policy-routing propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_bgp::hijack::{deployment_sweep, HijackScenario};
use ripki_bgp::propagate::{accept_all, propagate};
use ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_bgp::topology::Topology;
use ripki_net::{Asn, IpPrefix};

fn bench(c: &mut Criterion) {
    let topology = Topology::generate(2015, 5, 40, 400, 0.08);
    let victim = Asn::new(10_007);
    let attacker = Asn::new(10_311);
    let prefix: IpPrefix = "85.201.0.0/16".parse().unwrap();
    let validator = RouteOriginValidator::from_vrps([VrpTriple {
        prefix,
        max_length: 16,
        asn: victim,
    }]);
    let origin = HijackScenario::origin_hijack(victim, attacker, prefix);
    let sub = HijackScenario::subprefix_hijack(
        victim,
        attacker,
        prefix,
        "85.201.128.0/17".parse().unwrap(),
    );
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("\n=== §2.3: hijack capture rate vs ROV deployment ===");
    println!("ROV%      origin-hijack   subprefix-hijack");
    let o = deployment_sweep(&topology, &origin, &validator, &fractions, 7);
    let s = deployment_sweep(&topology, &sub, &validator, &fractions, 7);
    for ((f, or), (_, sr)) in o.iter().zip(&s) {
        println!(
            "{:>4.0}%   {:>12.1}%   {:>15.1}%",
            f * 100.0,
            or * 100.0,
            sr * 100.0
        );
    }
    println!("(paper's premise: ROAs + ROV neutralise both attack shapes)");

    let mut group = c.benchmark_group("hijack");
    group.sample_size(20);
    group.bench_function("propagate_450_as_topology", |b| {
        b.iter(|| propagate(&topology, &[victim], &accept_all))
    });
    group.bench_function("full_sweep_5_points", |b| {
        b.iter(|| deployment_sweep(&topology, &origin, &validator, &fractions, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
