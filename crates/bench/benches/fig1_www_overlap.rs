//! Figure 1: "Comparison of IP deployment for www and w/o www domain
//! names" — fraction of domains with equal prefix sets per rank bin.
//!
//! Paper: >76% equality in the first 100k, >94% afterwards.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig1_www_overlap;
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let n = study.results.domains.len();
    let fig = fig1_www_overlap(&study.results, study.bin);

    println!("\n=== Figure 1: www vs w/o-www equal prefixes ===");
    print_bin_header(study.bin, fig.len());
    print_percent_series("equal prefixes %", &fig);
    println!(
        "head (first 10%): {:.1}%   tail (last 10%): {:.1}%   (paper: >76% head, >94% tail)",
        fig.range_mean(0, n / 10).unwrap_or(0.0) * 100.0,
        fig.range_mean(n * 9 / 10, n).unwrap_or(0.0) * 100.0,
    );

    c.bench_function("fig1/build_series", |b| {
        b.iter(|| fig1_www_overlap(&study.results, study.bin))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
