//! Delta propagation through the proxy fabric vs snapshot rebuilds.
//!
//! The fabric's reason to exist: one epoch of ROA churn touches a
//! handful of VRPs out of tens of thousands, so a hop that gossips
//! `PayloadUpdate`s with deltas and applies them incrementally
//! (`CacheServer::install_update` taking the delta fast path) should
//! beat a hop that re-ships and re-installs the full snapshot every
//! epoch by a wide margin — that gap is what lets a chain of proxies
//! track the validator in lockstep without N× the validator's work.
//!
//! Both timed paths walk the same wiring — publish into a [`Gossip`],
//! receive on a [`Subscription`], install into an RTR [`CacheServer`] —
//! and differ only in whether the update carries its delta. Besides the
//! Criterion comparison, the bench writes a machine-readable summary
//! (mean per-epoch propagation cost on each path, speedup) to
//! `results/BENCH_proxy.json` so the acceptance number survives the
//! run.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_net::Asn;
use ripki_payload::{PayloadUpdate, VrpDelta, VrpPayload, VrpTriple};
use ripki_proxy::Gossip;
use ripki_rtr::CacheServer;
use std::time::Instant;

/// Size of the steady-state VRP set (order of a mid-size RIR's ROAs).
const VRPS: usize = 60_000;
/// Churn epochs propagated per timed round.
const EPOCHS: usize = 64;
/// VRPs announced + withdrawn per epoch (RiPKI-scale churn: a few
/// operators editing ROAs between validation runs).
const DELTA_VRPS: usize = 10;

fn vrp(i: u32, asn: u32) -> VrpTriple {
    // Unique /24s spread over 10.0.0.0/8 and 11.0.0.0/8.
    let prefix = format!("{}.{}.{}.0/24", 10 + (i >> 16), (i >> 8) & 0xff, i & 0xff);
    VrpTriple {
        prefix: prefix.parse().expect("synthesized prefix"),
        max_length: 24,
        asn: Asn::new(asn),
    }
}

/// The epoch sequence: a big base set, then `EPOCHS` deltas each
/// announcing and withdrawing `DELTA_VRPS / 2` VRPs.
fn build_epochs() -> Vec<VrpPayload> {
    let base: Vec<VrpTriple> = (0..VRPS as u32)
        .map(|i| vrp(i, 64_496 + (i % 97)))
        .collect();
    let mut payloads = vec![VrpPayload::new(1, base)];
    let mut fresh = VRPS as u32;
    for e in 0..EPOCHS as u32 {
        let prev = payloads.last().expect("non-empty");
        let announced: Vec<VrpTriple> = (0..DELTA_VRPS as u32 / 2)
            .map(|k| {
                fresh += 1;
                vrp(fresh, 65_000 + k)
            })
            .collect();
        let withdrawn: Vec<VrpTriple> = prev
            .vrps()
            .iter()
            .skip((e as usize * 131) % (VRPS / 2))
            .take(DELTA_VRPS / 2)
            .copied()
            .collect();
        let delta = VrpDelta::new(prev.epoch(), prev.epoch() + 1, announced, withdrawn);
        let next = prev.apply(&delta).expect("delta chains from prev");
        payloads.push(next);
    }
    payloads
}

/// The per-epoch updates a publisher would gossip. On the fabric's
/// incremental path each update carries its delta (the engine emits
/// deltas natively and upstream hops forward them); the strawman ships
/// snapshot-only updates. Construction happens at the *publisher*, so
/// it stays outside the per-hop propagation measurement below.
fn build_updates(payloads: &[VrpPayload], delta: bool) -> Vec<PayloadUpdate> {
    payloads
        .windows(2)
        .map(|pair| {
            if delta {
                PayloadUpdate::from_previous(&pair[0], pair[1].clone())
            } else {
                PayloadUpdate::snapshot(pair[1].clone())
            }
        })
        .collect()
}

/// One hop of the fabric: publish each epoch's update into a gossip
/// channel, receive it on a subscription, install it into an RTR
/// cache. Returns the mean seconds per epoch. Updates carrying a delta
/// take `install_update`'s incremental fast path; snapshot-only ones
/// force the full set rebuild.
fn propagate(base: &VrpPayload, updates: &[PayloadUpdate]) -> f64 {
    let gossip = Gossip::new();
    let mut sub = gossip.subscribe();
    let cache = CacheServer::new(0x5EED);
    // Seed the hop with the base set outside the timed region, as a
    // long-lived proxy would be.
    gossip.publish(PayloadUpdate::snapshot(base.clone()));
    let seed = sub.recv().expect("base epoch");
    assert!(cache.install_update(&seed));

    let t0 = Instant::now();
    for update in updates {
        assert!(gossip.publish(update.clone()));
        let update = sub.recv().expect("published epoch");
        assert!(cache.install_update(&update));
    }
    t0.elapsed().as_secs_f64() / updates.len() as f64
}

fn bench(c: &mut Criterion) {
    let payloads = build_epochs();
    let final_epoch = payloads.last().expect("non-empty").epoch();
    let base = &payloads[0];
    let delta_updates = build_updates(&payloads, true);
    let snapshot_updates = build_updates(&payloads, false);

    // Warm both paths once, then take the acceptance measurement.
    propagate(base, &delta_updates);
    propagate(base, &snapshot_updates);
    let rounds = 4;
    let mut delta_s = 0.0;
    let mut snapshot_s = 0.0;
    for _ in 0..rounds {
        delta_s += propagate(base, &delta_updates);
        snapshot_s += propagate(base, &snapshot_updates);
    }
    let delta_s = delta_s / f64::from(rounds);
    let snapshot_s = snapshot_s / f64::from(rounds);
    let speedup = snapshot_s / delta_s.max(f64::EPSILON);

    println!("\n=== proxy fabric: delta propagation vs snapshot rebuild ===");
    println!(
        "{VRPS} vrps, {EPOCHS} epochs (final {final_epoch}), ~{DELTA_VRPS} vrps changed/epoch"
    );
    println!(
        "delta path {:.4} ms/epoch, snapshot path {:.3} ms/epoch, speedup {speedup:.1}x",
        delta_s * 1e3,
        snapshot_s * 1e3,
    );

    let mut json = serde_json::Map::new();
    let num = |v: f64| serde_json::to_value(&v).expect("f64 serializes");
    let count = |v: usize| serde_json::to_value(&v).expect("usize serializes");
    json.insert("bench".into(), "engine_proxy".into());
    json.insert("vrps".into(), count(VRPS));
    json.insert("epochs".into(), count(EPOCHS));
    json.insert("delta_vrps_per_epoch".into(), count(DELTA_VRPS));
    json.insert("delta_propagation_ms".into(), num(delta_s * 1e3));
    json.insert("snapshot_rebuild_ms".into(), num(snapshot_s * 1e3));
    json.insert("speedup".into(), num(speedup));
    let json = serde_json::Value::Object(json);
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).ok();
    let path = format!("{results_dir}/BENCH_proxy.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut group = c.benchmark_group("engine_proxy");
    group.sample_size(10);
    group.bench_function("delta_propagation", |b| {
        b.iter(|| propagate(base, &delta_updates))
    });
    group.bench_function("snapshot_rebuild", |b| {
        b.iter(|| propagate(base, &snapshot_updates))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
