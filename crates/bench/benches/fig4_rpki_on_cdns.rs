//! Figure 4: "RPKI deployment statistics on CDNs and for the
//! unconditioned Web".
//!
//! Paper: CDN-hosted sites' RPKI share fluctuates around ≈0.9%,
//! independent of rank — almost an order of magnitude below the overall
//! share.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig4_rpki_on_cdns;
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let fig = fig4_rpki_on_cdns(&study.results, study.bin);

    println!("\n=== Figure 4: RPKI-enabled, all vs CDN-hosted ===");
    print_bin_header(study.bin, fig.rpki_enabled.len());
    print_percent_series("RPKI-enabled %", &fig.rpki_enabled);
    print_percent_series("RPKI-enabled on CDNs %", &fig.rpki_enabled_on_cdns);
    println!(
        "overall {:.2}% vs CDN-hosted {:.2}%   (paper: ≈5% vs ≈0.9%)",
        fig.rpki_enabled.overall_mean().unwrap_or(0.0) * 100.0,
        fig.rpki_enabled_on_cdns.overall_mean().unwrap_or(0.0) * 100.0,
    );

    c.bench_function("fig4/build_series", |b| {
        b.iter(|| fig4_rpki_on_cdns(&study.results, study.bin))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
