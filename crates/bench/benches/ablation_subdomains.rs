//! Ablation (paper §5.3): does measuring only the registered domain
//! understate exposure? "A commercially motivated attacker may
//! explicitly target subdomains, e.g. those hosting adverts."
//!
//! The crawler probes `static.<domain>` like a real measurement
//! extension would (no ground truth consulted), measures the asset
//! subdomains through the identical pipeline, and compares their RPKI
//! coverage against the apex domains'.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig2_rpki_outcome;
use ripki_bench::Study;
use ripki_dns::DomainName;

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let snapshot = study.engine.snapshot();

    // Discover asset subdomains by probing, crawler-style.
    let static_names: Vec<(usize, DomainName)> = study
        .scenario
        .ranking
        .iter()
        .enumerate()
        .filter_map(|(rank, listed)| {
            let name = DomainName::parse(&format!("static.{}", listed.without_www())).ok()?;
            study.scenario.zones.contains(&name).then_some((rank, name))
        })
        .collect();
    println!("\n=== ablation: subdomain sharding (§5.3) ===");
    println!(
        "{} of {} domains expose a static. asset subdomain",
        static_names.len(),
        study.scenario.ranking.len()
    );

    // Measure the subdomains through the same snapshot (same epoch, same
    // resolution cache as the apex run).
    let mut covered_apex = Vec::new();
    let mut covered_static = Vec::new();
    for (rank, name) in &static_names {
        let m = snapshot.measure_domain(*rank, name);
        if let Some(f) = m.bare.covered_fraction() {
            covered_static.push(f);
        }
        if let Some(f) = study.results.domains[*rank].bare.covered_fraction() {
            covered_apex.push(f);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "RPKI coverage among sharding domains: apex {:.2}%  vs  static subdomain {:.2}%",
        mean(&covered_apex) * 100.0,
        mean(&covered_static) * 100.0
    );
    let overall = fig2_rpki_outcome(&study.results, study.bin)
        .valid
        .overall_mean()
        .unwrap_or(0.0);
    println!(
        "(whole-ranking apex valid share for reference: {:.2}%)",
        overall * 100.0
    );
    println!("asset subdomains ride CDNs → their routing protection is the CDN's,");
    println!("i.e. almost none — an apex-only crawl overstates a site's protection.");

    let mut group = c.benchmark_group("ablation_subdomains");
    group.sample_size(10);
    group.bench_function("probe_and_measure", |b| {
        b.iter(|| {
            static_names
                .iter()
                .take(500)
                .filter(|(rank, name)| !snapshot.measure_domain(*rank, name).bare.pairs.is_empty())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
