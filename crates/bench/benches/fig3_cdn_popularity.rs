//! Figure 3: "Popularity of CDNs — comparison of CDN detection heuristics
//! for 1M Alexa domains".
//!
//! Paper: both classifiers decay with rank; the CNAME-chain heuristic is
//! a conservative underestimate of HTTPArchive's pattern matching.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::figures::fig3_cdn_popularity;
use ripki_bench::{print_bin_header, print_percent_series, Study};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let classifier = study.httparchive();
    let fig = fig3_cdn_popularity(&study.results, &classifier, study.bin);

    println!("\n=== Figure 3: CDN popularity by classifier ===");
    print_bin_header(study.bin, fig.cname_heuristic.len());
    print_percent_series("CNAME heuristic %", &fig.cname_heuristic);
    print_percent_series("HTTPArchive %", &fig.httparchive);
    println!(
        "overall: heuristic {:.1}%, HTTPArchive {:.1}% (heuristic is the conservative lower bound)",
        fig.cname_heuristic.overall_mean().unwrap_or(0.0) * 100.0,
        fig.httparchive.overall_mean().unwrap_or(0.0) * 100.0,
    );

    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.bench_function("build_both_series", |b| {
        b.iter(|| fig3_cdn_popularity(&study.results, &classifier, study.bin))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
