//! Ablation: strict vs relaxed manifest handling (RFC 6486 left the
//! policy local). On a healthy repository both modes agree; after fault
//! injection, strict validation drops whole publication points while
//! relaxed validation salvages intact objects.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki_bench::Study;
use ripki_rpki::faults;
use ripki_rpki::validate::{validate_with, ValidationOptions};

fn bench(c: &mut Criterion) {
    let study = Study::at_bench_scale();
    let now = study.scenario.now;
    let strict = ValidationOptions {
        strict_manifests: true,
    };
    let relaxed = ValidationOptions {
        strict_manifests: false,
    };

    let healthy_strict = validate_with(&study.scenario.repository, now, strict);
    let healthy_relaxed = validate_with(&study.scenario.repository, now, relaxed);

    // Withhold one ROA from every ROA-publishing point.
    let mut broken = study.scenario.repository.clone();
    let mut damaged_points = 0;
    for ca in faults::publication_points(&broken) {
        if !broken.points[&ca].roas.is_empty() {
            faults::withhold_roa(&mut broken, ca, 0);
            damaged_points += 1;
        }
    }
    let broken_strict = validate_with(&broken, now, strict);
    let broken_relaxed = validate_with(&broken, now, relaxed);

    println!("\n=== ablation: manifest strictness ===");
    println!("repository   mode      VRPs   rejected objects");
    println!(
        "healthy      strict   {:>5}   {:>5}",
        healthy_strict.vrps.len(),
        healthy_strict.rejected_count()
    );
    println!(
        "healthy      relaxed  {:>5}   {:>5}",
        healthy_relaxed.vrps.len(),
        healthy_relaxed.rejected_count()
    );
    println!(
        "damaged({damaged_points:>2})  strict   {:>5}   {:>5}",
        broken_strict.vrps.len(),
        broken_strict.rejected_count()
    );
    println!(
        "damaged({damaged_points:>2})  relaxed  {:>5}   {:>5}",
        broken_relaxed.vrps.len(),
        broken_relaxed.rejected_count()
    );
    println!("(strict mode trades availability for withheld-object detection)");

    let mut group = c.benchmark_group("manifest_strictness");
    group.sample_size(10);
    group.bench_function("validate_strict", |b| {
        b.iter(|| validate_with(&study.scenario.repository, now, strict))
    });
    group.bench_function("validate_relaxed", |b| {
        b.iter(|| validate_with(&study.scenario.repository, now, relaxed))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
