//! Extension: the study over time. The paper measured "repeatedly over
//! several weeks in 2014 and 2015", during the RPKI's steady growth
//! phase (deployment started in 2011). This bench replays the study at
//! five epochs with scaled adoption rates — the per-operator adoption
//! draw is deterministic, so adopter sets grow monotonically, exactly
//! like re-measuring the same Internet months apart.

use criterion::{criterion_group, criterion_main, Criterion};
use ripki::engine::StudyEngine;
use ripki::figures::fig2_rpki_outcome;
use ripki::pipeline::PipelineConfig;
use ripki_bench::bench_domains;
use ripki_websim::adoption::AdoptionConfig;
use ripki_websim::{Scenario, ScenarioConfig};

fn scaled(base: &AdoptionConfig, factor: f64) -> AdoptionConfig {
    AdoptionConfig {
        isp: base.isp * factor,
        webhoster: base.webhoster * factor,
        enterprise: base.enterprise * factor,
        ..*base
    }
}

fn run_epoch(domains: usize, factor: f64) -> (f64, usize) {
    let base = ScenarioConfig::with_domains(domains);
    let scenario = Scenario::build(ScenarioConfig {
        adoption: scaled(&base.adoption, factor),
        ..base
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = engine.run(&scenario.ranking);
    let valid = fig2_rpki_outcome(&results, (domains / 10).max(1))
        .valid
        .overall_mean()
        .unwrap_or(0.0);
    (valid, scenario.adoption_summary.adopters.len())
}

fn bench(c: &mut Criterion) {
    let domains = bench_domains().min(10_000);
    println!("\n=== extension: the study replayed across adoption epochs ===");
    println!("epoch   adoption scale   adopters   measured valid share");
    let mut last_valid = 0.0;
    let mut last_adopters = 0;
    for (epoch, factor) in [0.4, 0.55, 0.7, 0.85, 1.0].iter().enumerate() {
        let (valid, adopters) = run_epoch(domains, *factor);
        println!(
            "{epoch:>5}   {:>14.2}   {adopters:>8}   {:>8.2}%",
            factor,
            valid * 100.0
        );
        assert!(
            adopters >= last_adopters,
            "adopter sets must grow monotonically"
        );
        last_adopters = adopters;
        last_valid = valid;
    }
    println!(
        "final valid share {:.2}% — re-measuring over the study period only\nraises coverage; the head-vs-tail inversion persists at every epoch.",
        last_valid * 100.0
    );

    let mut group = c.benchmark_group("longitudinal");
    group.sample_size(10);
    group.bench_function("one_epoch_rebuild_and_measure", |b| {
        b.iter(|| run_epoch(2_000, 0.7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
