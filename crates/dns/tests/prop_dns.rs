//! Property-based tests for `ripki-dns`.

use proptest::prelude::*;
use ripki_dns::name::DomainName;
use ripki_dns::resolver::{ResolveError, Resolver};
use ripki_dns::vantage::Vantage;
use ripki_dns::zone::ZoneStore;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_label(), 1..5).prop_map(|ls| ls.join("."))
}

proptest! {
    /// Valid names parse; parse→display→parse is stable.
    #[test]
    fn name_parse_stable(s in arb_name()) {
        let d = DomainName::parse(&s).unwrap();
        let d2 = DomainName::parse(d.as_str()).unwrap();
        prop_assert_eq!(&d, &d2);
        prop_assert_eq!(d.as_str(), s.to_ascii_lowercase());
    }

    /// with_www and without_www are inverses on non-www names, and both
    /// are idempotent where applicable.
    #[test]
    fn www_pairing_laws(s in arb_name()) {
        let d = DomainName::parse(&s).unwrap();
        let www = d.with_www();
        prop_assert!(www.is_www());
        prop_assert_eq!(www.with_www(), www.clone());
        if !d.is_www() {
            prop_assert_eq!(www.without_www(), d);
        }
    }

    /// Any CNAME chain of length <= MAX_CHAIN resolves with the exact
    /// chain recorded; loops always error.
    #[test]
    fn chains_resolve_fully(len in 0usize..10, make_loop in any::<bool>()) {
        let mut z = ZoneStore::new();
        let names: Vec<DomainName> = (0..=len)
            .map(|i| DomainName::parse(&format!("n{i}.example")).unwrap())
            .collect();
        for w in names.windows(2) {
            z.add_cname(w[0].clone(), w[1].clone());
        }
        if make_loop && len > 0 {
            // Close the chain into a cycle.
            z.add_cname(names[len].clone(), names[0].clone());
        } else {
            z.add_addr(names[len].clone(), "93.184.216.34".parse().unwrap());
        }
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        match r.resolve(&names[0]) {
            Ok(res) => {
                prop_assert!(!(make_loop && len > 0));
                prop_assert_eq!(res.indirections(), len);
                prop_assert_eq!(res.canonical_name(), &names[len]);
                prop_assert_eq!(res.addresses.len(), 1);
            }
            Err(e) => {
                prop_assert!(make_loop && len > 0, "unexpected error {e}");
                prop_assert!(matches!(e, ResolveError::CnameLoop(_)));
            }
        }
    }

    /// Subdomain relation is consistent with textual suffix semantics.
    #[test]
    fn subdomain_consistency(a in arb_name(), b in arb_name()) {
        let da = DomainName::parse(&a).unwrap();
        let db = DomainName::parse(&b).unwrap();
        let textual = da.as_str() == db.as_str()
            || da.as_str().ends_with(&format!(".{}", db.as_str()));
        prop_assert_eq!(da.is_subdomain_of(&db), textual);
    }
}
