//! Zone file export and import.
//!
//! A BIND-flavoured master-file rendering of the [`ZoneStore`], so that
//! generated worlds can be archived and re-measured ("All data will be
//! made available"). One file carries the base records; per-vantage
//! overrides are written as separate files, since standard zone syntax
//! has no notion of geo-DNS views:
//!
//! ```text
//! ; ripki simulated zone data
//! example.com.            IN A      93.184.216.34
//! example.com.            IN AAAA   2606:2800:220:1::1946
//! www.shop.example.       IN CNAME  shop.cdn-sim.net.
//! ; $SIGNED example.com.      — DNSSEC marker (non-standard)
//! ```
//!
//! TTLs and classes other than `IN` are not modelled; a fixed TTL column
//! is emitted for familiarity and ignored on input.

use crate::name::DomainName;
use crate::record::RecordData;
use crate::vantage::Vantage;
use crate::zone::ZoneStore;
use std::fmt;

/// Fixed TTL written on every line (ignored on input).
pub const EXPORT_TTL: u32 = 300;

/// Zone file parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneFileError {
    /// A line did not have `name TTL IN TYPE data` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        content: String,
    },
    /// The owner or target name did not parse.
    BadName {
        /// 1-based line number.
        line: usize,
    },
    /// The record data did not parse for its type.
    BadData {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown record type.
    UnknownType {
        /// 1-based line number.
        line: usize,
        /// The unrecognised type token.
        rtype: String,
    },
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneFileError::BadLine { line, content } => {
                write!(f, "line {line}: malformed record {content:?}")
            }
            ZoneFileError::BadName { line } => write!(f, "line {line}: bad domain name"),
            ZoneFileError::BadData { line } => write!(f, "line {line}: bad record data"),
            ZoneFileError::UnknownType { line, rtype } => {
                write!(f, "line {line}: unknown record type {rtype:?}")
            }
        }
    }
}

impl std::error::Error for ZoneFileError {}

fn fqdn(name: &DomainName) -> String {
    format!("{name}.")
}

fn render_record(out: &mut String, name: &DomainName, data: &RecordData) {
    match data {
        RecordData::A(a) => {
            out.push_str(&format!("{:<40} {EXPORT_TTL} IN A     {a}\n", fqdn(name)));
        }
        RecordData::Aaaa(a) => {
            out.push_str(&format!("{:<40} {EXPORT_TTL} IN AAAA  {a}\n", fqdn(name)));
        }
        RecordData::Cname(t) => out.push_str(&format!(
            "{:<40} {EXPORT_TTL} IN CNAME {}\n",
            fqdn(name),
            fqdn(t)
        )),
    }
}

/// Render the base records (and DNSSEC markers) of `zones`.
///
/// Iteration order is sorted by name, so output is canonical.
pub fn export(zones: &ZoneStore, names: &mut dyn Iterator<Item = &DomainName>) -> String {
    let mut sorted: Vec<&DomainName> = names.collect();
    sorted.sort();
    sorted.dedup();
    let mut out = String::from("; ripki simulated zone data\n");
    for name in sorted {
        if let Some(records) = zones.lookup(name, Vantage::GOOGLE_DNS_BERLIN) {
            for r in records {
                render_record(&mut out, name, r);
            }
        }
        if zones.is_signed(name) {
            out.push_str(&format!("; $SIGNED {}\n", fqdn(name)));
        }
    }
    out
}

/// Parse zone file text into a fresh [`ZoneStore`] (base records only).
pub fn parse(input: &str) -> Result<ZoneStore, ZoneFileError> {
    let mut zones = ZoneStore::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; $SIGNED") {
            let name = rest.trim().trim_end_matches('.');
            let apex =
                DomainName::parse(name).map_err(|_| ZoneFileError::BadName { line: line_no })?;
            zones.set_signed(apex);
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 || fields[2] != "IN" {
            return Err(ZoneFileError::BadLine {
                line: line_no,
                content: raw.to_string(),
            });
        }
        let name = DomainName::parse(fields[0].trim_end_matches('.'))
            .map_err(|_| ZoneFileError::BadName { line: line_no })?;
        let data = match fields[3] {
            "A" => RecordData::A(
                fields[4]
                    .parse()
                    .map_err(|_| ZoneFileError::BadData { line: line_no })?,
            ),
            "AAAA" => RecordData::Aaaa(
                fields[4]
                    .parse()
                    .map_err(|_| ZoneFileError::BadData { line: line_no })?,
            ),
            "CNAME" => RecordData::Cname(
                DomainName::parse(fields[4].trim_end_matches('.'))
                    .map_err(|_| ZoneFileError::BadName { line: line_no })?,
            ),
            other => {
                return Err(ZoneFileError::UnknownType {
                    line: line_no,
                    rtype: other.to_string(),
                })
            }
        };
        zones.add(name, data);
    }
    Ok(zones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::Resolver;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn sample() -> (ZoneStore, Vec<DomainName>) {
        let mut z = ZoneStore::new();
        z.add_addr(n("example.com"), "93.184.216.34".parse().unwrap());
        z.add_addr(n("example.com"), "2606:2800:220:1::1946".parse().unwrap());
        z.add_cname(n("www.shop.example"), n("shop.cdn-sim.net"));
        z.add_addr(n("shop.cdn-sim.net"), "198.51.100.9".parse().unwrap());
        z.set_signed(n("example.com"));
        let names = vec![
            n("example.com"),
            n("www.shop.example"),
            n("shop.cdn-sim.net"),
        ];
        (z, names)
    }

    #[test]
    fn export_parse_roundtrip() {
        let (z, names) = sample();
        let text = export(&z, &mut names.iter());
        let back = parse(&text).unwrap();
        for name in &names {
            assert_eq!(
                back.lookup(name, Vantage::OPEN_DNS),
                z.lookup(name, Vantage::OPEN_DNS),
                "mismatch at {name}"
            );
        }
        assert!(back.is_signed(&n("example.com")));
        assert!(!back.is_signed(&n("shop.cdn-sim.net")));
        // Canonical: exporting the reload gives identical text.
        let again = export(&back, &mut names.iter());
        assert_eq!(text, again);
    }

    #[test]
    fn reloaded_zones_resolve_identically() {
        let (z, names) = sample();
        let text = export(&z, &mut names.iter());
        let back = parse(&text).unwrap();
        let r1 = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let r2 = Resolver::new(&back, Vantage::GOOGLE_DNS_BERLIN);
        let a = r1.resolve(&n("www.shop.example")).unwrap();
        let b = r2.resolve(&n("www.shop.example")).unwrap();
        assert_eq!(a.addresses, b.addresses);
        assert_eq!(a.cname_chain, b.cname_chain);
    }

    #[test]
    fn format_shape() {
        let (z, names) = sample();
        let text = export(&z, &mut names.iter());
        assert!(text.contains("example.com."));
        assert!(text.contains("IN A     93.184.216.34"));
        assert!(text.contains("IN AAAA  2606:2800:220:1::1946"));
        assert!(text.contains("IN CNAME shop.cdn-sim.net."));
        assert!(text.contains("; $SIGNED example.com."));
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(matches!(
            parse("example.com. 300 IN A"),
            Err(ZoneFileError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse("\nexample.com. 300 XX A 1.2.3.4"),
            Err(ZoneFileError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            parse("example.com. 300 IN MX mail.example.com."),
            Err(ZoneFileError::UnknownType { line: 1, .. })
        ));
        assert!(matches!(
            parse("example.com. 300 IN A not-an-ip"),
            Err(ZoneFileError::BadData { line: 1 })
        ));
        assert!(matches!(
            parse("-bad-. 300 IN A 1.2.3.4"),
            Err(ZoneFileError::BadName { line: 1 })
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let z = parse("; header\n\nexample.com. 300 IN A 1.2.3.4\n").unwrap();
        assert!(z.contains(&n("example.com")));
        assert_eq!(z.record_count(), 1);
    }
}
