//! The resolver simulator.
//!
//! Resolves a name from one vantage point, chasing CNAME chains with loop
//! detection, and returns everything step 2 of the methodology needs:
//! the terminal addresses *and* the chain of canonical names (the CDN
//! classification heuristic counts DNS indirections).

use crate::cache::{CachedTail, ResolutionCache, Terminal};
use crate::name::DomainName;
use crate::record::RecordData;
use crate::vantage::Vantage;
use crate::zone::ZoneStore;
use std::fmt;
use std::net::IpAddr;

/// Longest CNAME chain a resolver will follow (BIND uses a similar bound).
pub const MAX_CHAIN: usize = 16;

/// Resolution failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name (or a CNAME target) does not exist.
    NxDomain(DomainName),
    /// CNAMEs formed a loop.
    CnameLoop(DomainName),
    /// Chain exceeded [`MAX_CHAIN`].
    ChainTooLong(DomainName),
    /// The name exists but has no address records (only unfollowable
    /// data).
    NoAddress(DomainName),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "NXDOMAIN {n}"),
            ResolveError::CnameLoop(n) => write!(f, "CNAME loop at {n}"),
            ResolveError::ChainTooLong(n) => write!(f, "CNAME chain too long at {n}"),
            ResolveError::NoAddress(n) => write!(f, "no address records for {n}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The name queried.
    pub query: DomainName,
    /// Canonical names traversed, in order (empty when the query name
    /// carried address records directly).
    pub cname_chain: Vec<DomainName>,
    /// Terminal addresses (A and AAAA), in zone order.
    pub addresses: Vec<IpAddr>,
    /// Whether every zone on the resolution path (query name and each
    /// CNAME target) is DNSSEC-signed — a validating resolver's AD bit.
    pub authenticated: bool,
}

impl Resolution {
    /// Number of DNS indirections. The paper classifies a domain as
    /// CDN-served "if the IP address of its domain name is indirectly
    /// accessed via two or more CNAMEs".
    pub fn indirections(&self) -> usize {
        self.cname_chain.len()
    }

    /// The terminal canonical name (query name if no CNAMEs).
    pub fn canonical_name(&self) -> &DomainName {
        self.cname_chain.last().unwrap_or(&self.query)
    }
}

/// A resolution outcome plus every name whose records were consulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedResolution {
    /// Exactly what [`Resolver::resolve_cached`] would have returned.
    pub outcome: Result<Resolution, ResolveError>,
    /// Every name whose zone data the walk depended on: the query, each
    /// CNAME target followed, and each memoized-tail node spliced in.
    /// A zone edit touching none of these names cannot change `outcome`.
    pub touched: Vec<DomainName>,
}

/// A resolver bound to a zone store and a vantage point.
#[derive(Debug, Clone, Copy)]
pub struct Resolver<'z> {
    zones: &'z ZoneStore,
    vantage: Vantage,
}

impl<'z> Resolver<'z> {
    /// A resolver at `vantage` over `zones`.
    pub fn new(zones: &'z ZoneStore, vantage: Vantage) -> Resolver<'z> {
        Resolver { zones, vantage }
    }

    /// The vantage this resolver answers from.
    pub fn vantage(&self) -> Vantage {
        self.vantage
    }

    /// Resolve `name`, chasing CNAMEs.
    pub fn resolve(&self, name: &DomainName) -> Result<Resolution, ResolveError> {
        let mut chain: Vec<DomainName> = Vec::new();
        let mut current = name.clone();
        let mut authenticated = self.zones.is_signed(name);
        loop {
            let Some(records) = self.zones.lookup(&current, self.vantage) else {
                return Err(ResolveError::NxDomain(current));
            };
            // Real DNS forbids CNAME alongside other data; the generator
            // conforms, but be defensive: a CNAME wins if present.
            if let Some(target) = records.iter().find_map(RecordData::cname) {
                if chain.len() + 1 > MAX_CHAIN {
                    return Err(ResolveError::ChainTooLong(name.clone()));
                }
                if *target == *name || chain.contains(target) {
                    return Err(ResolveError::CnameLoop(target.clone()));
                }
                authenticated &= self.zones.is_signed(target);
                chain.push(target.clone());
                current = target.clone();
                continue;
            }
            let addresses: Vec<IpAddr> = records.iter().filter_map(RecordData::addr).collect();
            if addresses.is_empty() {
                return Err(ResolveError::NoAddress(current));
            }
            return Ok(Resolution {
                query: name.clone(),
                cname_chain: chain,
                addresses,
                authenticated,
            });
        }
    }

    /// Resolve `name` with shared-tail memoization: identical to
    /// [`resolve`](Self::resolve) (same answers, same errors), but CNAME
    /// tails already walked — by this call or any other thread sharing
    /// `cache` — are spliced in instead of re-walked. Loop and
    /// chain-length checks run against the caller's full chain, so the
    /// memoization is observably transparent.
    ///
    /// Panics if `cache` is pinned to a different vantage (answers are
    /// vantage-dependent; mixing would serve wrong data).
    pub fn resolve_cached(
        &self,
        name: &DomainName,
        cache: &ResolutionCache,
    ) -> Result<Resolution, ResolveError> {
        assert_eq!(
            cache.vantage(),
            self.vantage,
            "resolution cache pinned to a different vantage"
        );
        let mut chain: Vec<DomainName> = Vec::new();
        let mut current = name.clone();
        let mut authenticated = self.zones.is_signed(name);
        loop {
            if let Some(tail) = cache.get(&current) {
                return self.splice(name, chain, authenticated, &tail);
            }
            let Some(records) = self.zones.lookup(&current, self.vantage) else {
                cache.fill(&chain, &Terminal::NxDomain(current.clone()));
                return Err(ResolveError::NxDomain(current));
            };
            if let Some(target) = records.iter().find_map(RecordData::cname) {
                if chain.len() + 1 > MAX_CHAIN {
                    return Err(ResolveError::ChainTooLong(name.clone()));
                }
                if *target == *name || chain.contains(target) {
                    return Err(ResolveError::CnameLoop(target.clone()));
                }
                authenticated &= self.zones.is_signed(target);
                chain.push(target.clone());
                current = target.clone();
                continue;
            }
            let addresses: Vec<IpAddr> = records.iter().filter_map(RecordData::addr).collect();
            if addresses.is_empty() {
                cache.fill(&chain, &Terminal::NoAddress(current.clone()));
                return Err(ResolveError::NoAddress(current));
            }
            cache.fill(&chain, &Terminal::Addresses(addresses.clone()));
            return Ok(Resolution {
                query: name.clone(),
                cname_chain: chain,
                addresses,
                authenticated,
            });
        }
    }

    /// Like [`resolve_cached`](Self::resolve_cached), but also reports
    /// every name whose zone data the walk consulted. The incremental
    /// engine uses the touched set as a dependency list: a zone delta
    /// that changes none of the touched names cannot alter `outcome`
    /// (the walk never read anything else). The set is a slight
    /// over-approximation on errors — memoized tail nodes past a loop /
    /// length violation are included even though the walk stopped early.
    pub fn resolve_cached_traced(
        &self,
        name: &DomainName,
        cache: &ResolutionCache,
    ) -> TracedResolution {
        assert_eq!(
            cache.vantage(),
            self.vantage,
            "resolution cache pinned to a different vantage"
        );
        let mut touched = vec![name.clone()];
        let mut chain: Vec<DomainName> = Vec::new();
        let mut current = name.clone();
        let mut authenticated = self.zones.is_signed(name);
        loop {
            if let Some(tail) = cache.get(&current) {
                touched.extend(tail.chain.iter().cloned());
                let outcome = self.splice(name, chain, authenticated, &tail);
                return TracedResolution { outcome, touched };
            }
            let Some(records) = self.zones.lookup(&current, self.vantage) else {
                cache.fill(&chain, &Terminal::NxDomain(current.clone()));
                return TracedResolution {
                    outcome: Err(ResolveError::NxDomain(current)),
                    touched,
                };
            };
            if let Some(target) = records.iter().find_map(RecordData::cname) {
                if chain.len() + 1 > MAX_CHAIN {
                    return TracedResolution {
                        outcome: Err(ResolveError::ChainTooLong(name.clone())),
                        touched,
                    };
                }
                if *target == *name || chain.contains(target) {
                    return TracedResolution {
                        outcome: Err(ResolveError::CnameLoop(target.clone())),
                        touched,
                    };
                }
                authenticated &= self.zones.is_signed(target);
                touched.push(target.clone());
                chain.push(target.clone());
                current = target.clone();
                continue;
            }
            let addresses: Vec<IpAddr> = records.iter().filter_map(RecordData::addr).collect();
            if addresses.is_empty() {
                cache.fill(&chain, &Terminal::NoAddress(current.clone()));
                return TracedResolution {
                    outcome: Err(ResolveError::NoAddress(current)),
                    touched,
                };
            }
            cache.fill(&chain, &Terminal::Addresses(addresses.clone()));
            return TracedResolution {
                outcome: Ok(Resolution {
                    query: name.clone(),
                    cname_chain: chain,
                    addresses,
                    authenticated,
                }),
                touched,
            };
        }
    }

    /// Continue a partially walked chain with a memoized tail, re-running
    /// the per-step loop/length checks the uncached walk would perform.
    fn splice(
        &self,
        query: &DomainName,
        mut chain: Vec<DomainName>,
        mut authenticated: bool,
        tail: &CachedTail,
    ) -> Result<Resolution, ResolveError> {
        for target in &tail.chain {
            if chain.len() + 1 > MAX_CHAIN {
                return Err(ResolveError::ChainTooLong(query.clone()));
            }
            if *target == *query || chain.contains(target) {
                return Err(ResolveError::CnameLoop(target.clone()));
            }
            authenticated &= self.zones.is_signed(target);
            chain.push(target.clone());
        }
        // No fill here: the tail's own nodes were indexed by the walk
        // that cached it, and the freshly walked prefix nodes are
        // per-query aliases that other queries do not funnel through —
        // indexing them would put a write lock and an allocation on
        // every spliced (i.e. hot) resolution for entries that are
        // never probed again.
        match &tail.terminal {
            Terminal::Addresses(addresses) => Ok(Resolution {
                query: query.clone(),
                cname_chain: chain,
                addresses: addresses.clone(),
                authenticated,
            }),
            Terminal::NxDomain(n) => Err(ResolveError::NxDomain(n.clone())),
            Terminal::NoAddress(n) => Err(ResolveError::NoAddress(n.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn store() -> ZoneStore {
        let mut z = ZoneStore::new();
        // Direct A/AAAA.
        z.add_addr(n("direct.example"), "192.0.2.10".parse().unwrap());
        z.add_addr(n("direct.example"), "2001:db8::10".parse().unwrap());
        // CDN-style chain: www.shop.example → shop.cdnprovider.net →
        // edge7.cdnprovider.net → A
        z.add_cname(n("www.shop.example"), n("shop.cdnprovider.net"));
        z.add_cname(n("shop.cdnprovider.net"), n("edge7.cdnprovider.net"));
        z.add_addr(n("edge7.cdnprovider.net"), "198.51.100.7".parse().unwrap());
        // Loop: a → b → a
        z.add_cname(n("a.loop.example"), n("b.loop.example"));
        z.add_cname(n("b.loop.example"), n("a.loop.example"));
        // Dangling CNAME.
        z.add_cname(n("dangling.example"), n("void.example"));
        z
    }

    #[test]
    fn direct_resolution() {
        let z = store();
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let res = r.resolve(&n("direct.example")).unwrap();
        assert_eq!(res.indirections(), 0);
        assert_eq!(res.addresses.len(), 2);
        assert_eq!(res.canonical_name(), &n("direct.example"));
    }

    #[test]
    fn cname_chain_followed_and_counted() {
        let z = store();
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let res = r.resolve(&n("www.shop.example")).unwrap();
        assert_eq!(res.indirections(), 2);
        assert_eq!(
            res.cname_chain,
            vec![n("shop.cdnprovider.net"), n("edge7.cdnprovider.net")]
        );
        assert_eq!(
            res.addresses,
            vec!["198.51.100.7".parse::<IpAddr>().unwrap()]
        );
        assert_eq!(res.canonical_name(), &n("edge7.cdnprovider.net"));
    }

    #[test]
    fn loop_detected() {
        let z = store();
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        assert!(matches!(
            r.resolve(&n("a.loop.example")),
            Err(ResolveError::CnameLoop(_))
        ));
    }

    #[test]
    fn self_loop_detected() {
        let mut z = ZoneStore::new();
        z.add_cname(n("self.example"), n("self.example"));
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        assert!(matches!(
            r.resolve(&n("self.example")),
            Err(ResolveError::CnameLoop(_))
        ));
    }

    #[test]
    fn nxdomain_and_dangling() {
        let z = store();
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        assert_eq!(
            r.resolve(&n("missing.example")),
            Err(ResolveError::NxDomain(n("missing.example")))
        );
        assert_eq!(
            r.resolve(&n("dangling.example")),
            Err(ResolveError::NxDomain(n("void.example")))
        );
    }

    #[test]
    fn chain_too_long() {
        let mut z = ZoneStore::new();
        for i in 0..=MAX_CHAIN {
            z.add_cname(
                n(&format!("h{i}.example")),
                n(&format!("h{}.example", i + 1)),
            );
        }
        z.add_addr(
            n(&format!("h{}.example", MAX_CHAIN + 1)),
            "10.0.0.1".parse().unwrap(),
        );
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        assert!(matches!(
            r.resolve(&n("h0.example")),
            Err(ResolveError::ChainTooLong(_))
        ));
    }

    #[test]
    fn vantage_dependent_answers() {
        let mut z = ZoneStore::new();
        z.add_cname(n("www.geo.example"), n("geo.cdn.example"));
        z.add_addr(n("geo.cdn.example"), "203.0.113.1".parse().unwrap());
        z.add_override(
            n("geo.cdn.example"),
            Vantage::HTTPARCHIVE_REDWOOD,
            RecordData::A("203.0.113.2".parse().unwrap()),
        );
        let berlin = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN)
            .resolve(&n("www.geo.example"))
            .unwrap();
        let redwood = Resolver::new(&z, Vantage::HTTPARCHIVE_REDWOOD)
            .resolve(&n("www.geo.example"))
            .unwrap();
        assert_ne!(berlin.addresses, redwood.addresses);
        // Same chain, different terminal addresses — like a real CDN.
        assert_eq!(berlin.cname_chain, redwood.cname_chain);
    }

    #[test]
    fn cached_resolution_identical_to_uncached() {
        let z = store();
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let cache = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
        for name in [
            "direct.example",
            "www.shop.example",
            "shop.cdnprovider.net",
            "edge7.cdnprovider.net",
            "a.loop.example",
            "dangling.example",
            "missing.example",
        ] {
            let name = n(name);
            // Twice: once filling, once hitting.
            for _ in 0..2 {
                assert_eq!(
                    r.resolve_cached(&name, &cache),
                    r.resolve(&name),
                    "divergence on {name}"
                );
            }
        }
        // Shared tails were actually memoized and reused.
        assert!(cache.hits() > 0);
    }

    #[test]
    fn cached_tail_reused_across_queries() {
        let mut z = ZoneStore::new();
        // Two sites CNAME into the same CDN tail.
        z.add_cname(n("www.one.example"), n("lb.cdn.net"));
        z.add_cname(n("www.two.example"), n("lb.cdn.net"));
        z.add_cname(n("lb.cdn.net"), n("edge.cdn.net"));
        z.add_addr(n("edge.cdn.net"), "198.51.100.9".parse().unwrap());
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        let cache = ResolutionCache::new(Vantage::OPEN_DNS);
        let one = r.resolve_cached(&n("www.one.example"), &cache).unwrap();
        let hits_before = cache.hits();
        let two = r.resolve_cached(&n("www.two.example"), &cache).unwrap();
        assert!(cache.hits() > hits_before, "second query must hit the tail");
        assert_eq!(one.addresses, two.addresses);
        assert_eq!(one.cname_chain, two.cname_chain);
        assert_eq!(two.cname_chain, vec![n("lb.cdn.net"), n("edge.cdn.net")]);
    }

    #[test]
    fn cached_loop_checks_respect_caller_chain() {
        let mut z = ZoneStore::new();
        // tail.example resolves fine on its own…
        z.add_cname(n("tail.example"), n("back.example"));
        z.add_addr(n("back.example"), "203.0.113.5".parse().unwrap());
        // …but a query whose chain already visited back.example loops.
        z.add_cname(n("enter.example"), n("back2.example"));
        z.add_cname(n("back2.example"), n("tail2.example"));
        z.add_cname(n("tail2.example"), n("back2.example"));
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        let cache = ResolutionCache::new(Vantage::OPEN_DNS);
        // Warm the cache with the inner tail.
        let _ = r.resolve_cached(&n("tail.example"), &cache);
        assert_eq!(
            r.resolve_cached(&n("enter.example"), &cache),
            r.resolve(&n("enter.example"))
        );
    }

    #[test]
    #[should_panic(expected = "different vantage")]
    fn cache_vantage_mismatch_panics() {
        let z = store();
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let cache = ResolutionCache::new(Vantage::OPEN_DNS);
        let _ = r.resolve_cached(&n("direct.example"), &cache);
    }

    #[test]
    fn traced_resolution_matches_untraced_and_covers_chain() {
        let z = store();
        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        let cache = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
        for name in [
            "direct.example",
            "www.shop.example",
            "a.loop.example",
            "dangling.example",
            "missing.example",
        ] {
            let name = n(name);
            // Twice: once filling, once splicing from the cache.
            for _ in 0..2 {
                let traced = r.resolve_cached_traced(&name, &cache);
                assert_eq!(traced.outcome, r.resolve(&name), "divergence on {name}");
                assert_eq!(traced.touched[0], name);
                if let Ok(res) = &traced.outcome {
                    for link in &res.cname_chain {
                        assert!(
                            traced.touched.contains(link),
                            "chain node {link} missing from touched set of {name}"
                        );
                    }
                }
            }
        }
        // The terminal name of a dangling CNAME is a dependency too: if
        // void.example appeared, dangling.example would start resolving.
        let traced = r.resolve_cached_traced(&n("dangling.example"), &cache);
        assert!(
            traced.touched.contains(&n("void.example")) || {
                // NxDomain names the missing node; the walk consulted it.
                matches!(&traced.outcome, Err(ResolveError::NxDomain(m)) if *m == n("void.example"))
            }
        );
    }

    #[test]
    fn empty_record_set_reports_no_address() {
        let mut z = ZoneStore::new();
        // A name with an empty record vector (possible via direct API use).
        z.add(n("odd.example"), RecordData::A("10.0.0.1".parse().unwrap()));
        let r = Resolver::new(&z, Vantage::OPEN_DNS);
        assert!(r.resolve(&n("odd.example")).is_ok());
    }
}
