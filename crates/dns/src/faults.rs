//! Deterministic DNS answer corruption.
//!
//! The paper reports excluding "0.07% incorrect DNS answers" — responses
//! carrying IANA special-purpose addresses (broken load balancers, DNS
//! hijacking boxes, parked wildcard records, and plain misconfiguration
//! produce these in the wild). [`FaultyResolver`] reproduces that noise
//! floor deterministically: a fixed pseudo-random subset of names, chosen
//! by hashing `(seed, name)`, answers with reserved addresses instead of
//! the authoritative data.

use crate::name::DomainName;
use crate::resolver::{Resolution, ResolveError, Resolver};
use std::net::{IpAddr, Ipv4Addr};

/// Reserved addresses that corrupted answers draw from (all of them are
/// on the IANA special-purpose registry, so the pipeline's filter catches
/// them).
const BOGUS_POOL: [Ipv4Addr; 4] = [
    Ipv4Addr::new(127, 0, 0, 1),
    Ipv4Addr::new(0, 0, 0, 0),
    Ipv4Addr::new(192, 168, 1, 1),
    Ipv4Addr::new(10, 0, 0, 1),
];

/// FNV-1a, for a cheap, stable, dependency-free name hash.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A resolver wrapper that corrupts a deterministic fraction of answers.
#[derive(Debug, Clone, Copy)]
pub struct FaultyResolver<'z> {
    inner: Resolver<'z>,
    /// Corruption probability in parts per million.
    bogus_ppm: u32,
    seed: u64,
}

impl<'z> FaultyResolver<'z> {
    /// Wrap `inner`, corrupting `bogus_ppm` parts-per-million of names.
    ///
    /// The paper's 0.07% is `bogus_ppm = 700`.
    pub fn new(inner: Resolver<'z>, bogus_ppm: u32, seed: u64) -> FaultyResolver<'z> {
        FaultyResolver {
            inner,
            bogus_ppm,
            seed,
        }
    }

    /// Whether this wrapper corrupts `name` (stable per seed).
    pub fn is_corrupted(&self, name: &DomainName) -> bool {
        if self.bogus_ppm == 0 {
            return false;
        }
        let h = fnv1a(self.seed, name.as_str().as_bytes());
        (h % 1_000_000) < self.bogus_ppm as u64
    }

    /// Resolve, possibly answering garbage.
    pub fn resolve(&self, name: &DomainName) -> Result<Resolution, ResolveError> {
        if self.is_corrupted(name) {
            return Ok(self.bogus_resolution(name));
        }
        self.inner.resolve(name)
    }

    /// Like [`resolve`](Self::resolve), but honest answers go through the
    /// shared-tail [`ResolutionCache`]. Corruption keys on the query name
    /// only, so it composes transparently with tail memoization.
    pub fn resolve_cached(
        &self,
        name: &DomainName,
        cache: &crate::cache::ResolutionCache,
    ) -> Result<Resolution, ResolveError> {
        if self.is_corrupted(name) {
            return Ok(self.bogus_resolution(name));
        }
        self.inner.resolve_cached(name, cache)
    }

    /// Like [`resolve_cached`](Self::resolve_cached), but also reports
    /// the touched-name dependency set (see
    /// [`Resolver::resolve_cached_traced`]). A corrupted answer depends
    /// only on the query name: corruption keys on the name itself and
    /// never consults zone data.
    pub fn resolve_cached_traced(
        &self,
        name: &DomainName,
        cache: &crate::cache::ResolutionCache,
    ) -> crate::resolver::TracedResolution {
        if self.is_corrupted(name) {
            return crate::resolver::TracedResolution {
                outcome: Ok(self.bogus_resolution(name)),
                touched: vec![name.clone()],
            };
        }
        self.inner.resolve_cached_traced(name, cache)
    }

    fn bogus_resolution(&self, name: &DomainName) -> Resolution {
        let h = fnv1a(self.seed.wrapping_add(1), name.as_str().as_bytes());
        let bogus = BOGUS_POOL[(h % BOGUS_POOL.len() as u64) as usize];
        Resolution {
            query: name.clone(),
            cname_chain: Vec::new(),
            addresses: vec![IpAddr::V4(bogus)],
            // Spoofed garbage never validates.
            authenticated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vantage::Vantage;
    use crate::zone::ZoneStore;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn store(count: usize) -> ZoneStore {
        let mut z = ZoneStore::new();
        for i in 0..count {
            z.add_addr(
                n(&format!("site{i}.example")),
                "93.184.216.34".parse().unwrap(),
            );
        }
        z
    }

    #[test]
    fn zero_rate_never_corrupts() {
        let z = store(100);
        let r = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 0, 42);
        for i in 0..100 {
            let name = n(&format!("site{i}.example"));
            assert!(!r.is_corrupted(&name));
            assert_eq!(
                r.resolve(&name).unwrap().addresses[0].to_string(),
                "93.184.216.34"
            );
        }
    }

    #[test]
    fn corruption_rate_close_to_requested() {
        let z = store(0);
        // 5% for a statistically stable small-sample check.
        let r = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 50_000, 7);
        let corrupted = (0..20_000)
            .filter(|i| r.is_corrupted(&n(&format!("host{i}.example"))))
            .count();
        let rate = corrupted as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn corruption_is_deterministic() {
        let z = store(1);
        let r1 = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 500_000, 9);
        let r2 = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 500_000, 9);
        for i in 0..200 {
            let name = n(&format!("d{i}.example"));
            assert_eq!(r1.is_corrupted(&name), r2.is_corrupted(&name));
        }
    }

    #[test]
    fn corrupted_answers_are_special_purpose() {
        let z = store(0);
        // 100% corruption: every answer must be bogus and reserved.
        let r = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 1_000_000, 3);
        for i in 0..20 {
            let name = n(&format!("x{i}.example"));
            let res = r.resolve(&name).unwrap();
            let addr = res.addresses[0];
            assert!(
                ripki_net::special::SpecialRegistry::global().is_invalid_answer(addr),
                "{addr} should be reserved"
            );
        }
    }

    #[test]
    fn different_seeds_corrupt_different_names() {
        let z = store(0);
        let a = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 100_000, 1);
        let b = FaultyResolver::new(Resolver::new(&z, Vantage::OPEN_DNS), 100_000, 2);
        let set_a: Vec<bool> = (0..500)
            .map(|i| a.is_corrupted(&n(&format!("s{i}.example"))))
            .collect();
        let set_b: Vec<bool> = (0..500)
            .map(|i| b.is_corrupted(&n(&format!("s{i}.example"))))
            .collect();
        assert_ne!(set_a, set_b);
    }
}
