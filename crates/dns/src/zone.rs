//! Authoritative zone data.
//!
//! One store holds all simulated zones (the generator writes into it
//! directly; there is no delegation tree to traverse). Per-vantage
//! overrides model geo-DNS: a CDN name resolves to a nearby edge cache,
//! so different vantage points receive different `A` records.
//!
//! # Copy-on-write layering
//!
//! A [`ZoneStore`] can be a *root* (all data local) or a *layer* over a
//! shared parent (`Arc<ZoneStore>`). [`ZoneStore::apply`] consumes a
//! [`ZoneDelta`] and produces a structurally-shared successor: only the
//! touched names live in the new layer, everything else is answered by
//! walking the parent chain. Removals are recorded as tombstones so a
//! layer can hide a name its parent still carries. Chains are compacted
//! (flattened into a fresh root) once they exceed [`MAX_LAYER_DEPTH`],
//! bounding lookup cost.
//!
//! Deltas only touch *base* records; per-vantage overrides and DNSSEC
//! signing flags always win regardless of layer, mirroring how geo-DNS
//! steering and zone signing outlive individual record edits.

use crate::name::DomainName;
use crate::record::RecordData;
use crate::vantage::Vantage;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::IpAddr;
use std::sync::Arc;

/// Parent-chain length at which [`ZoneStore::apply`] flattens into a
/// fresh root instead of adding another layer.
pub const MAX_LAYER_DEPTH: usize = 64;

/// The authoritative record store.
#[derive(Debug, Clone, Default)]
pub struct ZoneStore {
    base: HashMap<DomainName, Vec<RecordData>>,
    /// Tombstones: names present in an ancestor layer but deleted here.
    removed: HashSet<DomainName>,
    overrides: HashMap<(DomainName, Vantage), Vec<RecordData>>,
    /// Zone apexes whose operators sign with DNSSEC. A name is
    /// authenticatable when it or a parent is listed here (modelling a
    /// validating resolver's AD bit, not the full DS/DNSKEY machinery).
    signed_zones: HashSet<DomainName>,
    parent: Option<Arc<ZoneStore>>,
    depth: usize,
    /// Effective number of names with base records (whole chain).
    names: usize,
    /// Effective number of base records (whole chain).
    records: usize,
}

impl ZoneStore {
    /// Empty store.
    pub fn new() -> ZoneStore {
        ZoneStore::default()
    }

    /// Append a record for `name` (visible from every vantage unless an
    /// override exists for that vantage).
    pub fn add(&mut self, name: DomainName, data: RecordData) {
        let mut recs = self
            .base_records(&name)
            .map(<[_]>::to_vec)
            .unwrap_or_default();
        recs.push(data);
        self.set_base_records(name, recs);
    }

    /// Append an address record for `name`.
    pub fn add_addr(&mut self, name: DomainName, addr: IpAddr) {
        self.add(name, RecordData::from_addr(addr));
    }

    /// Append a CNAME for `name`.
    pub fn add_cname(&mut self, name: DomainName, target: DomainName) {
        self.add(name, RecordData::Cname(target));
    }

    /// Append a record visible only from `vantage` (replacing the base
    /// answer for that vantage entirely).
    pub fn add_override(&mut self, name: DomainName, vantage: Vantage, data: RecordData) {
        let key = (name, vantage);
        let mut recs = self
            .override_records(&key.0, vantage)
            .map(<[_]>::to_vec)
            .unwrap_or_default();
        recs.push(data);
        self.overrides.insert(key, recs);
    }

    /// The records `vantage` receives for `name`.
    pub fn lookup(&self, name: &DomainName, vantage: Vantage) -> Option<&[RecordData]> {
        if let Some(v) = self.override_records(name, vantage) {
            return Some(v);
        }
        self.base_records(name)
    }

    /// Effective base records for `name`, honouring layer tombstones.
    fn base_records(&self, name: &DomainName) -> Option<&[RecordData]> {
        if let Some(v) = self.base.get(name) {
            return Some(v);
        }
        if self.removed.contains(name) {
            return None;
        }
        self.parent.as_ref().and_then(|p| p.base_records(name))
    }

    fn override_records(&self, name: &DomainName, vantage: Vantage) -> Option<&[RecordData]> {
        if let Some(v) = self.overrides.get(&(name.clone(), vantage)) {
            return Some(v);
        }
        self.parent
            .as_ref()
            .and_then(|p| p.override_records(name, vantage))
    }

    fn has_any_override(&self, name: &DomainName) -> bool {
        self.overrides.keys().any(|(n, _)| n == name)
            || self
                .parent
                .as_ref()
                .is_some_and(|p| p.has_any_override(name))
    }

    /// Whether any record exists for `name` from any vantage.
    pub fn contains(&self, name: &DomainName) -> bool {
        self.base_records(name).is_some() || self.has_any_override(name)
    }

    /// Number of names with base records.
    pub fn name_count(&self) -> usize {
        self.names
    }

    /// Total base records.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Mark `apex` as a DNSSEC-signed zone.
    pub fn set_signed(&mut self, apex: DomainName) {
        if !self.is_signed_exact(&apex) {
            self.signed_zones.insert(apex);
        }
    }

    fn is_signed_exact(&self, apex: &DomainName) -> bool {
        self.signed_zones.contains(apex)
            || self
                .parent
                .as_ref()
                .is_some_and(|p| p.is_signed_exact(apex))
    }

    /// Whether `name` belongs to a signed zone (itself or any ancestor).
    pub fn is_signed(&self, name: &DomainName) -> bool {
        if self.is_signed_exact(name) {
            return true;
        }
        let mut cursor = name.clone();
        while let Some(parent) = cursor.parent() {
            if self.is_signed_exact(&parent) {
                return true;
            }
            cursor = parent;
        }
        false
    }

    /// Number of signed zone apexes.
    pub fn signed_zone_count(&self) -> usize {
        self.signed_zones.len() + self.parent.as_ref().map_or(0, |p| p.signed_zone_count())
    }

    /// Number of layers above the root (0 for a root store).
    pub fn layer_depth(&self) -> usize {
        self.depth
    }

    /// Replace the effective base record set for `name`, keeping the
    /// name/record counters accurate. An empty `recs` is a removal.
    fn set_base_records(&mut self, name: DomainName, recs: Vec<RecordData>) {
        match self.base_records(&name).map(<[_]>::len) {
            Some(len) => self.records -= len,
            None => {
                if recs.is_empty() {
                    return;
                }
                self.names += 1;
            }
        }
        if recs.is_empty() {
            self.names -= 1;
            self.base.remove(&name);
            if self
                .parent
                .as_ref()
                .is_some_and(|p| p.base_records(&name).is_some())
            {
                self.removed.insert(name);
            } else {
                self.removed.remove(&name);
            }
        } else {
            self.records += recs.len();
            self.removed.remove(&name);
            self.base.insert(name, recs);
        }
    }

    /// Collapse the whole parent chain into a fresh root store.
    pub fn flatten(&self) -> ZoneStore {
        let mut chain: Vec<&ZoneStore> = Vec::new();
        let mut cursor = Some(self);
        while let Some(s) = cursor {
            chain.push(s);
            cursor = s.parent.as_deref();
        }
        chain.reverse(); // root first, newest layer last
        let mut flat = ZoneStore::new();
        for layer in chain {
            for name in &layer.removed {
                flat.set_base_records(name.clone(), Vec::new());
            }
            for (name, recs) in &layer.base {
                flat.set_base_records(name.clone(), recs.clone());
            }
            for (key, recs) in &layer.overrides {
                flat.overrides.insert(key.clone(), recs.clone());
            }
            for apex in &layer.signed_zones {
                flat.set_signed(apex.clone());
            }
        }
        flat
    }

    /// Apply `delta` on top of `parent`, producing a structurally-shared
    /// successor plus the set of names whose base answer actually
    /// changed (idempotent ops are filtered out).
    pub fn apply(parent: Arc<ZoneStore>, delta: &ZoneDelta) -> (ZoneStore, ZoneChanges) {
        let mut next = if parent.depth + 1 > MAX_LAYER_DEPTH {
            parent.flatten()
        } else {
            ZoneStore {
                base: HashMap::new(),
                removed: HashSet::new(),
                overrides: HashMap::new(),
                signed_zones: HashSet::new(),
                names: parent.names,
                records: parent.records,
                depth: parent.depth + 1,
                parent: Some(parent),
            }
        };
        let mut changed = BTreeSet::new();
        for op in &delta.ops {
            match op {
                ZoneOp::SetRecords(name, recs) => {
                    let unchanged = next
                        .base_records(name)
                        .map_or(recs.is_empty(), |old| old == recs.as_slice());
                    if unchanged {
                        continue;
                    }
                    next.set_base_records(name.clone(), recs.clone());
                    changed.insert(name.clone());
                }
                ZoneOp::Remove(name) => {
                    if next.base_records(name).is_none() {
                        continue;
                    }
                    next.set_base_records(name.clone(), Vec::new());
                    changed.insert(name.clone());
                }
            }
        }
        (next, ZoneChanges { changed })
    }
}

/// One edit to the base record set of a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneOp {
    /// Replace the full base record set for the name (empty = remove).
    SetRecords(DomainName, Vec<RecordData>),
    /// Delete all base records for the name.
    Remove(DomainName),
}

/// An ordered batch of zone edits for one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneDelta {
    /// The edits, in application order.
    pub ops: Vec<ZoneOp>,
}

impl ZoneDelta {
    /// An empty batch.
    pub fn new() -> ZoneDelta {
        ZoneDelta::default()
    }

    /// Queue a record-set replacement.
    pub fn set_records(&mut self, name: DomainName, recs: Vec<RecordData>) {
        self.ops.push(ZoneOp::SetRecords(name, recs));
    }

    /// Queue an address-record replacement.
    pub fn set_addr(&mut self, name: DomainName, addr: IpAddr) {
        self.set_records(name, vec![RecordData::from_addr(addr)]);
    }

    /// Queue a CNAME replacement.
    pub fn set_cname(&mut self, name: DomainName, target: DomainName) {
        self.set_records(name, vec![RecordData::Cname(target)]);
    }

    /// Queue a name removal.
    pub fn remove(&mut self, name: DomainName) {
        self.ops.push(ZoneOp::Remove(name));
    }

    /// Whether the batch holds no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued edits.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Names whose effective base answer changed when a delta was applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneChanges {
    /// The affected names.
    pub changed: BTreeSet<DomainName>,
}

impl ZoneChanges {
    /// Whether no name changed.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut z = ZoneStore::new();
        z.add_addr(n("example.com"), "93.184.216.34".parse().unwrap());
        z.add_addr(n("example.com"), "2606:2800::1".parse().unwrap());
        let recs = z
            .lookup(&n("example.com"), Vantage::GOOGLE_DNS_BERLIN)
            .unwrap();
        assert_eq!(recs.len(), 2);
        assert!(z.contains(&n("example.com")));
        assert!(!z.contains(&n("absent.example")));
        assert_eq!(z.name_count(), 1);
        assert_eq!(z.record_count(), 2);
        assert!(z.lookup(&n("absent.example"), Vantage::OPEN_DNS).is_none());
    }

    #[test]
    fn overrides_replace_per_vantage() {
        let mut z = ZoneStore::new();
        z.add_addr(n("edge.cdn.example"), "198.18.252.1".parse().unwrap());
        z.add_override(
            n("edge.cdn.example"),
            Vantage::HTTPARCHIVE_REDWOOD,
            RecordData::A("198.18.252.2".parse().unwrap()),
        );
        let berlin = z
            .lookup(&n("edge.cdn.example"), Vantage::GOOGLE_DNS_BERLIN)
            .unwrap();
        let redwood = z
            .lookup(&n("edge.cdn.example"), Vantage::HTTPARCHIVE_REDWOOD)
            .unwrap();
        assert_ne!(berlin, redwood);
        assert_eq!(redwood.len(), 1);
        assert_eq!(redwood[0].addr().unwrap().to_string(), "198.18.252.2");
    }

    #[test]
    fn override_only_name_is_contained() {
        let mut z = ZoneStore::new();
        z.add_override(
            n("geo.example"),
            Vantage::OPEN_DNS,
            RecordData::A("10.0.0.1".parse().unwrap()),
        );
        assert!(z.contains(&n("geo.example")));
        assert!(z
            .lookup(&n("geo.example"), Vantage::GOOGLE_DNS_BERLIN)
            .is_none());
        assert!(z.lookup(&n("geo.example"), Vantage::OPEN_DNS).is_some());
    }

    #[test]
    fn cname_records_stored() {
        let mut z = ZoneStore::new();
        z.add_cname(n("www.shop.example"), n("shop.cdn.example"));
        let recs = z.lookup(&n("www.shop.example"), Vantage::OPEN_DNS).unwrap();
        assert_eq!(recs[0].cname().unwrap().as_str(), "shop.cdn.example");
    }
}

#[cfg(test)]
mod cow_tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn a(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn root() -> ZoneStore {
        let mut z = ZoneStore::new();
        z.add_addr(n("a.example"), a("85.1.0.1"));
        z.add_addr(n("b.example"), a("85.1.0.2"));
        z.add_cname(n("www.a.example"), n("edge.cdn.example"));
        z.add_addr(n("edge.cdn.example"), a("9.9.1.1"));
        z.set_signed(n("a.example"));
        z.add_override(
            n("edge.cdn.example"),
            Vantage::OPEN_DNS,
            RecordData::A("9.9.1.2".parse().unwrap()),
        );
        z
    }

    /// Replay the same ops into a flat (non-layered) store for comparison.
    fn flat_replay(mut z: ZoneStore, delta: &ZoneDelta) -> ZoneStore {
        for op in &delta.ops {
            match op {
                ZoneOp::SetRecords(name, recs) => z.set_base_records(name.clone(), recs.clone()),
                ZoneOp::Remove(name) => z.set_base_records(name.clone(), Vec::new()),
            }
        }
        z
    }

    fn assert_equivalent(layered: &ZoneStore, flat: &ZoneStore, names: &[&str]) {
        for s in names {
            let name = n(s);
            for vantage in [Vantage::GOOGLE_DNS_BERLIN, Vantage::OPEN_DNS] {
                assert_eq!(
                    layered.lookup(&name, vantage),
                    flat.lookup(&name, vantage),
                    "lookup mismatch for {s}"
                );
            }
            assert_eq!(layered.contains(&name), flat.contains(&name));
            assert_eq!(layered.is_signed(&name), flat.is_signed(&name));
        }
        assert_eq!(layered.name_count(), flat.name_count());
        assert_eq!(layered.record_count(), flat.record_count());
        assert_eq!(layered.signed_zone_count(), flat.signed_zone_count());
    }

    #[test]
    fn layered_apply_matches_flat_replay() {
        let base = root();
        let mut delta = ZoneDelta::new();
        delta.set_addr(n("a.example"), a("85.2.0.9"));
        delta.set_cname(n("www.a.example"), n("other.cdn.example"));
        delta.set_addr(n("other.cdn.example"), a("9.9.2.2"));
        delta.remove(n("b.example"));

        let flat = flat_replay(base.clone(), &delta);
        let (layered, changes) = ZoneStore::apply(Arc::new(base), &delta);
        assert_eq!(layered.layer_depth(), 1);
        assert_eq!(changes.changed.len(), 4);
        assert_equivalent(
            &layered,
            &flat,
            &[
                "a.example",
                "b.example",
                "www.a.example",
                "edge.cdn.example",
                "other.cdn.example",
                "missing.example",
            ],
        );
        // Flattening the layered store is also equivalent.
        assert_equivalent(
            &layered.flatten(),
            &flat,
            &["a.example", "b.example", "other.cdn.example"],
        );
    }

    #[test]
    fn idempotent_ops_report_no_change() {
        let base = root();
        let same = base
            .lookup(&n("a.example"), Vantage::GOOGLE_DNS_BERLIN)
            .unwrap()
            .to_vec();
        let mut delta = ZoneDelta::new();
        delta.set_records(n("a.example"), same);
        delta.remove(n("never.existed.example"));
        let (next, changes) = ZoneStore::apply(Arc::new(base.clone()), &delta);
        assert!(changes.is_empty());
        assert_eq!(next.name_count(), base.name_count());
        assert_eq!(next.record_count(), base.record_count());
    }

    #[test]
    fn tombstone_hides_parent_records_and_reinsert_revives() {
        let base = Arc::new(root());
        let mut d1 = ZoneDelta::new();
        d1.remove(n("b.example"));
        let (l1, c1) = ZoneStore::apply(base.clone(), &d1);
        assert_eq!(c1.changed.len(), 1);
        assert!(l1.lookup(&n("b.example"), Vantage::OPEN_DNS).is_none());
        assert!(!l1.contains(&n("b.example")));
        // Parent untouched.
        assert!(base.lookup(&n("b.example"), Vantage::OPEN_DNS).is_some());

        let mut d2 = ZoneDelta::new();
        d2.set_addr(n("b.example"), a("77.7.7.7"));
        let (l2, _) = ZoneStore::apply(Arc::new(l1), &d2);
        assert_eq!(
            l2.lookup(&n("b.example"), Vantage::OPEN_DNS).unwrap()[0]
                .addr()
                .unwrap(),
            a("77.7.7.7")
        );
        assert_eq!(l2.layer_depth(), 2);
    }

    #[test]
    fn deep_chains_compact() {
        let mut current = Arc::new(root());
        for i in 0..(MAX_LAYER_DEPTH + 4) {
            let mut delta = ZoneDelta::new();
            delta.set_addr(
                n("a.example"),
                a(&format!("85.9.{}.{}", i % 250, 1 + i % 250)),
            );
            let (next, changes) = ZoneStore::apply(current, &delta);
            assert!(!changes.is_empty());
            assert!(next.layer_depth() <= MAX_LAYER_DEPTH + 1);
            current = Arc::new(next);
        }
        assert_eq!(current.name_count(), 4);
        assert!(current.is_signed(&n("www.a.example")));
    }
}

#[cfg(test)]
mod dnssec_tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn signed_zone_covers_subdomains() {
        let mut z = ZoneStore::new();
        z.set_signed(n("example.org"));
        assert!(z.is_signed(&n("example.org")));
        assert!(z.is_signed(&n("www.example.org")));
        assert!(z.is_signed(&n("a.b.example.org")));
        assert!(!z.is_signed(&n("example.com")));
        assert!(!z.is_signed(&n("org")));
        assert_eq!(z.signed_zone_count(), 1);
    }

    #[test]
    fn resolver_sets_ad_bit_only_when_whole_chain_signed() {
        use crate::resolver::Resolver;
        let mut z = ZoneStore::new();
        z.set_signed(n("shop.example"));
        z.set_signed(n("signedcdn.net"));
        // Fully signed chain.
        z.add_cname(n("www.shop.example"), n("e1.signedcdn.net"));
        z.add_addr(n("e1.signedcdn.net"), "9.9.9.9".parse().unwrap());
        // Chain escaping into an unsigned zone.
        z.add_cname(n("img.shop.example"), n("e1.plaincdn.net"));
        z.add_addr(n("e1.plaincdn.net"), "9.9.9.8".parse().unwrap());
        // Unsigned origin.
        z.add_addr(n("other.example"), "9.9.9.7".parse().unwrap());

        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        assert!(r.resolve(&n("www.shop.example")).unwrap().authenticated);
        assert!(!r.resolve(&n("img.shop.example")).unwrap().authenticated);
        assert!(!r.resolve(&n("other.example")).unwrap().authenticated);
    }
}
