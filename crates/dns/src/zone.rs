//! Authoritative zone data.
//!
//! One store holds all simulated zones (the generator writes into it
//! directly; there is no delegation tree to traverse). Per-vantage
//! overrides model geo-DNS: a CDN name resolves to a nearby edge cache,
//! so different vantage points receive different `A` records.

use crate::name::DomainName;
use crate::record::RecordData;
use crate::vantage::Vantage;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// The authoritative record store.
#[derive(Debug, Clone, Default)]
pub struct ZoneStore {
    base: HashMap<DomainName, Vec<RecordData>>,
    overrides: HashMap<(DomainName, Vantage), Vec<RecordData>>,
    /// Zone apexes whose operators sign with DNSSEC. A name is
    /// authenticatable when it or a parent is listed here (modelling a
    /// validating resolver's AD bit, not the full DS/DNSKEY machinery).
    signed_zones: HashSet<DomainName>,
}

impl ZoneStore {
    /// Empty store.
    pub fn new() -> ZoneStore {
        ZoneStore::default()
    }

    /// Append a record for `name` (visible from every vantage unless an
    /// override exists for that vantage).
    pub fn add(&mut self, name: DomainName, data: RecordData) {
        self.base.entry(name).or_default().push(data);
    }

    /// Append an address record for `name`.
    pub fn add_addr(&mut self, name: DomainName, addr: IpAddr) {
        self.add(name, RecordData::from_addr(addr));
    }

    /// Append a CNAME for `name`.
    pub fn add_cname(&mut self, name: DomainName, target: DomainName) {
        self.add(name, RecordData::Cname(target));
    }

    /// Append a record visible only from `vantage` (replacing the base
    /// answer for that vantage entirely).
    pub fn add_override(&mut self, name: DomainName, vantage: Vantage, data: RecordData) {
        self.overrides
            .entry((name, vantage))
            .or_default()
            .push(data);
    }

    /// The records `vantage` receives for `name`.
    pub fn lookup(&self, name: &DomainName, vantage: Vantage) -> Option<&[RecordData]> {
        if let Some(v) = self.overrides.get(&(name.clone(), vantage)) {
            return Some(v);
        }
        self.base.get(name).map(Vec::as_slice)
    }

    /// Whether any record exists for `name` from any vantage.
    pub fn contains(&self, name: &DomainName) -> bool {
        self.base.contains_key(name) || self.overrides.keys().any(|(n, _)| n == name)
    }

    /// Number of names with base records.
    pub fn name_count(&self) -> usize {
        self.base.len()
    }

    /// Total base records.
    pub fn record_count(&self) -> usize {
        self.base.values().map(Vec::len).sum()
    }

    /// Mark `apex` as a DNSSEC-signed zone.
    pub fn set_signed(&mut self, apex: DomainName) {
        self.signed_zones.insert(apex);
    }

    /// Whether `name` belongs to a signed zone (itself or any ancestor).
    pub fn is_signed(&self, name: &DomainName) -> bool {
        if self.signed_zones.contains(name) {
            return true;
        }
        let mut cursor = name.clone();
        while let Some(parent) = cursor.parent() {
            if self.signed_zones.contains(&parent) {
                return true;
            }
            cursor = parent;
        }
        false
    }

    /// Number of signed zone apexes.
    pub fn signed_zone_count(&self) -> usize {
        self.signed_zones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut z = ZoneStore::new();
        z.add_addr(n("example.com"), "93.184.216.34".parse().unwrap());
        z.add_addr(n("example.com"), "2606:2800::1".parse().unwrap());
        let recs = z
            .lookup(&n("example.com"), Vantage::GOOGLE_DNS_BERLIN)
            .unwrap();
        assert_eq!(recs.len(), 2);
        assert!(z.contains(&n("example.com")));
        assert!(!z.contains(&n("absent.example")));
        assert_eq!(z.name_count(), 1);
        assert_eq!(z.record_count(), 2);
        assert!(z.lookup(&n("absent.example"), Vantage::OPEN_DNS).is_none());
    }

    #[test]
    fn overrides_replace_per_vantage() {
        let mut z = ZoneStore::new();
        z.add_addr(n("edge.cdn.example"), "198.18.252.1".parse().unwrap());
        z.add_override(
            n("edge.cdn.example"),
            Vantage::HTTPARCHIVE_REDWOOD,
            RecordData::A("198.18.252.2".parse().unwrap()),
        );
        let berlin = z
            .lookup(&n("edge.cdn.example"), Vantage::GOOGLE_DNS_BERLIN)
            .unwrap();
        let redwood = z
            .lookup(&n("edge.cdn.example"), Vantage::HTTPARCHIVE_REDWOOD)
            .unwrap();
        assert_ne!(berlin, redwood);
        assert_eq!(redwood.len(), 1);
        assert_eq!(redwood[0].addr().unwrap().to_string(), "198.18.252.2");
    }

    #[test]
    fn override_only_name_is_contained() {
        let mut z = ZoneStore::new();
        z.add_override(
            n("geo.example"),
            Vantage::OPEN_DNS,
            RecordData::A("10.0.0.1".parse().unwrap()),
        );
        assert!(z.contains(&n("geo.example")));
        assert!(z
            .lookup(&n("geo.example"), Vantage::GOOGLE_DNS_BERLIN)
            .is_none());
        assert!(z.lookup(&n("geo.example"), Vantage::OPEN_DNS).is_some());
    }

    #[test]
    fn cname_records_stored() {
        let mut z = ZoneStore::new();
        z.add_cname(n("www.shop.example"), n("shop.cdn.example"));
        let recs = z.lookup(&n("www.shop.example"), Vantage::OPEN_DNS).unwrap();
        assert_eq!(recs[0].cname().unwrap().as_str(), "shop.cdn.example");
    }
}

#[cfg(test)]
mod dnssec_tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn signed_zone_covers_subdomains() {
        let mut z = ZoneStore::new();
        z.set_signed(n("example.org"));
        assert!(z.is_signed(&n("example.org")));
        assert!(z.is_signed(&n("www.example.org")));
        assert!(z.is_signed(&n("a.b.example.org")));
        assert!(!z.is_signed(&n("example.com")));
        assert!(!z.is_signed(&n("org")));
        assert_eq!(z.signed_zone_count(), 1);
    }

    #[test]
    fn resolver_sets_ad_bit_only_when_whole_chain_signed() {
        use crate::resolver::Resolver;
        let mut z = ZoneStore::new();
        z.set_signed(n("shop.example"));
        z.set_signed(n("signedcdn.net"));
        // Fully signed chain.
        z.add_cname(n("www.shop.example"), n("e1.signedcdn.net"));
        z.add_addr(n("e1.signedcdn.net"), "9.9.9.9".parse().unwrap());
        // Chain escaping into an unsigned zone.
        z.add_cname(n("img.shop.example"), n("e1.plaincdn.net"));
        z.add_addr(n("e1.plaincdn.net"), "9.9.9.8".parse().unwrap());
        // Unsigned origin.
        z.add_addr(n("other.example"), "9.9.9.7".parse().unwrap());

        let r = Resolver::new(&z, Vantage::GOOGLE_DNS_BERLIN);
        assert!(r.resolve(&n("www.shop.example")).unwrap().authenticated);
        assert!(!r.resolve(&n("img.shop.example")).unwrap().authenticated);
        assert!(!r.resolve(&n("other.example")).unwrap().authenticated);
    }
}
