//! Domain names.
//!
//! Names are stored normalised: lowercase ASCII, no trailing dot. The
//! paper resolves every Alexa entry twice — as listed ("w/o www domain")
//! and with a `www.` label prepended — and compares the resulting prefix
//! footprints (Fig 1); [`DomainName::with_www`]/[`DomainName::without_www`]
//! provide that pairing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A normalised domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainName(String);

/// Why a name failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// Empty input or empty label (consecutive dots).
    EmptyLabel(String),
    /// A label exceeded 63 octets or the name 253.
    TooLong(String),
    /// A character outside `[a-z0-9-_]` (after lowercasing).
    BadCharacter(String),
    /// A label started or ended with `-`.
    BadHyphen(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel(s) => write!(f, "empty label in {s:?}"),
            NameError::TooLong(s) => write!(f, "name or label too long: {s:?}"),
            NameError::BadCharacter(s) => write!(f, "invalid character in {s:?}"),
            NameError::BadHyphen(s) => write!(f, "label starts/ends with hyphen: {s:?}"),
        }
    }
}

impl std::error::Error for NameError {}

impl DomainName {
    /// Parse and normalise.
    pub fn parse(input: &str) -> Result<DomainName, NameError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        let lower = trimmed.to_ascii_lowercase();
        if lower.is_empty() {
            return Err(NameError::EmptyLabel(input.to_string()));
        }
        if lower.len() > 253 {
            return Err(NameError::TooLong(input.to_string()));
        }
        for label in lower.split('.') {
            if label.is_empty() {
                return Err(NameError::EmptyLabel(input.to_string()));
            }
            if label.len() > 63 {
                return Err(NameError::TooLong(input.to_string()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(NameError::BadHyphen(input.to_string()));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
            {
                return Err(NameError::BadCharacter(input.to_string()));
            }
        }
        Ok(DomainName(lower))
    }

    /// The normalised textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The labels, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Whether the left-most label is `www`.
    pub fn is_www(&self) -> bool {
        self.0 == "www" || self.0.starts_with("www.")
    }

    /// The name with a `www.` label prepended (self if already `www.`).
    pub fn with_www(&self) -> DomainName {
        if self.is_www() {
            self.clone()
        } else {
            DomainName(format!("www.{}", self.0))
        }
    }

    /// The name with a leading `www.` removed (self if absent).
    pub fn without_www(&self) -> DomainName {
        match self.0.strip_prefix("www.") {
            Some(rest) if !rest.is_empty() => DomainName(rest.to_string()),
            _ => self.clone(),
        }
    }

    /// The parent name (one label removed from the left), if any.
    pub fn parent(&self) -> Option<DomainName> {
        self.0
            .split_once('.')
            .map(|(_, rest)| DomainName(rest.to_string()))
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(&other.0)
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }

    /// Whether the name ends with the given suffix string (used by the
    /// HTTPArchive-style CDN pattern classifier).
    pub fn has_suffix(&self, suffix: &str) -> bool {
        let suffix = suffix.to_ascii_lowercase();
        self.0 == suffix
            || (self.0.ends_with(&suffix)
                && self
                    .0
                    .as_bytes()
                    .get(self.0.len() - suffix.len() - 1)
                    .is_some_and(|b| *b == b'.'))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DomainName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<DomainName, NameError> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parse_normalises() {
        assert_eq!(n("Example.COM").as_str(), "example.com");
        assert_eq!(n("example.com.").as_str(), "example.com");
        assert_eq!(n("a-b.c_d.example").as_str(), "a-b.c_d.example");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse(".").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse("-a.example").is_err());
        assert!(DomainName::parse("a-.example").is_err());
        assert!(DomainName::parse("exa mple.com").is_err());
        assert!(DomainName::parse("exämple.com").is_err());
        assert!(DomainName::parse(&"a".repeat(64)).is_err());
        assert!(DomainName::parse(&format!("{}.com", "a.".repeat(130))).is_err());
    }

    #[test]
    fn www_pairing() {
        let bare = n("example.com");
        let www = bare.with_www();
        assert_eq!(www.as_str(), "www.example.com");
        assert!(www.is_www());
        assert!(!bare.is_www());
        assert_eq!(www.without_www(), bare);
        assert_eq!(bare.without_www(), bare);
        assert_eq!(www.with_www(), www); // idempotent
    }

    #[test]
    fn www_alone_is_not_stripped_to_empty() {
        let www = n("www");
        assert!(www.is_www());
        assert_eq!(www.without_www().as_str(), "www");
    }

    #[test]
    fn labels_and_parent() {
        let d = n("a.b.example.com");
        assert_eq!(d.label_count(), 4);
        assert_eq!(
            d.labels().collect::<Vec<_>>(),
            vec!["a", "b", "example", "com"]
        );
        assert_eq!(d.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(n("com").parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let base = n("example.com");
        assert!(n("example.com").is_subdomain_of(&base));
        assert!(n("www.example.com").is_subdomain_of(&base));
        assert!(n("a.b.example.com").is_subdomain_of(&base));
        assert!(!n("badexample.com").is_subdomain_of(&base));
        assert!(!n("example.org").is_subdomain_of(&base));
        assert!(!n("com").is_subdomain_of(&base));
    }

    #[test]
    fn suffix_matching_respects_label_boundaries() {
        let d = n("a495.g.akamai.net");
        assert!(d.has_suffix("akamai.net"));
        assert!(d.has_suffix("g.akamai.net"));
        assert!(!d.has_suffix("kamai.net"));
        assert!(n("akamai.net").has_suffix("akamai.net"));
        assert!(!n("net").has_suffix("akamai.net"));
    }

    #[test]
    fn ordering_is_stable_for_maps() {
        let mut v = vec![n("b.com"), n("a.com"), n("a.com")];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].as_str(), "a.com");
    }
}
