//! Measurement vantage points.
//!
//! The paper resolved from Berlin via Google DNS, cross-checked with
//! OpenDNS and the `us01` node of a DNS looking glass, and compared CDN
//! classification against HTTPArchive's agent in Redwood City, CA. Geo-
//! aware CDN DNS answers differ between these points, which is why
//! [`crate::zone::ZoneStore`] supports per-vantage overrides.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A resolver vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vantage(pub u8);

impl Vantage {
    /// Google Public DNS queried from Berlin (the paper's primary).
    pub const GOOGLE_DNS_BERLIN: Vantage = Vantage(0);
    /// OpenDNS (cross-check).
    pub const OPEN_DNS: Vantage = Vantage(1);
    /// DNS Looking Glass node `us01` (cross-check).
    pub const LOOKING_GLASS_US01: Vantage = Vantage(2);
    /// HTTPArchive's monitoring agent in Redwood City, CA.
    pub const HTTPARCHIVE_REDWOOD: Vantage = Vantage(3);

    /// All four vantage points.
    pub const ALL: [Vantage; 4] = [
        Vantage::GOOGLE_DNS_BERLIN,
        Vantage::OPEN_DNS,
        Vantage::LOOKING_GLASS_US01,
        Vantage::HTTPARCHIVE_REDWOOD,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self.0 {
            0 => "GoogleDNS(Berlin)",
            1 => "OpenDNS",
            2 => "LookingGlass(us01)",
            3 => "HTTPArchive(RedwoodCity)",
            _ => "custom",
        }
    }
}

impl fmt::Display for Vantage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_vantages() {
        let all = Vantage::ALL;
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Vantage::GOOGLE_DNS_BERLIN.to_string(), "GoogleDNS(Berlin)");
        assert_eq!(Vantage(77).name(), "custom");
    }
}
