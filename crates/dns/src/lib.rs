//! # ripki-dns
//!
//! The DNS substrate for the RiPKI measurement pipeline: an authoritative
//! zone store and a resolver simulator that produces exactly what the
//! paper's step 2 consumed — `A`, `AAAA`, and `CNAME` records for every
//! domain, from several vantage points, with CNAME chains preserved.
//!
//! * [`name::DomainName`] — normalised ASCII domain names with the
//!   `www.`/non-`www.` pairing the paper measures (Fig 1).
//! * [`record::RecordData`] — `A`/`AAAA`/`CNAME` data.
//! * [`zone::ZoneStore`] — authoritative data, with per-vantage overrides
//!   modelling CDN geo-DNS (different edge caches for different resolver
//!   locations).
//! * [`resolver::Resolver`] — CNAME-chasing resolution with loop
//!   detection; reports the full chain so the CDN classification
//!   heuristic ("two or more CNAMEs") can be applied downstream.
//! * [`vantage::Vantage`] — the measurement vantage points (the paper
//!   used Google DNS from Berlin, OpenDNS, and a DNS looking glass, plus
//!   HTTPArchive's Redwood City agent for cross-checking).
//! * [`faults::FaultyResolver`] — deterministic answer corruption,
//!   reproducing the "0.07% incorrect DNS answers" the paper excluded.
//! * [`cache::ResolutionCache`] — shared-tail memoization for batch
//!   studies: CNAME tails shared by thousands of domains (CDN names)
//!   are walked once per epoch and spliced into every chain.
//!
//! ## Omissions
//!
//! * No wire format, no UDP/TCP transport, no TTL semantics — the
//!   pipeline consumes final answers, not packets (the
//!   [`cache`] module memoizes within one immutable zone snapshot; it
//!   is not a TTL cache).
//! * No DNSSEC (the paper explicitly defers it to future work).
//! * No internationalised names; labels are ASCII, as in the Alexa list.

pub mod cache;
pub mod faults;
pub mod name;
pub mod record;
pub mod resolver;
pub mod vantage;
pub mod zone;
pub mod zonefile;

pub use cache::ResolutionCache;
pub use name::DomainName;
pub use record::RecordData;
pub use resolver::{Resolution, ResolveError, Resolver, TracedResolution};
pub use vantage::Vantage;
pub use zone::{ZoneChanges, ZoneDelta, ZoneOp, ZoneStore};
