//! Shared-tail memoization for the resolver.
//!
//! In a CDN-heavy web, thousands of ranked domains CNAME into the same
//! handful of provider names (`shop.cdnprovider.net` →
//! `edge7.cdnprovider.net` → addresses). A batch study resolves each
//! *query* name once, but re-walks those shared tails over and over.
//! [`ResolutionCache`] memoizes the resolution **from every CNAME target
//! onward**, so a shared tail is resolved once per epoch and spliced into
//! every chain that reaches it.
//!
//! ## Invalidation rules
//!
//! A cache is valid for exactly one `(ZoneStore, Vantage)` pair:
//!
//! * zone data is immutable for the cache's lifetime — a world with new
//!   DNS data needs a fresh cache (the study engine ties cache lifetime
//!   to its zone snapshot);
//! * answers are vantage-dependent (geo-DNS overrides), so the cache is
//!   pinned to one [`Vantage`] and refuses use from any other;
//! * RPKI epoch swaps do **not** touch DNS, so the engine carries one
//!   cache across epochs of the same world.
//!
//! Entries are keyed by CNAME-target name and store the tail chain plus
//! the terminal outcome. Loop and chain-length checks are re-run against
//! the *caller's* full chain at splice time, so cached and uncached
//! resolution are observably identical (including error payloads).

use crate::name::DomainName;
use crate::vantage::Vantage;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// How a memoized tail walk ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Terminal {
    /// The walk reached a name with address records.
    Addresses(Vec<IpAddr>),
    /// The walk dead-ended at a name that does not exist.
    NxDomain(DomainName),
    /// The walk reached a name with records but no addresses.
    NoAddress(DomainName),
}

/// The memoized resolution from one name onward: the CNAME chain below
/// it (relative to that name) and the terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedTail {
    pub(crate) chain: Vec<DomainName>,
    pub(crate) terminal: Terminal,
}

/// A concurrent, vantage-pinned memo table for shared CNAME tails.
///
/// Cheap to share across worker threads (`&ResolutionCache` is all the
/// resolver needs); entries are immutable once inserted.
#[derive(Debug)]
pub struct ResolutionCache {
    vantage: Vantage,
    map: RwLock<HashMap<DomainName, Arc<CachedTail>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResolutionCache {
    /// An empty cache pinned to `vantage`.
    pub fn new(vantage: Vantage) -> ResolutionCache {
        ResolutionCache {
            vantage,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The vantage this cache answers for.
    pub fn vantage(&self) -> Vantage {
        self.vantage
    }

    /// Number of memoized tails.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock poisoned").len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tail-probe hits so far (shared-tail resolutions avoided).
    pub fn hits(&self) -> u64 {
        // Relaxed: standalone statistic, no memory is published via it.
        self.hits.load(Ordering::Relaxed)
    }

    /// Tail-probe misses so far (full walks performed).
    pub fn misses(&self) -> u64 {
        // Relaxed: standalone statistic, no memory is published via it.
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn get(&self, name: &DomainName) -> Option<Arc<CachedTail>> {
        let hit = self
            .map
            .read()
            .expect("cache lock poisoned")
            .get(name)
            .cloned();
        // Relaxed: hit/miss tallies are standalone statistics; the
        // cached tails themselves travel through the RwLock above.
        let tally = match &hit {
            Some(_) => &self.hits,
            None => &self.misses,
        };
        tally.fetch_add(1, Ordering::Relaxed); // Relaxed: see above.
        hit
    }

    /// Record a completed walk. Inserts one entry per **CNAME target**
    /// (chain node) — query names are resolved once per study, only
    /// shared tails pay off — each mapping to its suffix of the walk.
    /// Existing entries are left untouched (they are identical by
    /// determinism of the zone data).
    pub(crate) fn fill(&self, chain: &[DomainName], terminal: &Terminal) {
        if chain.is_empty() {
            return;
        }
        // Workers race on the same shared tails: if another thread
        // already indexed this walk, stay on the read lock — no write
        // contention, no allocation.
        {
            let map = self.map.read().expect("cache lock poisoned");
            if chain.iter().all(|node| map.contains_key(node)) {
                return;
            }
        }
        let mut map = self.map.write().expect("cache lock poisoned");
        for (i, node) in chain.iter().enumerate() {
            map.entry(node.clone()).or_insert_with(|| {
                Arc::new(CachedTail {
                    chain: chain[i + 1..].to_vec(),
                    terminal: terminal.clone(),
                })
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn fill_indexes_suffixes_per_target() {
        let cache = ResolutionCache::new(Vantage::GOOGLE_DNS_BERLIN);
        let chain = vec![n("a.cdn.net"), n("b.cdn.net")];
        let terminal = Terminal::Addresses(vec!["192.0.2.1".parse().unwrap()]);
        cache.fill(&chain, &terminal);
        // The query name itself is not cached; both targets are.
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&n("www.site.example")).is_none());
        let a = cache.get(&n("a.cdn.net")).unwrap();
        assert_eq!(a.chain, vec![n("b.cdn.net")]);
        let b = cache.get(&n("b.cdn.net")).unwrap();
        assert!(b.chain.is_empty());
        assert_eq!(b.terminal, terminal);
    }

    #[test]
    fn fill_never_overwrites() {
        let cache = ResolutionCache::new(Vantage::OPEN_DNS);
        let t1 = Terminal::Addresses(vec!["192.0.2.1".parse().unwrap()]);
        cache.fill(&[n("t.example")], &t1);
        let t2 = Terminal::NxDomain(n("gone.example"));
        cache.fill(&[n("t.example")], &t2);
        assert_eq!(cache.get(&n("t.example")).unwrap().terminal, t1);
    }

    #[test]
    fn hit_miss_counters() {
        let cache = ResolutionCache::new(Vantage::OPEN_DNS);
        assert!(cache.get(&n("x.example")).is_none());
        cache.fill(&[n("x.example")], &Terminal::NoAddress(n("x.example")));
        assert!(cache.get(&n("x.example")).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
