//! Resource record data.
//!
//! Only the three types the paper collects: `A`, `AAAA`, `CNAME`.

use crate::name::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Record data (the right-hand side of a record).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address record.
    A(Ipv4Addr),
    /// IPv6 address record.
    Aaaa(Ipv6Addr),
    /// Canonical-name alias.
    Cname(DomainName),
}

impl RecordData {
    /// The record type mnemonic.
    pub fn type_name(&self) -> &'static str {
        match self {
            RecordData::A(_) => "A",
            RecordData::Aaaa(_) => "AAAA",
            RecordData::Cname(_) => "CNAME",
        }
    }

    /// The address, for address records.
    pub fn addr(&self) -> Option<IpAddr> {
        match self {
            RecordData::A(a) => Some(IpAddr::V4(*a)),
            RecordData::Aaaa(a) => Some(IpAddr::V6(*a)),
            RecordData::Cname(_) => None,
        }
    }

    /// The alias target, for CNAME records.
    pub fn cname(&self) -> Option<&DomainName> {
        match self {
            RecordData::Cname(n) => Some(n),
            _ => None,
        }
    }

    /// Wrap any IP address in the right record type.
    pub fn from_addr(addr: IpAddr) -> RecordData {
        match addr {
            IpAddr::V4(a) => RecordData::A(a),
            IpAddr::V6(a) => RecordData::Aaaa(a),
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(a) => write!(f, "A {a}"),
            RecordData::Aaaa(a) => write!(f, "AAAA {a}"),
            RecordData::Cname(n) => write!(f, "CNAME {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = RecordData::A("1.2.3.4".parse().unwrap());
        let aaaa = RecordData::Aaaa("2001:db8::1".parse().unwrap());
        let cn = RecordData::Cname(DomainName::parse("cdn.example").unwrap());
        assert_eq!(a.type_name(), "A");
        assert_eq!(aaaa.type_name(), "AAAA");
        assert_eq!(cn.type_name(), "CNAME");
        assert_eq!(a.addr(), Some("1.2.3.4".parse().unwrap()));
        assert_eq!(aaaa.addr(), Some("2001:db8::1".parse().unwrap()));
        assert_eq!(cn.addr(), None);
        assert_eq!(cn.cname().unwrap().as_str(), "cdn.example");
        assert_eq!(a.cname(), None);
    }

    #[test]
    fn from_addr_picks_type() {
        assert_eq!(
            RecordData::from_addr("9.9.9.9".parse().unwrap()).type_name(),
            "A"
        );
        assert_eq!(
            RecordData::from_addr("::1".parse().unwrap()).type_name(),
            "AAAA"
        );
    }

    #[test]
    fn display() {
        let cn = RecordData::Cname(DomainName::parse("cdn.example").unwrap());
        assert_eq!(cn.to_string(), "CNAME cdn.example");
        assert_eq!(
            RecordData::A("1.2.3.4".parse().unwrap()).to_string(),
            "A 1.2.3.4"
        );
    }
}
