//! The commutation law that makes SLURM delta-aware: applying the
//! exceptions to a streamed delta must land on the same set as
//! re-excepting the full snapshot —
//! `excepted(base).apply(map_delta(d)) == excepted(base.apply(d))`
//! for every filter/assertion mix and every forward delta.

use proptest::prelude::*;
use ripki_bgp::rov::VrpTriple;
use ripki_net::{Asn, IpPrefix};
use ripki_payload::{PayloadUpdate, VrpDelta, VrpPayload};
use ripki_slurm::{ExceptionSet, PrefixAssertion, PrefixFilter, SlurmFile};

/// A small shared universe so payloads, deltas, filters, and
/// assertions collide constantly — the interesting regime.
fn prefix_for(idx: u8, v6: bool, len_bump: u8) -> IpPrefix {
    if v6 {
        format!("2001:db8:{idx}::/{}", 48 + len_bump)
            .parse()
            .expect("v6 prefix")
    } else {
        format!("10.{idx}.0.0/{}", 16 + len_bump)
            .parse()
            .expect("v4 prefix")
    }
}

fn arb_vrp() -> impl Strategy<Value = VrpTriple> {
    (0u8..6, any::<bool>(), 0u8..4, 1u32..8).prop_map(|(idx, v6, bump, asn)| VrpTriple {
        prefix: prefix_for(idx, v6, bump),
        max_length: if v6 { 48 + bump } else { 16 + bump },
        asn: Asn::new(asn),
    })
}

fn arb_filter() -> impl Strategy<Value = PrefixFilter> {
    prop_oneof![
        // ASN-only.
        (1u32..8).prop_map(|asn| PrefixFilter {
            prefix: None,
            asn: Some(Asn::new(asn)),
            comment: None,
        }),
        // Prefix-only: short lengths so covered-by bites more specifics.
        (0u8..6, any::<bool>()).prop_map(|(idx, v6)| PrefixFilter {
            prefix: Some(prefix_for(idx, v6, 0)),
            asn: None,
            comment: None,
        }),
        // Both members.
        (0u8..6, any::<bool>(), 0u8..4, 1u32..8).prop_map(|(idx, v6, bump, asn)| PrefixFilter {
            prefix: Some(prefix_for(idx, v6, bump)),
            asn: Some(Asn::new(asn)),
            comment: None,
        }),
    ]
}

fn arb_exceptions() -> impl Strategy<Value = ExceptionSet> {
    (
        prop::collection::vec(arb_filter(), 0..4),
        prop::collection::vec(arb_vrp(), 0..4),
    )
        .prop_map(|(filters, asserted)| {
            let file = SlurmFile {
                filters,
                assertions: asserted
                    .into_iter()
                    .map(|vrp| PrefixAssertion {
                        prefix: vrp.prefix,
                        asn: vrp.asn,
                        max_length: Some(vrp.max_length),
                        comment: None,
                    })
                    .collect(),
                warnings: Vec::new(),
            };
            file.compile()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The law itself, with the delta derived from a real diff (the
    /// shape every fabric publisher produces).
    #[test]
    fn slurm_commutes_with_diffed_deltas(
        ex in arb_exceptions(),
        base_vrps in prop::collection::btree_set(arb_vrp(), 0..12),
        next_vrps in prop::collection::btree_set(arb_vrp(), 0..12),
    ) {
        let base = VrpPayload::new(1, base_vrps);
        let next = VrpPayload::new(2, next_vrps);
        let delta = base.diff(&next);
        let left = ex
            .excepted(&base)
            .apply(&ex.map_delta(&delta))
            .expect("mapped delta chains from the excepted base");
        let right = ex.excepted(&next);
        prop_assert_eq!(left, right);
    }

    /// The law also holds for arbitrary (possibly redundant) deltas:
    /// announcements of already-present VRPs, withdrawals of absent
    /// ones — payload application is set-idempotent and SLURM must not
    /// break that.
    #[test]
    fn slurm_commutes_with_arbitrary_deltas(
        ex in arb_exceptions(),
        base_vrps in prop::collection::btree_set(arb_vrp(), 0..12),
        announced in prop::collection::vec(arb_vrp(), 0..8),
        withdrawn in prop::collection::vec(arb_vrp(), 0..8),
    ) {
        let base = VrpPayload::new(4, base_vrps);
        let delta = VrpDelta::new(4, 5, announced, withdrawn);
        let left = ex
            .excepted(&base)
            .apply(&ex.map_delta(&delta))
            .expect("mapped delta chains from the excepted base");
        let right = ex.excepted(&base.apply(&delta).expect("delta chains from base"));
        prop_assert_eq!(left, right);
    }

    /// Applying exceptions to a whole `PayloadUpdate` keeps the delta
    /// usable: a downstream hop holding the previous *excepted* epoch
    /// can keep streaming, never forced into a snapshot resync.
    #[test]
    fn excepted_updates_still_chain(
        ex in arb_exceptions(),
        prev_vrps in prop::collection::btree_set(arb_vrp(), 0..12),
        next_vrps in prop::collection::btree_set(arb_vrp(), 0..12),
    ) {
        let prev = VrpPayload::new(7, prev_vrps);
        let next = VrpPayload::new(8, next_vrps);
        let update = PayloadUpdate::from_previous(&prev, next);
        let out = ex.apply(&update);
        let delta = out.delta.expect("delta preserved through apply");
        let chained = ex
            .excepted(&prev)
            .apply(&delta)
            .expect("excepted delta chains");
        prop_assert_eq!(chained, out.payload);
    }
}
