//! The SLURM example from RFC 8416 §3.5 — the same file Routinator's
//! documentation walks through — parsed and checked member by member.

use ripki_bgp::rov::VrpTriple;
use ripki_net::Asn;
use ripki_payload::VrpPayload;
use ripki_slurm::SlurmFile;
use std::path::Path;

fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
    VrpTriple {
        prefix: prefix.parse().expect("test prefix"),
        max_length: ml,
        asn: Asn::new(asn),
    }
}

fn example() -> SlurmFile {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/rfc8416-example.json"
    ));
    SlurmFile::load(path).expect("fixture parses")
}

#[test]
fn example_file_parses_with_bgpsec_warnings() {
    let file = example();
    assert_eq!(file.filters.len(), 3);
    assert_eq!(file.assertions.len(), 2);
    // Both BGPsec sections are ignored, loudly.
    assert_eq!(file.warnings.len(), 2);
    assert!(file.warnings[0].contains("3 bgpsecFilters"));
    assert!(file.warnings[1].contains("1 bgpsecAssertions"));
    assert_eq!(
        file.filters[0].comment.as_deref(),
        Some("All VRPs encompassed by prefix")
    );
}

#[test]
fn example_filters_match_documented_semantics() {
    let ex = example().compile();
    // "All VRPs encompassed by prefix": covered-by, not exact match.
    assert!(ex.filters_out(&vrp("192.0.2.0/24", 24, 64499)));
    assert!(ex.filters_out(&vrp("192.0.2.128/25", 25, 64499)));
    // "All VRPs matching ASN" regardless of prefix.
    assert!(ex.filters_out(&vrp("203.0.113.0/24", 24, 64496)));
    // Both members must match for the combined rule.
    assert!(ex.filters_out(&vrp("198.51.100.0/24", 24, 64497)));
    assert!(!ex.filters_out(&vrp("198.51.100.0/24", 24, 64498)));
    assert!(!ex.filters_out(&vrp("203.0.113.0/24", 24, 64499)));
}

#[test]
fn example_assertions_become_vrps() {
    let ex = example().compile();
    // maxPrefixLength defaults to the prefix length when absent.
    assert!(ex.asserted().contains(&vrp("198.51.100.0/24", 24, 64496)));
    // Uppercase 2001:DB8::/32 from the RFC text parses; maxPrefixLength 48 sticks.
    assert!(ex.asserted().contains(&vrp("2001:db8::/32", 48, 64496)));
    assert_eq!(ex.assertion_count(), 2);
}

#[test]
fn example_applied_to_a_payload_drops_and_adds() {
    let ex = example().compile();
    let base = VrpPayload::new(
        9,
        [
            vrp("192.0.2.0/24", 24, 64499),   // filtered by prefix
            vrp("203.0.113.0/24", 24, 64496), // filtered by asn
            vrp("203.0.113.0/24", 24, 64499), // survives
        ],
    );
    let excepted = ex.excepted(&base);
    assert_eq!(excepted.epoch(), 9);
    // One survivor plus the two assertions — note the 198.51.100.0/24
    // AS64496 assertion survives even though AS64496 is filtered:
    // assertions are local truth, not subject to the filters.
    assert_eq!(excepted.len(), 3);
    assert!(excepted.vrps().contains(&vrp("203.0.113.0/24", 24, 64499)));
    assert!(excepted.vrps().contains(&vrp("198.51.100.0/24", 24, 64496)));
    assert!(excepted.vrps().contains(&vrp("2001:db8::/32", 48, 64496)));
}
