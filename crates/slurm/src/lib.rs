//! RFC 8416 SLURM: Simplified Local Internet Number Resource
//! Management with the RPKI.
//!
//! A SLURM file lets a relying party overrule the globally validated
//! VRP set with *local* knowledge: `prefixFilters` remove VRPs the
//! operator considers wrong for their network, `prefixAssertions` add
//! VRPs the global RPKI does not (yet) carry. This crate parses and
//! validates the RFC 8416 JSON shape ([`SlurmFile::parse`]), compiles
//! it into an efficient matcher ([`SlurmFile::compile`] →
//! [`ExceptionSet`]), and applies it over the `ripki-payload` currency
//! **per epoch and delta-aware**: [`ExceptionSet::apply`] maps a whole
//! [`PayloadUpdate`] — snapshot *and* delta — so exceptions compose
//! with `VrpDelta` streaming without forcing downstream hops into
//! snapshot rebuilds. The governing algebra is commutation:
//!
//! ```text
//! excepted(base).apply(map_delta(d))  ==  excepted(base.apply(d))
//! ```
//!
//! BGPsec filters and assertions are parsed but ignored (the simulation
//! does not model BGPsec); ignoring them is surfaced through
//! [`SlurmFile::warnings`], never silently.

use ripki_bgp::rov::VrpTriple;
use ripki_net::{Asn, IpPrefix};
use ripki_payload::{PayloadUpdate, VrpDelta, VrpPayload};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A SLURM document that cannot be used, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlurmError(pub String);

impl fmt::Display for SlurmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slurm: {}", self.0)
    }
}

impl std::error::Error for SlurmError {}

fn err(message: impl Into<String>) -> SlurmError {
    SlurmError(message.into())
}

/// One RFC 8416 §3.3.1 prefix filter: drop every VRP whose prefix is
/// equal to or covered by `prefix` (when present) and whose origin
/// equals `asn` (when present). At least one of the two is required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixFilter {
    /// Covering prefix to match VRPs against, if any.
    pub prefix: Option<IpPrefix>,
    /// Origin ASN to match VRPs against, if any.
    pub asn: Option<Asn>,
    /// Operator-facing explanation from the file, if any.
    pub comment: Option<String>,
}

impl PrefixFilter {
    /// Whether this filter removes `vrp` (RFC 8416 §3.3.1: every
    /// present member must match).
    pub fn matches(&self, vrp: &VrpTriple) -> bool {
        if let Some(prefix) = &self.prefix {
            if !prefix.covers(&vrp.prefix) {
                return false;
            }
        }
        if let Some(asn) = self.asn {
            if asn != vrp.asn {
                return false;
            }
        }
        true
    }
}

/// One RFC 8416 §3.4.1 prefix assertion: a VRP the operator adds
/// locally, present in the excepted set at every epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixAssertion {
    /// Asserted prefix.
    pub prefix: IpPrefix,
    /// Asserted origin.
    pub asn: Asn,
    /// Maximum announcement length; defaults to the prefix length.
    pub max_length: Option<u8>,
    /// Operator-facing explanation from the file, if any.
    pub comment: Option<String>,
}

impl PrefixAssertion {
    /// The VRP this assertion contributes.
    pub fn vrp(&self) -> VrpTriple {
        VrpTriple {
            prefix: self.prefix,
            max_length: self.max_length.unwrap_or_else(|| self.prefix.len()),
            asn: self.asn,
        }
    }
}

/// A parsed and validated RFC 8416 SLURM document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlurmFile {
    /// `validationOutputFilters.prefixFilters`, in file order.
    pub filters: Vec<PrefixFilter>,
    /// `locallyAddedAssertions.prefixAssertions`, in file order.
    pub assertions: Vec<PrefixAssertion>,
    /// Non-fatal findings (ignored BGPsec sections). The caller decides
    /// where these surface; library code never prints.
    pub warnings: Vec<String>,
}

impl SlurmFile {
    /// Parse an RFC 8416 SLURM JSON document.
    ///
    /// `slurmVersion` must be 1; prefix filters need at least one of
    /// `prefix`/`asn`; assertions need both `prefix` and `asn` and a
    /// `maxPrefixLength` (when given) within `[len(prefix), family
    /// bits]`. `bgpsecFilters`/`bgpsecAssertions` are ignored with a
    /// warning. Unknown members are ignored, malformed ones are errors —
    /// a typo in an operator's exception file must never silently
    /// change which routes get dropped.
    pub fn parse(text: &str) -> Result<SlurmFile, SlurmError> {
        let root: serde_json::Value =
            serde_json::from_str(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let field = |v: &serde_json::Value, key: &str| -> Option<serde_json::Value> {
            v.as_object().and_then(|m| m.get(key)).cloned()
        };
        root.as_object()
            .ok_or_else(|| err("top level must be an object"))?;
        let version = field(&root, "slurmVersion")
            .and_then(|v| v.as_u128())
            .ok_or_else(|| err("missing slurmVersion"))?;
        if version != 1 {
            return Err(err(format!(
                "unsupported slurmVersion {version} (expected 1)"
            )));
        }
        let mut file = SlurmFile::default();
        let section =
            |v: &serde_json::Value, name: &str| -> Result<Vec<serde_json::Value>, SlurmError> {
                match field(v, name) {
                    None => Ok(Vec::new()),
                    Some(arr) => arr
                        .as_array()
                        .map(<[serde_json::Value]>::to_vec)
                        .ok_or_else(|| err(format!("{name} must be an array"))),
                }
            };
        if let Some(filters) = field(&root, "validationOutputFilters") {
            for (i, entry) in section(&filters, "prefixFilters")?.iter().enumerate() {
                file.filters.push(parse_filter(entry, i)?);
            }
            let bgpsec = section(&filters, "bgpsecFilters")?;
            if !bgpsec.is_empty() {
                file.warnings.push(format!(
                    "ignoring {} bgpsecFilters (BGPsec is not modeled)",
                    bgpsec.len()
                ));
            }
        }
        if let Some(assertions) = field(&root, "locallyAddedAssertions") {
            for (i, entry) in section(&assertions, "prefixAssertions")?.iter().enumerate() {
                file.assertions.push(parse_assertion(entry, i)?);
            }
            let bgpsec = section(&assertions, "bgpsecAssertions")?;
            if !bgpsec.is_empty() {
                file.warnings.push(format!(
                    "ignoring {} bgpsecAssertions (BGPsec is not modeled)",
                    bgpsec.len()
                ));
            }
        }
        Ok(file)
    }

    /// Read and parse a SLURM file from disk.
    pub fn load(path: &std::path::Path) -> Result<SlurmFile, SlurmError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
        SlurmFile::parse(&text)
    }

    /// Compile into the matcher applied on the payload path.
    pub fn compile(&self) -> ExceptionSet {
        let mut asn_filters = BTreeSet::new();
        let mut prefix_rules = Vec::new();
        for filter in &self.filters {
            match (filter.prefix, filter.asn) {
                // Validated at parse time: a filter carries at least
                // one of prefix/asn.
                (None, Some(asn)) => {
                    asn_filters.insert(asn);
                }
                (Some(prefix), asn) => prefix_rules.push((prefix, asn)),
                (None, None) => {}
            }
        }
        ExceptionSet {
            asn_filters,
            prefix_rules,
            asserted: Arc::new(self.assertions.iter().map(PrefixAssertion::vrp).collect()),
        }
    }
}

/// The compiled exception matcher: which VRPs the local operator drops
/// and which they add. Cheap to clone (the assertion set is shared).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExceptionSet {
    /// Filters that match on ASN alone: one set lookup per VRP.
    asn_filters: BTreeSet<Asn>,
    /// Filters that match on a covering prefix (optionally AND an ASN).
    prefix_rules: Vec<(IpPrefix, Option<Asn>)>,
    /// VRPs asserted locally — present in every excepted epoch.
    asserted: Arc<BTreeSet<VrpTriple>>,
}

/// What applying an [`ExceptionSet`] to one payload epoch did, for
/// `/status` and `/metrics` surfacing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlurmStats {
    /// VRPs the filters removed from this epoch's set.
    pub filtered: usize,
    /// Asserted VRPs added (not already present after filtering).
    pub asserted: usize,
}

impl ExceptionSet {
    /// An exception set that changes nothing.
    pub fn empty() -> ExceptionSet {
        ExceptionSet::default()
    }

    /// Whether this set neither filters nor asserts anything.
    pub fn is_empty(&self) -> bool {
        self.asn_filters.is_empty() && self.prefix_rules.is_empty() && self.asserted.is_empty()
    }

    /// Number of compiled filter rules.
    pub fn filter_rule_count(&self) -> usize {
        self.asn_filters.len() + self.prefix_rules.len()
    }

    /// Number of locally asserted VRPs.
    pub fn assertion_count(&self) -> usize {
        self.asserted.len()
    }

    /// The locally asserted VRPs.
    pub fn asserted(&self) -> &BTreeSet<VrpTriple> {
        &self.asserted
    }

    /// Whether the filters drop `vrp` from the validated set.
    pub fn filters_out(&self, vrp: &VrpTriple) -> bool {
        self.asn_filters.contains(&vrp.asn)
            || self
                .prefix_rules
                .iter()
                .any(|(prefix, asn)| prefix.covers(&vrp.prefix) && asn.is_none_or(|a| a == vrp.asn))
    }

    /// The excepted set at `payload`'s epoch: filters applied, then
    /// assertions added (assertions are local truth — they are not
    /// themselves subject to the filters, per RFC 8416 §4).
    pub fn excepted(&self, payload: &VrpPayload) -> VrpPayload {
        self.excepted_with_stats(payload).0
    }

    /// [`ExceptionSet::excepted`], also reporting what changed.
    pub fn excepted_with_stats(&self, payload: &VrpPayload) -> (VrpPayload, SlurmStats) {
        let mut stats = SlurmStats::default();
        let mut vrps: BTreeSet<VrpTriple> = payload
            .vrps()
            .iter()
            .filter(|vrp| {
                let keep = !self.filters_out(vrp);
                if !keep {
                    stats.filtered += 1;
                }
                keep
            })
            .copied()
            .collect();
        for vrp in self.asserted.iter() {
            if vrps.insert(*vrp) {
                stats.asserted += 1;
            }
        }
        (VrpPayload::new(payload.epoch(), vrps), stats)
    }

    /// Map a delta through the exceptions so it chains between
    /// *excepted* epochs: filtered VRPs never enter the excepted set
    /// (drop their announcements and withdrawals), asserted VRPs never
    /// leave it (drop their withdrawals; announcements are redundant).
    /// This is the half that makes exceptions compose with streaming —
    /// `excepted(base).apply(map_delta(d)) == excepted(base.apply(d))`
    /// (the commutation proptest in `tests/commute_prop.rs`).
    pub fn map_delta(&self, delta: &VrpDelta) -> VrpDelta {
        // The R5 bargain for this blessed module: the epochs below are
        // copied verbatim, so forward motion must be re-asserted here
        // rather than inherited from a constructor.
        assert!(
            delta.to_epoch > delta.from_epoch,
            "slurm can only map forward deltas ({} -> {})",
            delta.from_epoch,
            delta.to_epoch,
        );
        let keep = |vrp: &&VrpTriple| !self.filters_out(vrp) && !self.asserted.contains(vrp);
        VrpDelta {
            from_epoch: delta.from_epoch,
            to_epoch: delta.to_epoch,
            announced: delta.announced.iter().filter(keep).copied().collect(),
            withdrawn: delta.withdrawn.iter().filter(keep).copied().collect(),
        }
    }

    /// Apply the exceptions to a whole fabric update: the payload is
    /// re-excepted at its epoch and the delta (when present) is mapped
    /// so it still chains — downstream hops keep streaming deltas, no
    /// snapshot rebuild.
    pub fn apply(&self, update: &PayloadUpdate) -> PayloadUpdate {
        self.apply_with_stats(update).0
    }

    /// [`ExceptionSet::apply`], also reporting what changed.
    pub fn apply_with_stats(&self, update: &PayloadUpdate) -> (PayloadUpdate, SlurmStats) {
        let (payload, stats) = self.excepted_with_stats(&update.payload);
        let update = PayloadUpdate {
            payload,
            delta: update.delta.as_ref().map(|d| self.map_delta(d)),
        };
        (update, stats)
    }
}

/// What feeding one source update through a [`SlurmApplier`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// The excepted update to publish downstream.
    pub update: PayloadUpdate,
    /// True when the source delta chained and the output stayed
    /// incremental (no snapshot rebuild).
    pub incremental: bool,
    /// True when a present-but-stale delta forced a snapshot re-sync
    /// (counted in [`SlurmApplier::resyncs`]).
    pub resync: bool,
}

/// A stateful exception applier for fabric hops: holds the compiled
/// exceptions, the last excepted output, and the epoch offset
/// introduced by hot reloads.
///
/// Two invariants make it delta-aware end to end:
///
/// - A source delta that chains is *mapped*, not re-excepted: the next
///   output is `last_out.apply(map_delta(d))` — O(|delta|), correct by
///   the commutation law.
/// - A hot [`SlurmApplier::reload`] publishes a **new epoch** without a
///   new source epoch by bumping a constant offset added to every
///   source epoch from then on, so later source deltas still chain
///   downstream instead of degenerating into permanent snapshot mode.
///
/// A source update whose delta does *not* chain (stale base after a
/// missed epoch — e.g. the upstream unit died and resumed mid-stream)
/// triggers an explicit snapshot re-sync, counted, never a silent skip.
#[derive(Debug, Clone, Default)]
pub struct SlurmApplier {
    exceptions: ExceptionSet,
    /// Epochs added on top of the source epoch space; +1 per reload.
    offset: u64,
    /// Last raw source payload (re-excepted on reload).
    last_raw: Option<VrpPayload>,
    /// Last excepted output (the delta base).
    last_out: Option<VrpPayload>,
    stats: SlurmStats,
    resyncs: u64,
}

impl SlurmApplier {
    /// Start applying `exceptions` with no payload seen yet.
    pub fn new(exceptions: ExceptionSet) -> SlurmApplier {
        SlurmApplier {
            exceptions,
            ..SlurmApplier::default()
        }
    }

    /// The currently active exception set.
    pub fn exceptions(&self) -> &ExceptionSet {
        &self.exceptions
    }

    /// What the exceptions did to the current epoch's set.
    pub fn stats(&self) -> SlurmStats {
        self.stats
    }

    /// How many stale deltas forced a snapshot re-sync so far.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// The last excepted output, if any epoch has been ingested.
    pub fn last_out(&self) -> Option<&VrpPayload> {
        self.last_out.as_ref()
    }

    /// Feed one source update through the exceptions. Returns `None`
    /// when the update does not advance the output epoch.
    pub fn ingest(&mut self, source: &PayloadUpdate) -> Option<AppliedUpdate> {
        let out_epoch = source.payload.epoch() + self.offset;
        if self
            .last_out
            .as_ref()
            .is_some_and(|prev| prev.epoch() >= out_epoch)
        {
            return None;
        }
        // Fast path: the source delta chains from our held base (in
        // shifted epoch space) — map it and apply, O(|delta|).
        if let (Some(prev), Some(delta)) = (&self.last_out, &source.delta) {
            if delta.from_epoch + self.offset == prev.epoch() {
                let mapped = shift_delta(self.exceptions.map_delta(delta), self.offset);
                let next = prev.apply(&mapped)?;
                self.track_delta(delta);
                self.last_raw = Some(source.payload.clone());
                self.last_out = Some(next.clone());
                return Some(AppliedUpdate {
                    update: PayloadUpdate {
                        payload: next,
                        delta: Some(mapped),
                    },
                    incremental: true,
                    resync: false,
                });
            }
        }
        // Snapshot path: first epoch, delta-less source, or a stale
        // base after a missed epoch. The last case is the counted
        // re-sync; all of them still hand downstream a diff delta when
        // we have a base, so *they* stay incremental.
        let resync = self.last_out.is_some() && source.delta.is_some();
        if resync {
            self.resyncs += 1;
        }
        let (excepted, stats) = self.exceptions.excepted_with_stats(&source.payload);
        let out = VrpPayload::from_shared(out_epoch, excepted.shared_vrps());
        let update = match &self.last_out {
            Some(prev) => PayloadUpdate::from_previous(prev, out.clone()),
            None => PayloadUpdate::snapshot(out.clone()),
        };
        self.stats = stats;
        self.last_raw = Some(source.payload.clone());
        self.last_out = Some(out);
        Some(AppliedUpdate {
            update,
            incremental: false,
            resync,
        })
    }

    /// Swap in a new exception set (hot reload). When a base payload
    /// exists, re-excepts it under the new rules and returns the update
    /// publishing it at a **new** epoch (offset bumped so future source
    /// deltas keep chaining). Returns `None` before the first ingest.
    pub fn reload(&mut self, exceptions: ExceptionSet) -> Option<AppliedUpdate> {
        self.exceptions = exceptions;
        let raw = self.last_raw.clone()?;
        self.offset += 1;
        let (excepted, stats) = self.exceptions.excepted_with_stats(&raw);
        let out = VrpPayload::from_shared(raw.epoch() + self.offset, excepted.shared_vrps());
        let update = match &self.last_out {
            Some(prev) => PayloadUpdate::from_previous(prev, out.clone()),
            None => PayloadUpdate::snapshot(out.clone()),
        };
        self.stats = stats;
        self.last_out = Some(out);
        Some(AppliedUpdate {
            update,
            incremental: false,
            resync: false,
        })
    }

    /// Update the per-epoch stats from an exact raw delta: filtered
    /// VRPs entering/leaving the raw set move the filtered count;
    /// asserted VRPs gaining/losing raw backing move the added count.
    fn track_delta(&mut self, delta: &VrpDelta) {
        for vrp in &delta.announced {
            if self.exceptions.filters_out(vrp) {
                self.stats.filtered += 1;
            } else if self.exceptions.asserted.contains(vrp) {
                self.stats.asserted = self.stats.asserted.saturating_sub(1);
            }
        }
        for vrp in &delta.withdrawn {
            if self.exceptions.filters_out(vrp) {
                self.stats.filtered = self.stats.filtered.saturating_sub(1);
            } else if self.exceptions.asserted.contains(vrp) {
                self.stats.asserted += 1;
            }
        }
    }
}

/// Shift a delta into the reload-offset epoch space, preserving its
/// contents verbatim.
fn shift_delta(delta: VrpDelta, offset: u64) -> VrpDelta {
    VrpDelta {
        from_epoch: delta.from_epoch + offset,
        to_epoch: delta.to_epoch + offset,
        announced: delta.announced,
        withdrawn: delta.withdrawn,
    }
}

impl fmt::Display for ExceptionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} filter rules, {} assertions",
            self.filter_rule_count(),
            self.assertion_count()
        )
    }
}

fn parse_prefix(value: &serde_json::Value, what: &str) -> Result<IpPrefix, SlurmError> {
    let text = value
        .as_str()
        .ok_or_else(|| err(format!("{what}: prefix must be a string")))?;
    text.parse()
        .map_err(|e| err(format!("{what}: prefix {text:?}: {e}")))
}

fn parse_asn(value: &serde_json::Value, what: &str) -> Result<Asn, SlurmError> {
    // RFC 8416 carries ASNs as JSON numbers; accept the "AS64496"
    // string spelling too, since operators hand-write these files.
    if let Some(n) = value.as_u128() {
        let n = u32::try_from(n).map_err(|_| err(format!("{what}: asn {n} out of range")))?;
        return Ok(Asn::new(n));
    }
    let text = value
        .as_str()
        .ok_or_else(|| err(format!("{what}: asn must be a number or string")))?;
    text.parse()
        .map_err(|e| err(format!("{what}: asn {text:?}: {e}")))
}

fn parse_comment(entry: &serde_json::Value) -> Option<String> {
    entry
        .as_object()
        .and_then(|m| m.get("comment"))
        .and_then(|v| v.as_str().map(str::to_string))
}

fn parse_filter(entry: &serde_json::Value, index: usize) -> Result<PrefixFilter, SlurmError> {
    let what = format!("prefixFilters[{index}]");
    let map = entry
        .as_object()
        .ok_or_else(|| err(format!("{what}: must be an object")))?;
    let prefix = match map.get("prefix") {
        Some(v) => Some(parse_prefix(v, &what)?),
        None => None,
    };
    let asn = match map.get("asn") {
        Some(v) => Some(parse_asn(v, &what)?),
        None => None,
    };
    if prefix.is_none() && asn.is_none() {
        return Err(err(format!("{what}: needs at least one of prefix/asn")));
    }
    Ok(PrefixFilter {
        prefix,
        asn,
        comment: parse_comment(entry),
    })
}

fn parse_assertion(entry: &serde_json::Value, index: usize) -> Result<PrefixAssertion, SlurmError> {
    let what = format!("prefixAssertions[{index}]");
    let map = entry
        .as_object()
        .ok_or_else(|| err(format!("{what}: must be an object")))?;
    let prefix = parse_prefix(
        map.get("prefix")
            .ok_or_else(|| err(format!("{what}: missing prefix")))?,
        &what,
    )?;
    let asn = parse_asn(
        map.get("asn")
            .ok_or_else(|| err(format!("{what}: missing asn")))?,
        &what,
    )?;
    let max_length = match map.get("maxPrefixLength") {
        None => None,
        Some(v) => {
            let n = v
                .as_u128()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| err(format!("{what}: maxPrefixLength must be a small number")))?;
            let family_bits = match prefix {
                IpPrefix::V4(_) => 32,
                IpPrefix::V6(_) => 128,
            };
            if n < prefix.len() || n > family_bits {
                return Err(err(format!(
                    "{what}: maxPrefixLength {n} outside [{}, {family_bits}]",
                    prefix.len()
                )));
            }
            Some(n)
        }
    };
    Ok(PrefixAssertion {
        prefix,
        asn,
        max_length,
        comment: parse_comment(entry),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_payload::VrpDelta;

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().expect("test prefix"),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    fn exceptions(text: &str) -> ExceptionSet {
        SlurmFile::parse(text).expect("parse").compile()
    }

    const FILTER_AND_ASSERT: &str = r#"{
        "slurmVersion": 1,
        "validationOutputFilters": {
            "prefixFilters": [
                { "prefix": "10.0.0.0/8", "comment": "drop everything under 10/8" },
                { "asn": 64511 },
                { "prefix": "192.0.2.0/24", "asn": 64500 }
            ]
        },
        "locallyAddedAssertions": {
            "prefixAssertions": [
                { "prefix": "198.51.100.0/24", "asn": 64501 },
                { "prefix": "2001:db8::/32", "asn": 64502, "maxPrefixLength": 48 }
            ]
        }
    }"#;

    #[test]
    fn filter_semantics_follow_rfc8416() {
        let ex = exceptions(FILTER_AND_ASSERT);
        // Covered-by on the prefix-only rule, including more specifics.
        assert!(ex.filters_out(&vrp("10.0.0.0/8", 8, 1)));
        assert!(ex.filters_out(&vrp("10.2.0.0/16", 16, 1)));
        assert!(!ex.filters_out(&vrp("11.0.0.0/8", 8, 1)));
        // ASN-only rule hits every prefix with that origin.
        assert!(ex.filters_out(&vrp("203.0.113.0/24", 24, 64511)));
        // Both-member rule needs both to match.
        assert!(ex.filters_out(&vrp("192.0.2.0/24", 24, 64500)));
        assert!(!ex.filters_out(&vrp("192.0.2.0/24", 24, 64501)));
        assert_eq!(ex.filter_rule_count(), 3);
        assert_eq!(ex.assertion_count(), 2);
    }

    #[test]
    fn assertion_max_length_defaults_to_prefix_length() {
        let ex = exceptions(FILTER_AND_ASSERT);
        assert!(ex.asserted().contains(&vrp("198.51.100.0/24", 24, 64501)));
        assert!(ex.asserted().contains(&vrp("2001:db8::/32", 48, 64502)));
    }

    #[test]
    fn excepted_filters_then_asserts_preserving_epoch() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let base = VrpPayload::new(
            7,
            [vrp("10.1.0.0/16", 16, 2), vrp("203.0.113.0/24", 24, 64499)],
        );
        let (excepted, stats) = ex.excepted_with_stats(&base);
        assert_eq!(excepted.epoch(), 7);
        assert_eq!(
            stats,
            SlurmStats {
                filtered: 1,
                asserted: 2
            }
        );
        assert!(!excepted.vrps().contains(&vrp("10.1.0.0/16", 16, 2)));
        assert!(excepted.vrps().contains(&vrp("203.0.113.0/24", 24, 64499)));
        assert!(excepted.vrps().contains(&vrp("198.51.100.0/24", 24, 64501)));
        assert_eq!(excepted.len(), 3);
    }

    #[test]
    fn mapped_delta_chains_between_excepted_epochs() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let base = VrpPayload::new(3, [vrp("20.0.0.0/8", 8, 3)]);
        let delta = VrpDelta::new(
            3,
            4,
            // One clean announcement, one filtered, one already asserted.
            vec![
                vrp("21.0.0.0/8", 8, 4),
                vrp("10.9.0.0/16", 16, 5),
                vrp("198.51.100.0/24", 24, 64501),
            ],
            // Withdrawing an asserted VRP must not remove it locally.
            vec![vrp("20.0.0.0/8", 8, 3), vrp("198.51.100.0/24", 24, 64501)],
        );
        let mapped = ex.map_delta(&delta);
        assert_eq!(mapped.announced, vec![vrp("21.0.0.0/8", 8, 4)]);
        assert_eq!(mapped.withdrawn, vec![vrp("20.0.0.0/8", 8, 3)]);
        let left = ex.excepted(&base).apply(&mapped).expect("chains");
        let right = ex.excepted(&base.apply(&delta).expect("chains"));
        assert_eq!(left, right);
    }

    #[test]
    fn apply_maps_both_halves_of_an_update() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let prev = VrpPayload::new(1, [vrp("20.0.0.0/8", 8, 3), vrp("10.0.0.0/8", 8, 9)]);
        let next = VrpPayload::new(2, [vrp("20.0.0.0/8", 8, 3), vrp("30.0.0.0/8", 8, 4)]);
        let update = PayloadUpdate::from_previous(&prev, next);
        let out = ex.apply(&update);
        assert_eq!(out.epoch(), 2);
        let delta = out.delta.expect("delta preserved");
        // Withdrawal of the filtered 10/8 VRP is dropped — it was never
        // in the excepted set.
        assert_eq!(delta.announced, vec![vrp("30.0.0.0/8", 8, 4)]);
        assert!(delta.withdrawn.is_empty());
        assert_eq!(
            ex.excepted(&prev).apply(&delta).expect("chains"),
            out.payload
        );
    }

    #[test]
    fn bgpsec_sections_warn_not_fail() {
        let file = SlurmFile::parse(
            r#"{
                "slurmVersion": 1,
                "validationOutputFilters": {
                    "bgpsecFilters": [{ "asn": 64496 }]
                },
                "locallyAddedAssertions": {
                    "bgpsecAssertions": [{ "asn": 64496, "SKI": "ab", "routerPublicKey": "cd" }]
                }
            }"#,
        )
        .expect("parse");
        assert_eq!(file.warnings.len(), 2);
        assert!(file.warnings[0].contains("bgpsecFilters"));
        assert!(file.warnings[1].contains("bgpsecAssertions"));
        assert!(file.compile().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[]",
            r#"{"slurmVersion": 2}"#,
            r#"{"validationOutputFilters": {}}"#,
            r#"{"slurmVersion": 1, "validationOutputFilters": {"prefixFilters": [{}]}}"#,
            r#"{"slurmVersion": 1, "validationOutputFilters": {"prefixFilters": [{"prefix": "bogus"}]}}"#,
            r#"{"slurmVersion": 1, "validationOutputFilters": {"prefixFilters": 5}}"#,
            r#"{"slurmVersion": 1, "locallyAddedAssertions": {"prefixAssertions": [{"prefix": "10.0.0.0/8"}]}}"#,
            r#"{"slurmVersion": 1, "locallyAddedAssertions": {"prefixAssertions": [{"prefix": "10.0.0.0/8", "asn": 1, "maxPrefixLength": 4}]}}"#,
            r#"{"slurmVersion": 1, "locallyAddedAssertions": {"prefixAssertions": [{"prefix": "10.0.0.0/8", "asn": 1, "maxPrefixLength": 40}]}}"#,
        ] {
            assert!(SlurmFile::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_exception_set_is_identity() {
        let ex = ExceptionSet::empty();
        assert!(ex.is_empty());
        let base = VrpPayload::new(5, [vrp("10.0.0.0/8", 8, 1)]);
        let update = PayloadUpdate::snapshot(base.clone());
        assert_eq!(ex.apply(&update), update);
    }

    #[test]
    fn applier_stays_incremental_on_chained_deltas() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let mut applier = SlurmApplier::new(ex.clone());
        let base = VrpPayload::new(1, [vrp("20.0.0.0/8", 8, 3), vrp("10.0.0.0/8", 8, 9)]);
        let first = applier
            .ingest(&PayloadUpdate::snapshot(base.clone()))
            .expect("first epoch");
        assert!(!first.incremental);
        assert!(!first.resync);
        assert_eq!(first.update.payload, ex.excepted(&base));
        let next = VrpPayload::new(2, [vrp("20.0.0.0/8", 8, 3), vrp("30.0.0.0/8", 8, 4)]);
        let out = applier
            .ingest(&PayloadUpdate::from_previous(&base, next.clone()))
            .expect("second epoch");
        assert!(out.incremental, "chained delta must not rebuild");
        assert_eq!(out.update.payload, ex.excepted(&next), "commutation");
        assert_eq!(applier.resyncs(), 0);
        // Stats tracked through the delta path: 10/8 left the raw set.
        assert_eq!(applier.stats().filtered, 0);
        assert_eq!(applier.stats().asserted, 2);
    }

    #[test]
    fn applier_counts_snapshot_resyncs_on_stale_deltas() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let mut applier = SlurmApplier::new(ex.clone());
        let base = VrpPayload::new(1, [vrp("20.0.0.0/8", 8, 3)]);
        applier
            .ingest(&PayloadUpdate::snapshot(base))
            .expect("first");
        // The upstream died during epoch 2 and resumed at 3: its delta
        // chains 2 -> 3, our base is epoch 1.
        let resumed = VrpPayload::new(3, [vrp("21.0.0.0/8", 8, 4)]);
        let stale_delta = VrpDelta::new(2, 3, vec![vrp("21.0.0.0/8", 8, 4)], Vec::new());
        let out = applier
            .ingest(&PayloadUpdate {
                payload: resumed.clone(),
                delta: Some(stale_delta),
            })
            .expect("resync publishes");
        assert!(out.resync, "stale delta must be a counted re-sync");
        assert!(!out.incremental);
        assert_eq!(applier.resyncs(), 1);
        assert_eq!(out.update.payload, ex.excepted(&resumed));
        // Downstream still gets a chaining diff, not a bare snapshot.
        let delta = out.update.delta.expect("diff attached");
        assert_eq!(delta.from_epoch, 1);
        assert_eq!(delta.to_epoch, 3);
    }

    #[test]
    fn applier_reload_publishes_a_new_epoch_and_keeps_chaining() {
        let ex = exceptions(FILTER_AND_ASSERT);
        let mut applier = SlurmApplier::new(ex);
        let base = VrpPayload::new(5, [vrp("20.0.0.0/8", 8, 3), vrp("10.0.0.0/8", 8, 9)]);
        applier
            .ingest(&PayloadUpdate::snapshot(base.clone()))
            .expect("first");
        // Reload with an empty file: the 10/8 VRP comes back, the
        // assertions go away — at a *new* epoch.
        let out = applier
            .reload(ExceptionSet::empty())
            .expect("reload republishes");
        assert_eq!(out.update.epoch(), 6, "reload bumps the epoch");
        assert_eq!(out.update.payload.vrps(), base.vrps());
        let delta = out.update.delta.expect("reload carries a diff");
        assert_eq!((delta.from_epoch, delta.to_epoch), (5, 6));
        // A later source delta (raw 5 -> 6) still chains through the
        // offset: published as 6 -> 7.
        let next = VrpPayload::new(6, [vrp("20.0.0.0/8", 8, 3)]);
        let out = applier
            .ingest(&PayloadUpdate::from_previous(&base, next))
            .expect("post-reload epoch");
        assert!(out.incremental, "offset must keep source deltas chaining");
        assert_eq!(out.update.epoch(), 7);
        assert_eq!(applier.resyncs(), 0);
    }

    #[test]
    fn applier_ignores_stale_source_epochs() {
        let mut applier = SlurmApplier::new(ExceptionSet::empty());
        let base = VrpPayload::new(4, [vrp("20.0.0.0/8", 8, 3)]);
        applier
            .ingest(&PayloadUpdate::snapshot(base.clone()))
            .expect("first");
        assert!(applier.ingest(&PayloadUpdate::snapshot(base)).is_none());
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn mapping_a_backwards_delta_panics() {
        let mut delta = VrpDelta::new(1, 2, Vec::new(), Vec::new());
        delta.to_epoch = 1;
        let _ = ExceptionSet::empty().map_delta(&delta);
    }
}
