//! Property-based tests for `ripki-crypto`.

use proptest::prelude::*;
use ripki_crypto::schnorr::{mul_mod_p, pow_mod_p, SecretKey, Signature, P, Q};
use ripki_crypto::sha256::{sha256, Sha256};
use ripki_crypto::tlv::{Reader, Writer};

proptest! {
    /// Incremental hashing equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..600),
        splits in prop::collection::vec(0usize..600, 0..6),
    ) {
        let want = sha256(&data);
        let mut points: Vec<usize> =
            splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Multiplication mod p is commutative, associative, and has identity.
    #[test]
    fn field_mul_laws(a in 0u128..P, b in 0u128..P, c in 0u128..P) {
        prop_assert_eq!(mul_mod_p(a, b), mul_mod_p(b, a));
        prop_assert_eq!(
            mul_mod_p(mul_mod_p(a, b), c),
            mul_mod_p(a, mul_mod_p(b, c))
        );
        prop_assert_eq!(mul_mod_p(a, 1), a % P);
    }

    /// Exponent laws: g^(a+b) = g^a · g^b.
    #[test]
    fn pow_exponent_additivity(a in 0u128..1_000_000_000, b in 0u128..1_000_000_000) {
        let g = 7u128;
        prop_assert_eq!(
            pow_mod_p(g, a + b),
            mul_mod_p(pow_mod_p(g, a), pow_mod_p(g, b))
        );
    }

    /// Fermat: nonzero a has a^(p-1) = 1.
    #[test]
    fn fermat(a in 1u128..P) {
        prop_assert_eq!(pow_mod_p(a, Q), 1);
    }

    /// Sign/verify succeeds for arbitrary seeds and messages; verification
    /// fails whenever a single message byte is flipped.
    #[test]
    fn sign_verify_and_tamper(
        seed in prop::collection::vec(any::<u8>(), 1..32),
        mut msg in prop::collection::vec(any::<u8>(), 1..128),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let sk = SecretKey::from_seed(&seed);
        let pk = sk.public_key();
        let sig = sk.sign(&msg);
        prop_assert!(pk.verify(&msg, &sig).is_ok());
        let i = flip_at % msg.len();
        msg[i] ^= 1 << flip_bit;
        prop_assert!(pk.verify(&msg, &sig).is_err());
    }

    /// Signature byte encoding round-trips.
    #[test]
    fn signature_bytes_roundtrip(e in any::<u128>(), s in any::<u128>()) {
        let sig = Signature { e, s };
        prop_assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    /// TLV: a sequence of (tag, bytes) writes reads back identically.
    #[test]
    fn tlv_roundtrip(
        fields in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)),
            0..12,
        )
    ) {
        let mut w = Writer::new();
        for (tag, bytes) in &fields {
            w.put_bytes(*tag, bytes);
        }
        let encoded = w.finish();
        let mut r = Reader::new(&encoded);
        for (tag, bytes) in &fields {
            let got = r.get_bytes(*tag).unwrap();
            prop_assert_eq!(got, bytes.as_slice());
        }
        prop_assert!(r.finish().is_ok());
    }

    /// TLV truncation at any point either errors or (at a field boundary)
    /// yields a strict prefix of the fields — never garbage.
    #[test]
    fn tlv_truncation_never_misparses(
        fields in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)),
            1..6,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut w = Writer::new();
        for (tag, bytes) in &fields {
            w.put_bytes(*tag, bytes);
        }
        let encoded = w.finish();
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        let mut r = Reader::new(&encoded[..cut]);
        let mut ok_fields = 0;
        for (tag, bytes) in &fields {
            match r.get_bytes(*tag) {
                Ok(got) => {
                    prop_assert_eq!(got, bytes.as_slice());
                    ok_fields += 1;
                }
                Err(_) => break,
            }
        }
        prop_assert!(ok_fields <= fields.len());
    }
}
