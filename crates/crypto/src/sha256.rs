//! SHA-256, implemented from the FIPS 180-4 specification.
//!
//! Incremental (`Sha256::update`/`finalize`) and one-shot ([`sha256`])
//! interfaces. The implementation favours clarity over speed; it still
//! hashes at hundreds of MB/s, far beyond what manifest validation needs.

use std::fmt;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex representation.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse a 64-char hex string.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// A short 8-hex-digit prefix, for display in reports.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// FIPS 180-4 §4.2.2 round constants: the first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// FIPS 180-4 §5.3.3 initial hash value: the first 32 bits of the
/// fractional parts of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
        self
    }

    /// Produce the digest, consuming the state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // The length bytes must not count toward total_len; bypass update's
        // accounting by compressing directly.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// FIPS 180-4 §6.2.2 compression function.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
///
/// ```
/// use ripki_crypto::sha256;
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 / NESSIE standard vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(sha256(input).to_hex(), *want);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let want = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths around the padding boundary (55/56/64 bytes).
        // Cross-checked against `sha256sum`.
        let known: &[(usize, &str)] = &[
            (
                55,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
        ];
        for (len, want) in known {
            let data = vec![b'a'; *len];
            assert_eq!(sha256(&data).to_hex(), *want, "len {len}");
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(32)), None);
        assert_eq!(d.short().len(), 8);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }
}
