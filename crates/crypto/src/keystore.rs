//! Key identifiers, keypairs, and a process-local key store.
//!
//! Real RPKI certificates embed the subject's public key and reference the
//! issuer by Authority Key Identifier (a hash of the issuer key). We keep
//! the same shape: a [`KeyId`] is the SHA-256 of the public key bytes, and
//! a [`KeyStore`] maps identifiers to public keys so that validators can
//! resolve issuer references (simulating out-of-band TAL distribution for
//! trust anchors).

use crate::schnorr::{PublicKey, SecretKey};
use crate::sha256::{sha256, Digest};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a public key: SHA-256 over its canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub Digest);

impl KeyId {
    /// Compute the identifier of `key`.
    pub fn of(key: &PublicKey) -> KeyId {
        KeyId(sha256(&key.to_bytes()))
    }

    /// Short display form for reports.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{}", self.0.short())
    }
}

/// A secret/public key pair plus its identifier.
#[derive(Debug, Clone)]
pub struct Keypair {
    /// The secret half. Kept accessible: simulations *are* the CA.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
    /// Identifier of the public half.
    pub key_id: KeyId,
}

impl Keypair {
    /// Deterministically derive a keypair from a seed and a label.
    ///
    /// The label keeps independently-seeded actors (trust anchors, CAs,
    /// operators) from colliding even when they share a master seed.
    pub fn derive(master_seed: u64, label: &str) -> Keypair {
        let mut seed = Vec::with_capacity(8 + label.len());
        seed.extend_from_slice(&master_seed.to_be_bytes());
        seed.extend_from_slice(label.as_bytes());
        let secret = SecretKey::from_seed(&seed);
        let public = secret.public_key();
        let key_id = KeyId::of(&public);
        Keypair {
            secret,
            public,
            key_id,
        }
    }
}

/// A registry of known public keys.
#[derive(Debug, Default, Clone)]
pub struct KeyStore {
    keys: HashMap<KeyId, PublicKey>,
}

impl KeyStore {
    /// Empty store.
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Register a public key, returning its identifier.
    pub fn register(&mut self, key: PublicKey) -> KeyId {
        let id = KeyId::of(&key);
        self.keys.insert(id, key);
        id
    }

    /// Look up a key by identifier.
    pub fn get(&self, id: &KeyId) -> Option<&PublicKey> {
        self.keys.get(id)
    }

    /// Whether the store knows `id`.
    pub fn contains(&self, id: &KeyId) -> bool {
        self.keys.contains_key(id)
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let a1 = Keypair::derive(42, "ta/ripe");
        let a2 = Keypair::derive(42, "ta/ripe");
        let b = Keypair::derive(42, "ta/arin");
        let c = Keypair::derive(43, "ta/ripe");
        assert_eq!(a1.key_id, a2.key_id);
        assert_ne!(a1.key_id, b.key_id);
        assert_ne!(a1.key_id, c.key_id);
    }

    #[test]
    fn key_id_matches_public_key_hash() {
        let kp = Keypair::derive(1, "x");
        assert_eq!(kp.key_id, KeyId::of(&kp.public));
        assert_eq!(kp.key_id.short().len(), 8);
    }

    #[test]
    fn store_register_and_lookup() {
        let mut store = KeyStore::new();
        assert!(store.is_empty());
        let kp = Keypair::derive(7, "ca");
        let id = store.register(kp.public);
        assert_eq!(id, kp.key_id);
        assert_eq!(store.get(&id), Some(&kp.public));
        assert!(store.contains(&id));
        assert_eq!(store.len(), 1);
        // Re-registering is idempotent.
        store.register(kp.public);
        assert_eq!(store.len(), 1);
        let other = Keypair::derive(7, "other");
        assert!(!store.contains(&other.key_id));
        assert!(store.get(&other.key_id).is_none());
    }

    #[test]
    fn derived_keys_sign_and_verify() {
        let kp = Keypair::derive(99, "signer");
        let sig = kp.secret.sign(b"hello");
        assert!(kp.public.verify(b"hello", &sig).is_ok());
    }

    #[test]
    fn display_form() {
        let kp = Keypair::derive(1, "d");
        let s = kp.key_id.to_string();
        assert!(s.starts_with("key:"));
        assert_eq!(s.len(), 4 + 8);
    }
}
