//! # ripki-crypto
//!
//! Self-contained cryptographic primitives for the `ripki` workspace.
//!
//! The original RiPKI study validated real RPKI objects: X.509 resource
//! certificates with RSA signatures over DER encodings. This environment
//! has no crypto dependencies, so this crate implements the minimum
//! structurally-faithful replacements from scratch:
//!
//! * [`mod@sha256`] — a complete FIPS 180-4 SHA-256, verified against the NIST
//!   test vectors. Used for object digests (manifests list hashes of
//!   repository objects) and key identifiers.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), used to derive deterministic
//!   per-message nonces for signatures (in the spirit of RFC 6979).
//! * [`tlv`] — a small canonical tag-length-value encoding standing in for
//!   DER. Every signed RPKI object is serialised to TLV bytes and the
//!   signature is computed over those bytes, so tampering with any field
//!   breaks the signature — exactly as with real DER + RSA.
//! * [`schnorr`] — a Schnorr-style signature scheme over the multiplicative
//!   group modulo the Mersenne prime `p = 2^127 - 1`.
//!
//! ## Security disclaimer
//!
//! **The signature scheme is NOT cryptographically secure.** A 127-bit
//! discrete-log group is trivially breakable, and the group order is not
//! prime. It *is* a mathematically real signature scheme: keys are
//! asymmetric, signatures verify only with the right public key, and any
//! bit flip in message or signature causes rejection. That is what the
//! RPKI validator in `ripki-rpki` needs in order for every validation
//! code path (chain building, expiry, revocation, resource containment,
//! manifest hashes, *and* signature checking) to be genuinely exercised.
//!
//! ## What is omitted
//!
//! * No X.509/DER, no ASN.1 — replaced by [`tlv`].
//! * No RSA/ECDSA — replaced by [`schnorr`].
//! * No randomised nonces — signing is deterministic (a feature: the whole
//!   workspace is reproducible from seeds).

pub mod hmac;
pub mod keystore;
pub mod schnorr;
pub mod sha256;
pub mod tlv;

pub use keystore::{KeyId, KeyStore, Keypair};
pub use schnorr::{PublicKey, SecretKey, Signature, SignatureError};
pub use sha256::{sha256, Digest};
