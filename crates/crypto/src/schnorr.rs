//! Schnorr-style signatures over the multiplicative group modulo the
//! Mersenne prime `p = 2^127 - 1`.
//!
//! The scheme:
//!
//! * parameters: `p = 2^127 - 1` (prime), generator `g = 7`,
//!   exponent modulus `q = p - 1` (by Fermat, `a^q ≡ 1 (mod p)` for every
//!   non-zero `a`, which the verifier exploits to avoid inversions);
//! * keys: secret scalar `x ∈ [1, q)`, public `y = g^x mod p`;
//! * sign(msg): nonce `k = HMAC(x, msg) mod q` (deterministic, RFC 6979
//!   style), commitment `r = g^k`, challenge
//!   `e = H(r ‖ y ‖ msg) mod q`, response `s = k + e·x mod q`;
//!   signature is `(e, s)`;
//! * verify: recompute `r' = g^s · y^(q−e)` and accept iff
//!   `H(r' ‖ y ‖ msg) mod q == e`.
//!
//! **Not secure** (see the crate-level disclaimer) — a 127-bit group is
//! toy-sized and `q` is composite — but functionally a real signature
//! scheme: verification fails for any bit flip in the message, signature,
//! or public key, which is all the RPKI validator needs.

use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use std::fmt;

/// The Mersenne prime `2^127 - 1`.
pub const P: u128 = (1u128 << 127) - 1;
/// Group exponent: `p - 1`.
pub const Q: u128 = P - 1;
/// Generator of a large subgroup.
pub const G: u128 = 7;

/// Full 256-bit product of two 128-bit integers, as `(hi, lo)`.
fn widening_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a1, a0) = (a >> 64, a & MASK);
    let (b1, b0) = (b >> 64, b & MASK);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    // middle = lh + hl, may carry one bit into hi.
    let (mid, mid_carry) = lh.overflowing_add(hl);
    let (lo, lo_carry) = ll.overflowing_add(mid << 64);
    let hi = hh
        .wrapping_add(mid >> 64)
        .wrapping_add((mid_carry as u128) << 64)
        .wrapping_add(lo_carry as u128);
    (hi, lo)
}

/// Reduce `hi·2^128 + lo` modulo the Mersenne prime `p`.
///
/// Uses `2^127 ≡ 1 (mod p)`: fold the high bits down twice, then a final
/// conditional subtraction.
fn reduce_p(hi: u128, lo: u128) -> u128 {
    // value = hi·2^128 + lo ≡ 2·hi + (lo >> 127) + (lo & P)  (mod p)
    debug_assert!(hi < 1u128 << 126, "inputs must each be < 2^127");
    let t = 2 * hi + (lo >> 127) + (lo & P);
    let t = (t >> 127) + (t & P);
    if t >= P {
        t - P
    } else {
        t
    }
}

/// `a·b mod p` for `a, b < p`.
pub fn mul_mod_p(a: u128, b: u128) -> u128 {
    let (hi, lo) = widening_mul(a, b);
    reduce_p(hi, lo)
}

/// `base^exp mod p` by square-and-multiply.
pub fn pow_mod_p(base: u128, mut exp: u128) -> u128 {
    let mut result: u128 = 1;
    let mut acc = base % P;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod_p(result, acc);
        }
        acc = mul_mod_p(acc, acc);
        exp >>= 1;
    }
    result
}

/// `(a + b) mod m` without overflow, for `a, b < m`.
fn add_mod(a: u128, b: u128, m: u128) -> u128 {
    if a >= m - b {
        a - (m - b)
    } else {
        a + b
    }
}

/// `a·b mod m` by peasant multiplication, for `a, b < m`. Used only for
/// the handful of scalar multiplications per signature; speed is
/// irrelevant there.
fn mul_mod(a: u128, mut b: u128, m: u128) -> u128 {
    let mut acc = a % m;
    let mut result: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            result = add_mod(result, acc, m);
        }
        acc = add_mod(acc, acc, m);
        b >>= 1;
    }
    result
}

/// Interpret a 32-byte digest as a scalar in `[1, q)`.
fn digest_to_scalar(bytes: &[u8; 32]) -> u128 {
    let mut raw = [0u8; 16];
    raw.copy_from_slice(&bytes[..16]);
    let v = u128::from_be_bytes(raw) % Q;
    if v == 0 {
        1
    } else {
        v
    }
}

/// A secret signing key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    scalar: u128,
}

/// A public verification key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    element: u128,
}

/// A signature: challenge `e` and response `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The challenge scalar.
    pub e: u128,
    /// The response scalar.
    pub s: u128,
}

/// Why a signature failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// Recomputed challenge did not match — message, signature, or key was
    /// wrong or tampered with.
    BadSignature,
    /// Scalars outside their domain (e.g. forged `s ≥ q`).
    MalformedSignature,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::BadSignature => write!(f, "signature verification failed"),
            SignatureError::MalformedSignature => write!(f, "malformed signature"),
        }
    }
}

impl std::error::Error for SignatureError {}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(…)")
    }
}

impl SecretKey {
    /// Derive a secret key deterministically from seed bytes.
    pub fn from_seed(seed: &[u8]) -> SecretKey {
        let mut h = Sha256::new();
        h.update(b"ripki-crypto/keygen/v1").update(seed);
        SecretKey {
            scalar: digest_to_scalar(h.finalize().as_bytes()),
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey {
            element: pow_mod_p(G, self.scalar),
        }
    }

    /// Sign `message` deterministically.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let sk_bytes = self.scalar.to_be_bytes();
        let k = digest_to_scalar(hmac_sha256(&sk_bytes, message).as_bytes());
        let r = pow_mod_p(G, k);
        let e = challenge(r, self.public_key().element, message);
        let s = add_mod(k, mul_mod(e, self.scalar, Q), Q);
        Signature { e, s }
    }
}

/// Challenge hash `H(r ‖ y ‖ msg)` mapped to `[1, q)`.
fn challenge(r: u128, y: u128, message: &[u8]) -> u128 {
    let mut h = Sha256::new();
    h.update(b"ripki-crypto/challenge/v1")
        .update(&r.to_be_bytes())
        .update(&y.to_be_bytes())
        .update(message);
    digest_to_scalar(h.finalize().as_bytes())
}

impl PublicKey {
    /// The raw group element.
    pub fn element(&self) -> u128 {
        self.element
    }

    /// Reconstruct from a raw group element (e.g. decoded from TLV).
    pub fn from_element(element: u128) -> PublicKey {
        PublicKey { element }
    }

    /// Canonical byte encoding (16 bytes, big-endian).
    pub fn to_bytes(&self) -> [u8; 16] {
        self.element.to_be_bytes()
    }

    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        if signature.e == 0
            || signature.e >= Q
            || signature.s >= Q
            || self.element == 0
            || self.element >= P
        {
            return Err(SignatureError::MalformedSignature);
        }
        // r' = g^s · y^(q - e)   (y^q = 1 by Fermat, so y^(q-e) = y^(-e))
        let r = mul_mod_p(
            pow_mod_p(G, signature.s),
            pow_mod_p(self.element, Q - signature.e),
        );
        if challenge(r, self.element, message) == signature.e {
            Ok(())
        } else {
            Err(SignatureError::BadSignature)
        }
    }
}

impl Signature {
    /// Canonical byte encoding (32 bytes: `e` then `s`, big-endian).
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(&self.e.to_be_bytes());
        out[16..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Decode from the 32-byte encoding.
    pub fn from_bytes(bytes: &[u8; 32]) -> Signature {
        let mut e = [0u8; 16];
        let mut s = [0u8; 16];
        e.copy_from_slice(&bytes[..16]);
        s.copy_from_slice(&bytes[16..]);
        Signature {
            e: u128::from_be_bytes(e),
            s: u128::from_be_bytes(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_mul_known_values() {
        assert_eq!(widening_mul(0, 12345), (0, 0));
        assert_eq!(widening_mul(1, u128::MAX), (0, u128::MAX));
        // (2^64)·(2^64) = 2^128 → (1, 0)
        assert_eq!(widening_mul(1 << 64, 1 << 64), (1, 0));
        // (2^127 - 1)^2 = 2^254 - 2^128 + 1
        let (hi, lo) = widening_mul(P, P);
        assert_eq!(hi, (1u128 << 126) - 1);
        assert_eq!(lo, 1);
    }

    #[test]
    fn mul_mod_p_agrees_with_naive_small() {
        for a in [0u128, 1, 2, 7, 12345, P - 1, P - 2] {
            for b in [0u128, 1, 3, 99999, P - 1] {
                let want = naive_mul_mod(a, b, P);
                assert_eq!(mul_mod_p(a, b), want, "{a} * {b}");
            }
        }
    }

    fn naive_mul_mod(a: u128, b: u128, m: u128) -> u128 {
        mul_mod(a, b, m)
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // a^(p-1) ≡ 1 (mod p) — exercises the full pow/mul pipeline.
        for a in [2u128, 7, 123456789, P - 2] {
            assert_eq!(pow_mod_p(a, Q), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(pow_mod_p(G, 0), 1);
        assert_eq!(pow_mod_p(G, 1), G);
        assert_eq!(pow_mod_p(0, 5), 0);
        assert_eq!(pow_mod_p(P, 3), 0); // P ≡ 0
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SecretKey::from_seed(b"trust anchor 1");
        let pk = sk.public_key();
        let msg = b"route origin authorization";
        let sig = sk.sign(msg);
        assert!(pk.verify(msg, &sig).is_ok());
    }

    #[test]
    fn deterministic_signatures() {
        let sk = SecretKey::from_seed(b"seed");
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"n"));
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = SecretKey::from_seed(b"seed");
        let pk = sk.public_key();
        let sig = sk.sign(b"payload");
        assert_eq!(
            pk.verify(b"payloae", &sig),
            Err(SignatureError::BadSignature)
        );
        assert_eq!(pk.verify(b"", &sig), Err(SignatureError::BadSignature));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SecretKey::from_seed(b"seed");
        let pk = sk.public_key();
        let msg = b"payload";
        let sig = sk.sign(msg);
        let bad_e = Signature {
            e: sig.e ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: sig.s ^ 1,
            ..sig
        };
        assert!(pk.verify(msg, &bad_e).is_err());
        assert!(pk.verify(msg, &bad_s).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SecretKey::from_seed(b"one");
        let sk2 = SecretKey::from_seed(b"two");
        let msg = b"msg";
        let sig = sk1.sign(msg);
        assert!(sk2.public_key().verify(msg, &sig).is_err());
    }

    #[test]
    fn malformed_scalars_rejected_without_panic() {
        let sk = SecretKey::from_seed(b"seed");
        let pk = sk.public_key();
        let sig = sk.sign(b"m");
        for bad in [
            Signature { e: 0, s: sig.s },
            Signature { e: Q, s: sig.s },
            Signature { e: sig.e, s: Q },
            Signature {
                e: u128::MAX,
                s: u128::MAX,
            },
        ] {
            assert_eq!(
                pk.verify(b"m", &bad),
                Err(SignatureError::MalformedSignature)
            );
        }
        let zero_pk = PublicKey::from_element(0);
        assert_eq!(
            zero_pk.verify(b"m", &sig),
            Err(SignatureError::MalformedSignature)
        );
    }

    #[test]
    fn signature_byte_roundtrip() {
        let sk = SecretKey::from_seed(b"seed");
        let sig = sk.sign(b"m");
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = SecretKey::from_seed(b"a").public_key();
        let b = SecretKey::from_seed(b"b").public_key();
        assert_ne!(a, b);
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let sk = SecretKey::from_seed(b"hidden");
        assert_eq!(format!("{sk:?}"), "SecretKey(…)");
    }
}
