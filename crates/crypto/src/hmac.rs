//! HMAC-SHA-256 (RFC 2104).
//!
//! Used by [`crate::schnorr`] to derive deterministic per-message signing
//! nonces, in the spirit of RFC 6979 — signatures in this workspace must be
//! reproducible from seeds, so randomised nonces are out.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first (RFC 2104 §2).
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad).update(inner_digest.as_bytes());
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let got = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            got.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let got = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            got.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let got = hmac_sha256(&key, &msg);
        assert_eq!(
            got.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let got = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            got.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let got = hmac_sha256(&key, msg);
        assert_eq!(
            got.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn block_size_key_edge() {
        // Exactly 64-byte key: used as-is, not hashed.
        let key = [0x42u8; 64];
        let a = hmac_sha256(&key, b"msg");
        let b = hmac_sha256(&key, b"msg");
        assert_eq!(a, b);
    }
}
