//! A canonical tag-length-value encoding, standing in for DER.
//!
//! Real RPKI objects are DER-encoded ASN.1; signatures cover the exact
//! byte encoding, so any field change invalidates the signature. This
//! module provides the same property with a far simpler, fully canonical
//! format:
//!
//! ```text
//! element := tag(1 byte) length(4 bytes, big-endian u32) value(length bytes)
//! ```
//!
//! Fixed-width lengths make the encoding trivially canonical: a given
//! value tree has exactly one encoding, so "encode then sign" and
//! "re-encode then verify" agree byte-for-byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Errors produced while reading TLV data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlvError {
    /// Ran out of bytes mid-element.
    Truncated,
    /// The element found does not carry the expected tag.
    UnexpectedTag {
        /// The tag the caller asked for.
        expected: u8,
        /// The tag actually present.
        found: u8,
    },
    /// A fixed-width value had the wrong length.
    BadLength {
        /// Tag of the offending element.
        tag: u8,
        /// The width the tag requires.
        expected: usize,
        /// The width actually present.
        found: usize,
    },
    /// Trailing bytes remained after a complete parse.
    TrailingData(usize),
    /// A string value was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for TlvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlvError::Truncated => write!(f, "TLV data truncated"),
            TlvError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag {expected:#04x}, found {found:#04x}")
            }
            TlvError::BadLength {
                tag,
                expected,
                found,
            } => write!(
                f,
                "tag {tag:#04x}: expected {expected} value bytes, found {found}"
            ),
            TlvError::TrailingData(n) => write!(f, "{n} trailing bytes"),
            TlvError::BadUtf8 => write!(f, "string value is not UTF-8"),
        }
    }
}

impl std::error::Error for TlvError {}

/// Append-only TLV writer.
///
/// ```
/// use ripki_crypto::tlv::{Writer, Reader};
/// let mut w = Writer::new();
/// w.put_u32(0x01, 42).put_str(0x02, "hello");
/// let bytes = w.finish();
/// let mut r = Reader::new(&bytes);
/// assert_eq!(r.get_u32(0x01).unwrap(), 42);
/// assert_eq!(r.get_str(0x02).unwrap(), "hello");
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer {
            buf: BytesMut::new(),
        }
    }

    fn header(&mut self, tag: u8, len: usize) -> &mut Self {
        self.buf.put_u8(tag);
        self.buf.put_u32(len as u32);
        self
    }

    /// Write raw bytes under `tag`.
    pub fn put_bytes(&mut self, tag: u8, value: &[u8]) -> &mut Self {
        self.header(tag, value.len());
        self.buf.put_slice(value);
        self
    }

    /// Write a `u8` under `tag`.
    pub fn put_u8(&mut self, tag: u8, value: u8) -> &mut Self {
        self.put_bytes(tag, &[value])
    }

    /// Write a big-endian `u32` under `tag`.
    pub fn put_u32(&mut self, tag: u8, value: u32) -> &mut Self {
        self.put_bytes(tag, &value.to_be_bytes())
    }

    /// Write a big-endian `u64` under `tag`.
    pub fn put_u64(&mut self, tag: u8, value: u64) -> &mut Self {
        self.put_bytes(tag, &value.to_be_bytes())
    }

    /// Write a big-endian `u128` under `tag`.
    pub fn put_u128(&mut self, tag: u8, value: u128) -> &mut Self {
        self.put_bytes(tag, &value.to_be_bytes())
    }

    /// Write a UTF-8 string under `tag`.
    pub fn put_str(&mut self, tag: u8, value: &str) -> &mut Self {
        self.put_bytes(tag, value.as_bytes())
    }

    /// Write a nested TLV structure under `tag`.
    pub fn put_nested(&mut self, tag: u8, inner: Writer) -> &mut Self {
        let bytes = inner.finish();
        self.put_bytes(tag, &bytes)
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential TLV reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Peek at the next element's tag without consuming it.
    pub fn peek_tag(&self) -> Option<u8> {
        self.buf.first().copied()
    }

    /// Read the next element, requiring tag `tag`; returns the value bytes.
    pub fn get_bytes(&mut self, tag: u8) -> Result<&'a [u8], TlvError> {
        if self.buf.len() < 5 {
            return Err(TlvError::Truncated);
        }
        let found = self.buf[0];
        if found != tag {
            return Err(TlvError::UnexpectedTag {
                expected: tag,
                found,
            });
        }
        let mut len_bytes = &self.buf[1..5];
        let len = len_bytes.get_u32() as usize;
        if self.buf.len() < 5 + len {
            return Err(TlvError::Truncated);
        }
        let value = &self.buf[5..5 + len];
        self.buf = &self.buf[5 + len..];
        Ok(value)
    }

    fn get_fixed<const N: usize>(&mut self, tag: u8) -> Result<[u8; N], TlvError> {
        let v = self.get_bytes(tag)?;
        if v.len() != N {
            return Err(TlvError::BadLength {
                tag,
                expected: N,
                found: v.len(),
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(v);
        Ok(out)
    }

    /// Read a `u8` under `tag`.
    pub fn get_u8(&mut self, tag: u8) -> Result<u8, TlvError> {
        Ok(self.get_fixed::<1>(tag)?[0])
    }

    /// Read a big-endian `u32` under `tag`.
    pub fn get_u32(&mut self, tag: u8) -> Result<u32, TlvError> {
        Ok(u32::from_be_bytes(self.get_fixed::<4>(tag)?))
    }

    /// Read a big-endian `u64` under `tag`.
    pub fn get_u64(&mut self, tag: u8) -> Result<u64, TlvError> {
        Ok(u64::from_be_bytes(self.get_fixed::<8>(tag)?))
    }

    /// Read a big-endian `u128` under `tag`.
    pub fn get_u128(&mut self, tag: u8) -> Result<u128, TlvError> {
        Ok(u128::from_be_bytes(self.get_fixed::<16>(tag)?))
    }

    /// Read a UTF-8 string under `tag`.
    pub fn get_str(&mut self, tag: u8) -> Result<&'a str, TlvError> {
        std::str::from_utf8(self.get_bytes(tag)?).map_err(|_| TlvError::BadUtf8)
    }

    /// Read a nested TLV structure under `tag`, returning a sub-reader.
    pub fn get_nested(&mut self, tag: u8) -> Result<Reader<'a>, TlvError> {
        Ok(Reader::new(self.get_bytes(tag)?))
    }

    /// Assert that all input was consumed.
    pub fn finish(self) -> Result<(), TlvError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(TlvError::TrailingData(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut w = Writer::new();
        w.put_u8(1, 0xab)
            .put_u32(2, 0xdead_beef)
            .put_u64(3, u64::MAX)
            .put_u128(4, u128::MAX - 1)
            .put_str(5, "héllo")
            .put_bytes(6, &[]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(1).unwrap(), 0xab);
        assert_eq!(r.get_u32(2).unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64(3).unwrap(), u64::MAX);
        assert_eq!(r.get_u128(4).unwrap(), u128::MAX - 1);
        assert_eq!(r.get_str(5).unwrap(), "héllo");
        assert_eq!(r.get_bytes(6).unwrap(), &[] as &[u8]);
        r.finish().unwrap();
    }

    #[test]
    fn nested_structures() {
        let mut inner = Writer::new();
        inner.put_u32(10, 7);
        let mut w = Writer::new();
        w.put_nested(1, inner).put_u8(2, 9);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let mut sub = r.get_nested(1).unwrap();
        assert_eq!(sub.get_u32(10).unwrap(), 7);
        sub.finish().unwrap();
        assert_eq!(r.get_u8(2).unwrap(), 9);
        r.finish().unwrap();
    }

    #[test]
    fn wrong_tag_reported() {
        let mut w = Writer::new();
        w.put_u8(1, 0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.get_u8(2),
            Err(TlvError::UnexpectedTag {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_u32(1, 5);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_u32(1).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let mut w = Writer::new();
        w.put_bytes(1, &[1, 2, 3]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.get_u32(1),
            Err(TlvError::BadLength {
                tag: 1,
                expected: 4,
                found: 3
            })
        );
    }

    #[test]
    fn trailing_data_detected() {
        let mut w = Writer::new();
        w.put_u8(1, 0).put_u8(2, 0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.get_u8(1).unwrap();
        assert_eq!(r.clone_finish_err(), Some(TlvError::TrailingData(6)));
    }

    impl<'a> Reader<'a> {
        fn clone_finish_err(&self) -> Option<TlvError> {
            Reader::new(self.buf).finish().err()
        }
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = Writer::new();
        w.put_bytes(1, &[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(1), Err(TlvError::BadUtf8));
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut w = Writer::new();
            w.put_str(1, "same").put_u64(2, 99);
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = Writer::new();
        w.put_u8(7, 1);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.peek_tag(), Some(7));
        assert_eq!(r.peek_tag(), Some(7));
        r.get_u8(7).unwrap();
        assert_eq!(r.peek_tag(), None);
    }
}
