//! Shared fixtures for `ripki-serve` integration tests: a
//! scenario-backed server and a raw TCP HTTP client.
//!
//! A dev-dependency crate instead of a `tests/common` module so each
//! test binary can use its own subset of the helpers without blanket
//! `#![allow(dead_code)]` — unused `pub` items in a library are not
//! dead code.

use ripki::engine::StudyEngine;
use ripki::exposure::ExposureConfig;
use ripki::pipeline::PipelineConfig;
use ripki_serve::{EpochView, Server, ServerConfig, SharedView};
use ripki_websim::{Scenario, ScenarioConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A small measured world with its engine and a running server.
pub struct Fixture {
    /// The generated world.
    pub scenario: Scenario,
    /// The engine measuring it.
    pub engine: StudyEngine,
    /// A server answering for the measured epoch.
    pub server: Server,
}

/// Build a `domains`-sized scenario, measure it, and serve it.
pub fn serve_scenario(domains: usize, seed: u64) -> Fixture {
    serve_scenario_config(domains, seed, ServerConfig::default())
}

/// [`serve_scenario`] with explicit server tunables — how the
/// backpressure tests shrink deadlines, watermarks, and send buffers.
pub fn serve_scenario_config(domains: usize, seed: u64, config: ServerConfig) -> Fixture {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = engine.run(&scenario.ranking);
    let view = EpochView::new(
        engine.snapshot(),
        Arc::new(results),
        Some(Arc::new(scenario.topology.clone())),
        ExposureConfig {
            attackers_per_domain: 1,
            stride: 1,
            ..Default::default()
        },
    );
    let server = Server::start("127.0.0.1:0", Arc::new(SharedView::new(view)), config)
        .expect("bind test server");
    Fixture {
        scenario,
        engine,
        server,
    }
}

/// One response: status code, headers and body.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Reply {
    /// Parse the body as a JSON value tree.
    pub fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("body is not JSON ({e:?}): {}", self.body))
    }

    /// First value of a response header (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one GET over a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> Reply {
    raw_roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n"),
    )
}

/// Send each request in turn over ONE connection, reading one
/// `Content-Length`-framed response after each. Stops early — returning
/// the replies collected so far — when the server closes the
/// connection, which is how tests observe keep-alive being honoured or
/// withdrawn.
pub fn keep_alive_session(addr: SocketAddr, requests: &[String]) -> Vec<Reply> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut replies = Vec::new();
    let mut pending: Vec<u8> = Vec::new();
    for request in requests {
        if stream.write_all(request.as_bytes()).is_err() {
            break;
        }
        let Some(reply) = read_framed_response(&mut stream, &mut pending) else {
            break;
        };
        replies.push(reply);
    }
    replies
}

/// Read exactly one response (head + `Content-Length` bytes of body)
/// from the stream, leaving any pipelined surplus in `pending`. `None`
/// on EOF or socket error before a full response arrived.
fn read_framed_response(stream: &mut TcpStream, pending: &mut Vec<u8>) -> Option<Reply> {
    let head_end = loop {
        if let Some(pos) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if !fill(stream, pending) {
            return None;
        }
    };
    let head = String::from_utf8_lossy(&pending[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    while pending.len() < head_end + content_length {
        if !fill(stream, pending) {
            return None;
        }
    }
    let raw = String::from_utf8_lossy(&pending[..head_end + content_length]).to_string();
    pending.drain(..head_end + content_length);
    Some(parse_response(&raw))
}

fn fill(stream: &mut TcpStream, pending: &mut Vec<u8>) -> bool {
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) | Err(_) => false,
        Ok(n) => {
            pending.extend_from_slice(&chunk[..n]);
            true
        }
    }
}

/// Write arbitrary bytes, read the full response.
pub fn raw_roundtrip(addr: SocketAddr, request: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Split an HTTP/1.1 response into status + headers + body.
pub fn parse_response(raw: &str) -> Reply {
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1) // status line
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body,
    }
}
