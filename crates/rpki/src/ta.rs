//! Trust anchors.
//!
//! The RPKI has five roots, one per Regional Internet Registry. Relying
//! parties learn them out-of-band through Trust Anchor Locators (TALs);
//! here the [`TrustAnchor`] value itself plays the TAL's role: holding one
//! means trusting its self-signed certificate.

use crate::cert::Cert;
use std::fmt;

/// The five RIR trust anchors the paper collects ROAs from.
pub const RIR_NAMES: [&str; 5] = ["AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE"];

/// A trust anchor: a named, self-signed CA certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustAnchor {
    /// Registry name, e.g. `"RIPE"`.
    pub name: String,
    /// The self-signed certificate.
    pub cert: Cert,
}

impl TrustAnchor {
    /// Wrap a self-signed certificate as a trust anchor.
    ///
    /// Panics in debug builds if the certificate is not self-signed;
    /// the repository builder only produces conforming anchors.
    pub fn new(name: impl Into<String>, cert: Cert) -> TrustAnchor {
        debug_assert!(cert.is_self_signed(), "trust anchors must be self-signed");
        TrustAnchor {
            name: name.into(),
            cert,
        }
    }

    /// Republication fingerprint of the anchor: its (operator-assigned)
    /// name plus the certificate identity. The incremental validator
    /// keys its cached trust-anchor verdicts on this.
    pub fn fingerprint(&self) -> crate::repo::Fingerprint {
        let mut fp = crate::repo::Fingerprint::new();
        fp.write(self.name.as_bytes());
        self.cert.fold_fingerprint(&mut fp);
        fp
    }
}

impl fmt::Display for TrustAnchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TA {} ({})", self.name, self.cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Resources;
    use crate::time::{Duration, SimTime, Validity};
    use ripki_crypto::keystore::Keypair;

    #[test]
    fn wraps_self_signed_cert() {
        let keys = Keypair::derive(11, "ta/test");
        let cert = Cert::issue(
            1,
            "test root",
            keys.public,
            &keys.secret,
            keys.key_id,
            Validity::starting(SimTime::EPOCH, Duration::years(10)),
            Resources::empty(),
            true,
        );
        let ta = TrustAnchor::new("TEST", cert);
        assert!(ta.cert.is_self_signed());
        assert!(ta.to_string().contains("TA TEST"));
    }

    #[test]
    fn five_rirs() {
        assert_eq!(RIR_NAMES.len(), 5);
        assert!(RIR_NAMES.contains(&"RIPE"));
        assert!(RIR_NAMES.contains(&"ARIN"));
    }
}
