//! On-disk repository archives.
//!
//! A relying party's view of the RPKI is a directory tree fetched over
//! rsync/RRDP: trust anchor locators plus one directory of signed objects
//! per publication point. This module persists a [`Repository`] in that
//! shape and loads it back — the paper's "All data will be made
//! available" for the simulated world, and the interchange format the
//! `ripki-cli` tool works on:
//!
//! ```text
//! <dir>/
//!   tals/<NAME>.tal        # trust anchor locator (name + key)
//!   tals/<NAME>.cer        # the self-signed TA certificate
//!   <key-id-hex>/          # one directory per publication point
//!     ca.crl
//!     ca.mft
//!     cert-<serial>.cer    # issued CA certificates
//!     roa-<serial>.roa     # ROAs (archive framing)
//! ```
//!
//! Loading performs **no validation** — that is [`crate::validate()`]'s
//! job, exactly as with a real fetched repository.

use crate::cert::Cert;
use crate::crl::Crl;
use crate::manifest::Manifest;
use crate::repo::{PublicationPoint, Repository};
use crate::roa::Roa;
use crate::ta::TrustAnchor;
use ripki_crypto::keystore::KeyId;
use ripki_crypto::sha256::Digest;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Archive I/O and format errors.
#[derive(Debug)]
pub enum ArchiveError {
    /// Filesystem failure.
    Io(io::Error),
    /// A file failed to decode.
    Decode {
        /// Path of the undecodable file.
        path: String,
        /// What the decoder objected to.
        detail: String,
    },
    /// A directory name was not a valid key id.
    BadKeyId(String),
    /// A publication point directory was missing a required file.
    Missing {
        /// The publication point directory.
        point: String,
        /// The file that should have been there.
        file: &'static str,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::Decode { path, detail } => {
                write!(f, "failed to decode {path}: {detail}")
            }
            ArchiveError::BadKeyId(name) => {
                write!(f, "directory name {name:?} is not a key id")
            }
            ArchiveError::Missing { point, file } => {
                write!(f, "publication point {point} is missing {file}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> ArchiveError {
        ArchiveError::Io(e)
    }
}

/// Write `repo` under `dir` (created if absent; existing contents of the
/// target subdirectories are replaced).
pub fn save(repo: &Repository, dir: &Path) -> Result<(), ArchiveError> {
    let tals = dir.join("tals");
    fs::create_dir_all(&tals)?;
    for ta in &repo.trust_anchors {
        let tal_text = format!(
            "# ripki trust anchor locator\nname: {}\nkey-id: {}\n",
            ta.name,
            ta.cert.subject_key_id().0.to_hex(),
        );
        fs::write(tals.join(format!("{}.tal", ta.name)), tal_text)?;
        fs::write(tals.join(format!("{}.cer", ta.name)), ta.cert.encoded())?;
    }
    for (key_id, pp) in &repo.points {
        let point_dir = dir.join(key_id.0.to_hex());
        fs::create_dir_all(&point_dir)?;
        fs::write(
            point_dir.join(PublicationPoint::CRL_FILE_NAME),
            pp.crl.encoded(),
        )?;
        fs::write(point_dir.join("ca.mft"), pp.manifest.encoded())?;
        for cert in &pp.child_certs {
            fs::write(
                point_dir.join(PublicationPoint::cert_file_name(cert)),
                cert.encoded(),
            )?;
        }
        for roa in &pp.roas {
            fs::write(
                point_dir.join(PublicationPoint::roa_file_name(roa)),
                roa.archive_encoded(),
            )?;
        }
    }
    Ok(())
}

fn decode_err(path: &Path, detail: impl ToString) -> ArchiveError {
    ArchiveError::Decode {
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

/// Load a repository from `dir`.
pub fn load(dir: &Path) -> Result<Repository, ArchiveError> {
    let mut repo = Repository::default();
    let tals = dir.join("tals");
    if tals.is_dir() {
        let mut names: Vec<_> = fs::read_dir(&tals)?
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "cer"))
            .collect();
        names.sort();
        for cer_path in names {
            let name = cer_path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unknown")
                .to_string();
            let bytes = fs::read(&cer_path)?;
            let cert = Cert::decode(&bytes).map_err(|e| decode_err(&cer_path, e))?;
            repo.trust_anchors.push(TrustAnchor::new(name, cert));
        }
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "tals"))
        .collect();
    entries.sort();
    for point_dir in entries {
        let dirname = point_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let digest =
            Digest::from_hex(&dirname).ok_or_else(|| ArchiveError::BadKeyId(dirname.clone()))?;
        let key_id = KeyId(digest);

        let crl_path = point_dir.join(PublicationPoint::CRL_FILE_NAME);
        if !crl_path.is_file() {
            return Err(ArchiveError::Missing {
                point: dirname,
                file: "ca.crl",
            });
        }
        let crl = Crl::decode(&fs::read(&crl_path)?).map_err(|e| decode_err(&crl_path, e))?;
        let mft_path = point_dir.join("ca.mft");
        if !mft_path.is_file() {
            return Err(ArchiveError::Missing {
                point: dirname,
                file: "ca.mft",
            });
        }
        let manifest =
            Manifest::decode(&fs::read(&mft_path)?).map_err(|e| decode_err(&mft_path, e))?;

        let mut child_certs = Vec::new();
        let mut roas = Vec::new();
        let mut files: Vec<_> = fs::read_dir(&point_dir)?
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .collect();
        files.sort();
        for file in files {
            match file.extension().and_then(|x| x.to_str()) {
                Some("cer") => {
                    let cert = Cert::decode(&fs::read(&file)?).map_err(|e| decode_err(&file, e))?;
                    child_certs.push(cert);
                }
                Some("roa") => {
                    let roa = Roa::decode(&fs::read(&file)?).map_err(|e| decode_err(&file, e))?;
                    roas.push(roa);
                }
                _ => {}
            }
        }
        repo.points.insert(
            key_id,
            PublicationPoint {
                child_certs,
                roas,
                crl,
                manifest,
            },
        );
    }
    Ok(repo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::RepositoryBuilder;
    use crate::resources::Resources;
    use crate::roa::RoaPrefix;
    use crate::time::{Duration, SimTime};
    use crate::validate::validate;
    use ripki_net::{Asn, IpPrefix};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// Unique scratch directory per test invocation.
    fn scratch() -> std::path::PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ripki-archive-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_repo() -> Repository {
        let mut b = RepositoryBuilder::new(31, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec![p("80.0.0.0/4"), p("2a00::/12")]),
        );
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec![p("85.0.0.0/8")]))
            .unwrap();
        b.add_roa(
            isp,
            Asn::new(100),
            vec![RoaPrefix::up_to(p("85.1.0.0/16"), 24)],
        )
        .unwrap();
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        b.revoke(isp, 999).unwrap();
        b.finalize()
    }

    #[test]
    fn save_load_roundtrip_validates_identically() {
        let repo = sample_repo();
        let dir = scratch();
        save(&repo, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.trust_anchors.len(), repo.trust_anchors.len());
        assert_eq!(loaded.points.len(), repo.points.len());
        assert_eq!(loaded.roa_count(), repo.roa_count());

        let now = SimTime::EPOCH + Duration::days(1);
        let before = validate(&repo, now);
        let after = validate(&loaded, now);
        assert_eq!(before.vrps, after.vrps);
        assert_eq!(before.rejected_count(), after.rejected_count());
        assert_eq!(after.rejected_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn archive_layout_is_as_documented() {
        let repo = sample_repo();
        let dir = scratch();
        save(&repo, &dir).unwrap();
        assert!(dir.join("tals/RIPE.tal").is_file());
        assert!(dir.join("tals/RIPE.cer").is_file());
        let tal = fs::read_to_string(dir.join("tals/RIPE.tal")).unwrap();
        assert!(tal.contains("name: RIPE"));
        // Two publication points (TA + ISP), named by key-id hex.
        let point_dirs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.path().is_dir() && e.file_name() != "tals")
            .collect();
        assert_eq!(point_dirs.len(), 2);
        for d in &point_dirs {
            assert!(d.path().join("ca.crl").is_file());
            assert!(d.path().join("ca.mft").is_file());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_file_fails_decode_or_validation() {
        let repo = sample_repo();
        let dir = scratch();
        save(&repo, &dir).unwrap();
        // Flip one byte in every .roa file.
        let mut flipped = 0;
        for entry in fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
        {
            if !entry.path().is_dir() || entry.file_name() == "tals" {
                continue;
            }
            for file in fs::read_dir(entry.path())
                .unwrap()
                .filter_map(std::result::Result::ok)
            {
                if file.path().extension().is_some_and(|x| x == "roa") {
                    let mut bytes = fs::read(file.path()).unwrap();
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xff;
                    fs::write(file.path(), bytes).unwrap();
                    flipped += 1;
                }
            }
        }
        assert_eq!(flipped, 2);
        // Either decoding fails, or validation rejects the objects —
        // tampering must never pass silently.
        match load(&dir) {
            Err(ArchiveError::Decode { .. }) => {}
            Ok(loaded) => {
                let now = SimTime::EPOCH + Duration::days(1);
                let report = validate(&loaded, now);
                assert!(report.vrps.is_empty());
                assert!(report.rejected_count() > 0);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_crl_reported() {
        let repo = sample_repo();
        let dir = scratch();
        save(&repo, &dir).unwrap();
        for entry in fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
        {
            if entry.path().is_dir() && entry.file_name() != "tals" {
                fs::remove_file(entry.path().join("ca.crl")).unwrap();
            }
        }
        assert!(matches!(
            load(&dir),
            Err(ArchiveError::Missing { file: "ca.crl", .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_directory_name_reported() {
        let repo = sample_repo();
        let dir = scratch();
        save(&repo, &dir).unwrap();
        fs::create_dir(dir.join("not-a-key-id")).unwrap();
        // Must contain the mandatory files to get past earlier checks…
        // actually the name check fires first.
        assert!(matches!(load(&dir), Err(ArchiveError::BadKeyId(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_loads_empty_repository() {
        let dir = scratch();
        let repo = load(&dir).unwrap();
        assert!(repo.trust_anchors.is_empty());
        assert!(repo.points.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
