//! Per-object incremental validation.
//!
//! Full validation ([`crate::validate::validate`]) re-checks every
//! signature in the repository on every run. Between two relying-party
//! passes almost nothing changes: the paper's longitudinal study replays
//! years of ROA churn where each day touches a handful of publication
//! points out of thousands. [`IncrementalValidator`] exploits that by
//! caching the outcome of every publication point and only revalidating
//! the ones whose inputs changed.
//!
//! ## The dependency graph
//!
//! A publication point's validation outcome is a pure function of:
//!
//! * the issuing CA certificate (its key verifies the CRL, manifest and
//!   every child signature; its resources bound the children's);
//! * the point's published content (CRL, manifest, child certs, ROAs);
//! * the trust anchor name baked into the logged events;
//! * the evaluation time `now` — but only through the validity windows
//!   the walk consults, which partition time into intervals of constant
//!   outcome (an [`Era`]).
//!
//! So the cache key is `(CA cert fingerprint, content fingerprint,
//! trust-anchor name)` and a cached entry is reusable while
//! `era.contains(now)`. Everything the paper's hard cases require falls
//! out of this: a CRL revoking a sibling re-issues the CRL, changing the
//! content fingerprint, so the whole point (all sibling ROAs) is
//! revalidated; a manifest replacement likewise; a key rollover changes
//! the parent's content (new child cert) *and* every descendant's issuing
//! cert, dirtying the whole subtree; an expiry sweep moves `now` out of
//! some points' eras and only those are revisited.
//!
//! ## Fingerprints are republication detectors
//!
//! Content fingerprints ([`Fingerprint`]) fold object *identities*
//! (serials, deterministic signatures), not full content hashes. They
//! detect republication — a CA issuing different objects — in O(1) per
//! object. They deliberately do not detect in-place tampering with a
//! published object's payload bytes (the fault injector does this);
//! flows that mutate repositories behind the builder's back must start
//! from a fresh validator, which performs a full pass.
//!
//! Each CA key is assumed reachable from at most one trust anchor (true
//! of every builder-produced repository); a key shared between anchor
//! hierarchies would thrash its single cache slot.

use crate::cert::Cert;
use crate::repo::{Fingerprint, Repository};
use crate::time::{Era, SimTime};
use crate::validate::{
    ca_accept_event, missing_point_event, trust_anchor_event, validate_point, PointItem,
    ValidationOptions, ValidationReport, Vrp,
};
use ripki_crypto::keystore::KeyId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Work accounting for one [`IncrementalValidator::apply`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyStats {
    /// Publication points reachable in this pass (cached or not).
    pub points_total: usize,
    /// Points whose cached outcome was reused untouched.
    pub points_reused: usize,
    /// Points (re)validated from scratch this pass.
    pub points_revalidated: usize,
    /// Individual object decisions recomputed (trust anchors, CA certs,
    /// ROAs, point-level CRL/manifest verdicts).
    pub objects_validated: usize,
}

impl ApplyStats {
    /// Whether any cached work was actually reused — `false` means the
    /// pass was equivalent to a full validation.
    pub fn full_pass_avoided(&self) -> bool {
        self.points_reused > 0
    }
}

/// The change in the validated VRP set produced by one `apply` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VrpDelta {
    /// VRPs present now that were absent before, sorted.
    pub announced: Vec<Vrp>,
    /// VRPs absent now that were present before, sorted.
    pub withdrawn: Vec<Vrp>,
    /// What it cost to compute.
    pub stats: ApplyStats,
}

impl VrpDelta {
    /// Whether the VRP set changed at all.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// Cached verdict for one trust anchor, in walk order.
#[derive(Debug, Clone)]
struct CachedTa {
    fingerprint: Fingerprint,
    era: Era,
    event: crate::validate::ValidationEvent,
    /// The anchor certificate, kept so [`IncrementalValidator::report`]
    /// can replay the walk without the repository.
    cert: Cert,
    name: String,
    usable: bool,
}

/// Cached outcome for one publication point (or its absence).
#[derive(Debug, Clone)]
struct CachedPoint {
    ta_name: String,
    /// Fingerprint of the issuing CA certificate.
    ca_fp: Fingerprint,
    /// Fingerprint of the published content; `None` caches "no
    /// publication point exists for this CA".
    content_fp: Option<Fingerprint>,
    era: Era,
    items: Vec<PointItem>,
    vrps: Vec<Vrp>,
    rejected: usize,
}

/// A validator that carries per-publication-point outcome caches across
/// repository snapshots and clock advances.
#[derive(Debug, Clone)]
pub struct IncrementalValidator {
    options: ValidationOptions,
    tas: Vec<CachedTa>,
    points: HashMap<KeyId, CachedPoint>,
    /// Reference-counted VRP multiset: distinct ROAs may assert the same
    /// payload, and one leaving must not withdraw the other's.
    vrp_counts: BTreeMap<Vrp, usize>,
    rejected: usize,
}

impl Default for IncrementalValidator {
    fn default() -> IncrementalValidator {
        IncrementalValidator::new(ValidationOptions::default())
    }
}

impl IncrementalValidator {
    /// An empty validator; the first [`apply`](Self::apply) is a full pass.
    pub fn new(options: ValidationOptions) -> IncrementalValidator {
        IncrementalValidator {
            options,
            tas: Vec::new(),
            points: HashMap::new(),
            vrp_counts: BTreeMap::new(),
            rejected: 0,
        }
    }

    /// Current validated VRP set, deduplicated and sorted.
    pub fn vrps(&self) -> Vec<Vrp> {
        self.vrp_counts.keys().copied().collect()
    }

    /// Number of rejection events in the current (cached) walk.
    pub fn rejected_count(&self) -> usize {
        self.rejected
    }

    /// Validate `repo` as of `now`, reusing every cached publication
    /// point whose inputs are unchanged, and return the VRP delta
    /// relative to the previous call.
    pub fn apply(&mut self, repo: &Repository, now: SimTime) -> VrpDelta {
        let mut stats = ApplyStats::default();
        // VRP presence before this pass first touched the entry, recorded
        // lazily: a count that dips to zero and recovers within one apply
        // must not surface in the delta.
        let mut touched: HashMap<Vrp, bool> = HashMap::new();
        let mut visited: HashSet<KeyId> = HashSet::new();
        // Previous cache; entries still live move back into self.points,
        // the rest are dead and release their VRPs.
        let mut prev = std::mem::take(&mut self.points);
        let prev_tas = std::mem::take(&mut self.tas);

        for ta in &repo.trust_anchors {
            let fp = ta.fingerprint();
            let cached = prev_tas
                .iter()
                .find(|c| c.fingerprint == fp && c.era.contains(now));
            let entry = match cached {
                Some(c) => c.clone(),
                None => {
                    stats.objects_validated += 1;
                    let mut era = Era::unbounded();
                    let event = trust_anchor_event(ta, now, &mut era);
                    CachedTa {
                        fingerprint: fp,
                        era,
                        usable: event.rejected.is_none(),
                        event,
                        cert: ta.cert.clone(),
                        name: ta.name.clone(),
                    }
                }
            };
            let usable = entry.usable;
            let cert = entry.cert.clone();
            let name = entry.name.clone();
            self.tas.push(entry);
            if usable {
                self.walk(
                    repo,
                    &mut prev,
                    &cert,
                    &name,
                    now,
                    &mut visited,
                    &mut stats,
                    &mut touched,
                );
            }
        }

        // Points no longer reachable: withdraw their VRPs.
        for (_, dead) in prev.drain() {
            self.release_vrps(&dead.vrps, &mut touched);
        }

        self.rejected = self
            .tas
            .iter()
            .filter(|t| t.event.rejected.is_some())
            .count()
            + self.points.values().map(|p| p.rejected).sum::<usize>();

        let mut delta = VrpDelta {
            stats,
            ..VrpDelta::default()
        };
        for (vrp, was_present) in touched {
            let is_present = self.vrp_counts.contains_key(&vrp);
            match (was_present, is_present) {
                (false, true) => delta.announced.push(vrp),
                (true, false) => delta.withdrawn.push(vrp),
                _ => {}
            }
        }
        delta.announced.sort();
        delta.withdrawn.sort();
        delta
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        repo: &Repository,
        prev: &mut HashMap<KeyId, CachedPoint>,
        ca_cert: &Cert,
        ta_name: &str,
        now: SimTime,
        visited: &mut HashSet<KeyId>,
        stats: &mut ApplyStats,
        touched: &mut HashMap<Vrp, bool>,
    ) {
        let ca_id = ca_cert.subject_key_id();
        if !visited.insert(ca_id) {
            return;
        }
        stats.points_total += 1;
        let mut ca_fp = Fingerprint::new();
        ca_cert.fold_fingerprint(&mut ca_fp);
        let pp = repo.points.get(&ca_id);
        let content_fp = pp.map(super::repo::PublicationPoint::quick_fingerprint);

        let prev_entry = prev.remove(&ca_id);
        let reusable = prev_entry.as_ref().is_some_and(|c| {
            c.ta_name == ta_name
                && c.ca_fp == ca_fp
                && c.content_fp == content_fp
                && c.era.contains(now)
        });
        let entry = if reusable {
            stats.points_reused += 1;
            prev_entry.unwrap()
        } else {
            stats.points_revalidated += 1;
            let fresh = match pp {
                None => CachedPoint {
                    ta_name: ta_name.to_string(),
                    ca_fp,
                    content_fp: None,
                    era: Era::unbounded(),
                    items: vec![PointItem::Event(missing_point_event(ta_name, ca_cert))],
                    vrps: Vec::new(),
                    rejected: 1,
                },
                Some(pp) => {
                    let outcome = validate_point(ca_cert, pp, ta_name, now, self.options);
                    stats.objects_validated += outcome.items.len();
                    let rejected = outcome
                        .items
                        .iter()
                        .filter(|i| matches!(i, PointItem::Event(e) if e.rejected.is_some()))
                        .count();
                    CachedPoint {
                        ta_name: ta_name.to_string(),
                        ca_fp,
                        content_fp,
                        era: outcome.era,
                        items: outcome.items,
                        vrps: outcome.vrps,
                        rejected,
                    }
                }
            };
            if let Some(old) = prev_entry {
                self.release_vrps(&old.vrps, touched);
            }
            self.acquire_vrps(&fresh.vrps, touched);
            fresh
        };

        let children: Vec<Cert> = entry
            .items
            .iter()
            .filter_map(|i| match i {
                PointItem::Child(c) => Some((**c).clone()),
                PointItem::Event(_) => None,
            })
            .collect();
        self.points.insert(ca_id, entry);
        for child in children {
            self.walk(repo, prev, &child, ta_name, now, visited, stats, touched);
        }
    }

    fn acquire_vrps(&mut self, vrps: &[Vrp], touched: &mut HashMap<Vrp, bool>) {
        for vrp in vrps {
            let count = self.vrp_counts.entry(*vrp).or_insert(0);
            touched.entry(*vrp).or_insert(*count > 0);
            *count += 1;
        }
    }

    fn release_vrps(&mut self, vrps: &[Vrp], touched: &mut HashMap<Vrp, bool>) {
        for vrp in vrps {
            let count = self
                .vrp_counts
                .get_mut(vrp)
                .expect("released VRP was never acquired");
            touched.entry(*vrp).or_insert(true);
            *count -= 1;
            if *count == 0 {
                self.vrp_counts.remove(vrp);
            }
        }
    }

    /// Reconstruct the [`ValidationReport`] a full `validate_with` run
    /// would produce for the last applied `(repo, now)` — identical event
    /// order and VRP set — from the cache alone.
    pub fn report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        let mut vrps: HashSet<Vrp> = HashSet::new();
        for ta in &self.tas {
            report.log.push(ta.event.clone());
            if !ta.usable {
                continue;
            }
            let mut visited: HashSet<KeyId> = HashSet::new();
            self.replay(&ta.cert, &ta.name, &mut report, &mut vrps, &mut visited);
        }
        let mut sorted: Vec<Vrp> = vrps.into_iter().collect();
        sorted.sort();
        report.vrps = sorted;
        report
    }

    fn replay(
        &self,
        ca_cert: &Cert,
        ta_name: &str,
        report: &mut ValidationReport,
        vrps: &mut HashSet<Vrp>,
        visited: &mut HashSet<KeyId>,
    ) {
        let ca_id = ca_cert.subject_key_id();
        if !visited.insert(ca_id) {
            return;
        }
        let Some(entry) = self.points.get(&ca_id) else {
            return;
        };
        for item in &entry.items {
            match item {
                PointItem::Event(event) => report.log.push(event.clone()),
                PointItem::Child(child) => {
                    report.log.push(ca_accept_event(ta_name, child));
                    self.replay(child, ta_name, report, vrps, visited);
                }
            }
        }
        vrps.extend(entry.vrps.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::RepositoryBuilder;
    use crate::resources::Resources;
    use crate::roa::RoaPrefix;
    use crate::time::Duration;
    use crate::validate::validate;
    use ripki_net::{Asn, IpPrefix};

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn res(prefixes: &[&str]) -> Resources {
        Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
    }

    /// Both validators must agree exactly: VRPs and full event log.
    fn assert_equiv(inc: &IncrementalValidator, repo: &Repository, now: SimTime) {
        let full = validate(repo, now);
        let replay = inc.report();
        assert_eq!(replay.vrps, full.vrps, "VRP sets diverge");
        assert_eq!(replay.log, full.log, "event logs diverge");
        assert_eq!(inc.vrps(), full.vrps);
        assert_eq!(inc.rejected_count(), full.rejected_count());
    }

    #[test]
    fn initial_apply_matches_full_validation() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert!(delta.withdrawn.is_empty());
        assert!(!delta.stats.full_pass_avoided());
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn unchanged_repo_reuses_every_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        inc.apply(&repo, now);
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_reused, delta.stats.points_total);
        assert_eq!(delta.stats.objects_validated, 0);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn roa_addition_revalidates_only_its_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp1 = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(ta, "ISP-2", res(&["86.0.0.0/8"])).unwrap();
        b.add_roa(
            isp1,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        b.add_roa(
            isp2,
            Asn::new(200),
            vec![RoaPrefix::exact(p("86.1.0.0/16"))],
        )
        .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        b.add_roa(
            isp2,
            Asn::new(201),
            vec![RoaPrefix::exact(p("86.2.0.0/16"))],
        )
        .unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert_eq!(delta.announced[0].asn, Asn::new(201));
        assert!(delta.withdrawn.is_empty());
        // TA point dirty? No: ISP-2's *content* changed, not the TA's.
        // Only ISP-2's point is revalidated; TA and ISP-1 points reused.
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_eq!(delta.stats.points_reused, 2);
        assert!(delta.stats.full_pass_avoided());
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn crl_revocation_revalidates_sibling_roas() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        // ROA EEs have serials 3 and 4 (TA=1, ISP=2).
        b.revoke(isp, 3).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.withdrawn.len(), 1);
        assert_eq!(delta.withdrawn[0].asn, Asn::new(100));
        assert!(delta.announced.is_empty());
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn key_rollover_revalidates_subtree() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        let new_isp = b.rollover_key(isp).unwrap();
        assert_ne!(new_isp, isp);
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        // Same VRP reappears under the new key: refcount sees no change.
        assert!(delta.is_empty(), "delta: {delta:?}");
        // TA point (new child cert) and the rolled CA's point both redo.
        assert_eq!(delta.stats.points_revalidated, 2);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn expiry_sweep_only_touches_expiring_points() {
        let start = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        inc.apply(&repo, start);
        assert_eq!(inc.vrps().len(), 1);

        // One hour later: still inside every era — nothing revalidates.
        let delta = inc.apply(&repo, start + Duration::hours(1));
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_revalidated, 0);
        assert_equiv(&inc, &repo, start + Duration::hours(1));

        // Past the CRL window (7 days): points expire, VRPs withdraw.
        let late = SimTime::EPOCH + Duration::days(30);
        let delta = inc.apply(&repo, late);
        assert_eq!(delta.withdrawn.len(), 1);
        assert!(inc.vrps().is_empty());
        assert_equiv(&inc, &repo, late);
    }

    #[test]
    fn manifest_replacement_revalidates_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        b.republish(isp).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_eq!(delta.stats.points_reused, 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn duplicate_vrps_reference_counted() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp1 = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(ta, "ISP-2", res(&["85.0.0.0/8"])).unwrap();
        // Same VRP asserted by two ROAs at two different points.
        b.add_roa(
            isp1,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        b.add_roa(
            isp2,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&b.snapshot(), now);
        assert_eq!(delta.announced.len(), 1);

        // Removing one copy must not withdraw the VRP. EE serials: TA=1,
        // ISP certs 2 and 3, ROA EEs 4 and 5; drop ISP-2's copy (5).
        b.remove_roa(isp2, 5).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty(), "delta: {delta:?}");
        assert_eq!(inc.vrps().len(), 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn missing_point_cached_and_recovered() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut repo = b.snapshot();
        repo.points.remove(&isp);
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&repo, now);
        assert!(delta.announced.is_empty());
        assert_equiv(&inc, &repo, now);

        // Reused on a second pass.
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.stats.points_reused, delta.stats.points_total);

        // Point comes back: revalidated, VRP announced.
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert_equiv(&inc, &repo, now);
    }
}
