//! Per-object incremental validation.
//!
//! Full validation ([`crate::validate::validate`]) re-checks every
//! signature in the repository on every run. Between two relying-party
//! passes almost nothing changes: the paper's longitudinal study replays
//! years of ROA churn where each day touches a handful of publication
//! points out of thousands. [`IncrementalValidator`] exploits that by
//! caching the outcome of every publication point and only revalidating
//! the ones whose inputs changed.
//!
//! ## The dependency graph
//!
//! A publication point's validation outcome is a pure function of:
//!
//! * the issuing CA certificate (its key verifies the CRL, manifest and
//!   every child signature; its resources bound the children's);
//! * the point's published content (CRL, manifest, child certs, ROAs);
//! * the trust anchor name baked into the logged events;
//! * the evaluation time `now` — but only through the validity windows
//!   the walk consults, which partition time into intervals of constant
//!   outcome (an [`Era`]).
//!
//! So the cache key is `(CA cert fingerprint, content fingerprint,
//! trust-anchor name)` and a cached entry is reusable while
//! `era.contains(now)`. Everything the paper's hard cases require falls
//! out of this: a CRL revoking a sibling re-issues the CRL, changing the
//! content fingerprint, so the whole point (all sibling ROAs) is
//! revalidated; a manifest replacement likewise; a key rollover changes
//! the parent's content (new child cert) *and* every descendant's issuing
//! cert, dirtying the whole subtree; an expiry sweep moves `now` out of
//! some points' eras and only those are revisited.
//!
//! ## Plan / execute / commit
//!
//! Each [`apply`](IncrementalValidator::apply) is a breadth-first wave
//! sweep in three stages per wave:
//!
//! 1. **Plan** (serial): diff the frontier's CA certificates and
//!    publication-point fingerprints against the cache, splitting it
//!    into reused entries and an independent dirty work list.
//! 2. **Execute** (parallel): revalidate the dirty points over the
//!    work-stealing pool (`ripki-par`), each item a pure
//!    `(CA cert, point) → CachedPoint` computation with no shared
//!    mutable state. A panicking item is isolated: its point alone is
//!    marked skipped ([`ApplyStats::points_skipped`]) and revalidated on
//!    the next pass.
//! 3. **Commit** (serial): fold outcomes back in frontier order —
//!    VRP refcounts, the point cache, the next wave's frontier. Commit
//!    order is the plan order, so parallel ≡ serial byte-for-byte;
//!    thread count can change wall-clock time only, never results.
//!
//! ## Fingerprints are republication detectors
//!
//! Content fingerprints ([`Fingerprint`]) fold object *identities*
//! (serials, deterministic signatures), not full content hashes. They
//! detect republication — a CA issuing different objects — in O(1) per
//! object. They deliberately do not detect in-place tampering with a
//! published object's payload bytes (the fault injector does this);
//! flows that mutate repositories behind the builder's back must start
//! from a fresh validator, which performs a full pass.
//!
//! Each CA key is assumed reachable from at most one trust anchor (true
//! of every builder-produced repository); a key shared between anchor
//! hierarchies would thrash its single cache slot.
//!
//! ## The event log is maintained, not replayed
//!
//! Every cached point pre-renders its event stream into chunks split at
//! child-descent positions (`Arc`-shared, so relinearization is pointer
//! work). Whenever a pass changes any point or trust anchor, the flat
//! log is re-linearized from the cached tree in O(points); an unchanged
//! pass leaves it untouched. [`report`](IncrementalValidator::report)
//! therefore just concatenates the maintained chunks and reads the VRP
//! set off the refcount table — there is no full-rebuild replay path.

use crate::cert::Cert;
use crate::repo::{Fingerprint, Repository};
use crate::time::{Era, SimTime};
use crate::validate::{
    ca_accept_event, missing_point_event, trust_anchor_event, validate_point, PointItem,
    PointOutcome, ValidationEvent, ValidationOptions, ValidationReport, Vrp,
};
use ripki_crypto::keystore::KeyId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Work accounting for one [`IncrementalValidator::apply`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyStats {
    /// Publication points reachable in this pass (cached or not).
    pub points_total: usize,
    /// Points whose cached outcome was reused untouched.
    pub points_reused: usize,
    /// Points (re)validated from scratch this pass.
    pub points_revalidated: usize,
    /// Individual object decisions recomputed (trust anchors, CA certs,
    /// ROAs, point-level CRL/manifest verdicts).
    pub objects_validated: usize,
    /// Points whose revalidation panicked on the execute stage and were
    /// skipped (their subtree is withdrawn until the next pass).
    #[serde(default)]
    pub points_skipped: usize,
}

impl ApplyStats {
    /// Whether any cached work was actually reused — `false` means the
    /// pass was equivalent to a full validation.
    pub fn full_pass_avoided(&self) -> bool {
        self.points_reused > 0
    }
}

/// The change in the validated VRP set produced by one `apply` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VrpDelta {
    /// VRPs present now that were absent before, sorted.
    pub announced: Vec<Vrp>,
    /// VRPs absent now that were present before, sorted.
    pub withdrawn: Vec<Vrp>,
    /// What it cost to compute.
    pub stats: ApplyStats,
}

impl VrpDelta {
    /// Whether the VRP set changed at all.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// Cached verdict for one trust anchor, in walk order.
#[derive(Debug, Clone)]
struct CachedTa {
    fingerprint: Fingerprint,
    era: Era,
    event: ValidationEvent,
    /// The anchor certificate, kept so the log linearization can start
    /// the descent without the repository.
    cert: Cert,
    name: String,
    usable: bool,
}

/// Cached outcome for one publication point (or its absence).
///
/// The point's event stream is pre-rendered into `chunks`: `chunks[i]`
/// holds the events up to and including child `i`'s accept event, and
/// the final chunk holds the trailing events. Rendering once at
/// validation time makes relinearizing the whole log after a change
/// pure `Arc`-pointer work.
#[derive(Debug, Clone)]
struct CachedPoint {
    ta_name: String,
    /// Fingerprint of the issuing CA certificate.
    ca_fp: Fingerprint,
    /// Fingerprint of the published content; `None` caches "no
    /// publication point exists for this CA".
    content_fp: Option<Fingerprint>,
    era: Era,
    /// Pre-rendered event chunks; `chunks.len() == children.len() + 1`
    /// for validated points, empty for skipped ones.
    chunks: Vec<Arc<Vec<ValidationEvent>>>,
    /// Child CA certificates in walk order, interleaved with `chunks`.
    children: Vec<Cert>,
    vrps: Vec<Vrp>,
    rejected: usize,
    /// Object decisions this entry cost to compute (what a revalidation
    /// adds to [`ApplyStats::objects_validated`]).
    objects: usize,
    /// The execute stage panicked on this point: it holds no outcome,
    /// is never reusable, and is invisible in the event log.
    skipped: bool,
}

impl CachedPoint {
    fn from_outcome(
        ta_name: &str,
        ca_fp: Fingerprint,
        content_fp: Option<Fingerprint>,
        outcome: PointOutcome,
    ) -> CachedPoint {
        let rejected = outcome
            .items
            .iter()
            .filter(|i| matches!(i, PointItem::Event(e) if e.rejected.is_some()))
            .count();
        let objects = outcome.items.len();
        let (chunks, children) = render_chunks(&outcome.items, ta_name);
        CachedPoint {
            ta_name: ta_name.to_string(),
            ca_fp,
            content_fp,
            era: outcome.era,
            chunks,
            children,
            vrps: outcome.vrps,
            rejected,
            objects,
            skipped: false,
        }
    }

    fn missing(ta_name: &str, ca_fp: Fingerprint, ca_cert: &Cert) -> CachedPoint {
        CachedPoint {
            ta_name: ta_name.to_string(),
            ca_fp,
            content_fp: None,
            era: Era::unbounded(),
            chunks: vec![Arc::new(vec![missing_point_event(ta_name, ca_cert)])],
            children: Vec::new(),
            vrps: Vec::new(),
            rejected: 1,
            objects: 0,
            skipped: false,
        }
    }

    fn skipped(
        ta_name: String,
        ca_fp: Fingerprint,
        content_fp: Option<Fingerprint>,
    ) -> CachedPoint {
        CachedPoint {
            ta_name,
            ca_fp,
            content_fp,
            era: Era::unbounded(),
            chunks: Vec::new(),
            children: Vec::new(),
            vrps: Vec::new(),
            rejected: 0,
            objects: 0,
            skipped: true,
        }
    }
}

/// Render a point's items into event chunks split at child descents
/// (each child's accept event closes its chunk), plus the child list.
fn render_chunks(
    items: &[PointItem],
    ta_name: &str,
) -> (Vec<Arc<Vec<ValidationEvent>>>, Vec<Cert>) {
    let mut chunks = Vec::new();
    let mut children = Vec::new();
    let mut current: Vec<ValidationEvent> = Vec::new();
    for item in items {
        match item {
            PointItem::Event(e) => current.push(e.clone()),
            PointItem::Child(child) => {
                current.push(ca_accept_event(ta_name, child));
                chunks.push(Arc::new(std::mem::take(&mut current)));
                children.push((**child).clone());
            }
        }
    }
    chunks.push(Arc::new(current));
    (chunks, children)
}

/// One frontier entry after the plan stage classified it.
enum Planned {
    /// Cached outcome still valid: committed untouched.
    Reused(KeyId, CachedPoint),
    /// No publication point for this CA — the verdict involves no
    /// crypto, so it is computed at plan time.
    Missing(KeyId, CachedPoint, Option<CachedPoint>),
    /// Inputs changed: revalidated on the (parallel) execute stage.
    Dirty {
        ca_id: KeyId,
        cert: Cert,
        ta_name: String,
        ca_fp: Fingerprint,
        content_fp: Option<Fingerprint>,
        old: Option<CachedPoint>,
    },
}

/// A validator that carries per-publication-point outcome caches across
/// repository snapshots and clock advances.
#[derive(Debug, Clone)]
pub struct IncrementalValidator {
    options: ValidationOptions,
    /// Worker threads for the execute stage (1 = fully serial inline).
    threads: usize,
    tas: Vec<CachedTa>,
    points: HashMap<KeyId, CachedPoint>,
    /// Reference-counted VRP multiset: distinct ROAs may assert the same
    /// payload, and one leaving must not withdraw the other's.
    vrp_counts: BTreeMap<Vrp, usize>,
    rejected: usize,
    /// The maintained flat event log: the cached tree linearized in walk
    /// order, `Arc`-sharing each point's pre-rendered chunks. Rebuilt in
    /// O(points) only by passes that changed something.
    log_pieces: Vec<Arc<Vec<ValidationEvent>>>,
    /// Test-only fault hook: points whose revalidation panics.
    poisoned: HashSet<KeyId>,
}

impl Default for IncrementalValidator {
    fn default() -> IncrementalValidator {
        IncrementalValidator::new(ValidationOptions::default())
    }
}

impl IncrementalValidator {
    /// An empty validator; the first [`apply`](Self::apply) is a full pass.
    pub fn new(options: ValidationOptions) -> IncrementalValidator {
        IncrementalValidator {
            options,
            threads: 1,
            tas: Vec::new(),
            points: HashMap::new(),
            vrp_counts: BTreeMap::new(),
            rejected: 0,
            log_pieces: Vec::new(),
            poisoned: HashSet::new(),
        }
    }

    /// Set the worker-thread count for the parallel execute stage
    /// (clamped to at least 1; 1 = fully serial). Thread count never
    /// changes results — the parallel ≡ serial equivalence is
    /// property-tested in `tests/incremental_prop.rs`.
    pub fn set_worker_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The execute stage's current worker-thread count.
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Test-only fault hook: make the execute stage panic when it
    /// (re)validates `point`, exercising the skip-and-count isolation
    /// path. Has no effect while the point's cached outcome is reusable.
    #[doc(hidden)]
    pub fn poison_point_for_tests(&mut self, point: KeyId) {
        self.poisoned.insert(point);
    }

    /// Clear the test-only fault hook.
    #[doc(hidden)]
    pub fn clear_poison_for_tests(&mut self) {
        self.poisoned.clear();
    }

    /// Current validated VRP set, deduplicated and sorted.
    pub fn vrps(&self) -> Vec<Vrp> {
        self.vrp_counts.keys().copied().collect()
    }

    /// Number of rejection events in the current (cached) walk.
    pub fn rejected_count(&self) -> usize {
        self.rejected
    }

    /// Validate `repo` as of `now`, reusing every cached publication
    /// point whose inputs are unchanged, and return the VRP delta
    /// relative to the previous call.
    ///
    /// Runs as a breadth-first wave sweep: each wave plans serially
    /// (fingerprint diffing), executes the dirty points in parallel
    /// (over [`worker_threads`](Self::worker_threads) workers), and
    /// commits serially in plan order — so the outcome is byte-for-byte
    /// independent of the thread count.
    pub fn apply(&mut self, repo: &Repository, now: SimTime) -> VrpDelta {
        let mut stats = ApplyStats::default();
        // VRP presence before this pass first touched the entry, recorded
        // lazily: a count that dips to zero and recovers within one apply
        // must not surface in the delta.
        let mut touched: HashMap<Vrp, bool> = HashMap::new();
        let mut visited: HashSet<KeyId> = HashSet::new();
        // Previous cache; entries still live move back into self.points,
        // the rest are dead and release their VRPs.
        let mut prev = std::mem::take(&mut self.points);
        let prev_tas = std::mem::take(&mut self.tas);
        // Whether anything in the cached tree changed this pass — only
        // then is the maintained flat log relinearized.
        let mut log_dirty = false;

        // Trust-anchor stage, serial: one signature check per anchor at
        // worst, and the anchors seed the first wave's frontier.
        let mut frontier: Vec<(Cert, String)> = Vec::new();
        for ta in &repo.trust_anchors {
            let fp = ta.fingerprint();
            let cached = prev_tas
                .iter()
                .find(|c| c.fingerprint == fp && c.era.contains(now));
            let entry = match cached {
                Some(c) => c.clone(),
                None => {
                    stats.objects_validated += 1;
                    log_dirty = true;
                    let mut era = Era::unbounded();
                    let event = trust_anchor_event(ta, now, &mut era);
                    CachedTa {
                        fingerprint: fp,
                        era,
                        usable: event.rejected.is_none(),
                        event,
                        cert: ta.cert.clone(),
                        name: ta.name.clone(),
                    }
                }
            };
            if entry.usable {
                frontier.push((entry.cert.clone(), entry.name.clone()));
            }
            self.tas.push(entry);
        }
        // Anchor removals and reorders change the log even when every
        // surviving anchor hit the cache.
        if self.tas.len() != prev_tas.len()
            || self
                .tas
                .iter()
                .zip(&prev_tas)
                .any(|(a, b)| a.fingerprint != b.fingerprint)
        {
            log_dirty = true;
        }

        while !frontier.is_empty() {
            // --- Plan (serial): diff the frontier against the cache. ---
            let mut plan: Vec<Planned> = Vec::with_capacity(frontier.len());
            for (cert, ta_name) in frontier.drain(..) {
                let ca_id = cert.subject_key_id();
                if !visited.insert(ca_id) {
                    continue;
                }
                stats.points_total += 1;
                let mut ca_fp = Fingerprint::new();
                cert.fold_fingerprint(&mut ca_fp);
                let pp = repo.points.get(&ca_id);
                let content_fp = pp.map(super::repo::PublicationPoint::quick_fingerprint);
                let prev_entry = prev.remove(&ca_id);
                let reusable = prev_entry.as_ref().is_some_and(|c| {
                    !c.skipped
                        && c.ta_name == ta_name
                        && c.ca_fp == ca_fp
                        && c.content_fp == content_fp
                        && c.era.contains(now)
                });
                if reusable {
                    stats.points_reused += 1;
                    plan.push(Planned::Reused(
                        ca_id,
                        prev_entry.expect("reusable entry exists"),
                    ));
                } else {
                    stats.points_revalidated += 1;
                    if pp.is_some() {
                        plan.push(Planned::Dirty {
                            ca_id,
                            cert,
                            ta_name,
                            ca_fp,
                            content_fp,
                            old: prev_entry,
                        });
                    } else {
                        let entry = CachedPoint::missing(&ta_name, ca_fp, &cert);
                        plan.push(Planned::Missing(ca_id, entry, prev_entry));
                    }
                }
            }

            // --- Execute (parallel): pure (cert, point) → outcome. ---
            let dirty: Vec<&Planned> = plan
                .iter()
                .filter(|p| matches!(p, Planned::Dirty { .. }))
                .collect();
            let options = self.options;
            let poisoned = &self.poisoned;
            let outcomes = ripki_par::run_indexed(
                self.threads,
                &dirty,
                |_| (),
                |(), _, p| {
                    let Planned::Dirty {
                        ca_id,
                        cert,
                        ta_name,
                        ca_fp,
                        content_fp,
                        ..
                    } = p
                    else {
                        unreachable!("execute stage only sees dirty work items");
                    };
                    assert!(
                        !poisoned.contains(ca_id),
                        "publication point poisoned for tests"
                    );
                    let pp = repo
                        .points
                        .get(ca_id)
                        .expect("planned dirty point has a publication point");
                    let outcome = validate_point(cert, pp, ta_name, now, options);
                    CachedPoint::from_outcome(ta_name, *ca_fp, *content_fp, outcome)
                },
            );

            // --- Commit (serial, plan order): fold outcomes back. ---
            let mut outcome_iter = outcomes.into_iter();
            for planned in plan {
                match planned {
                    Planned::Reused(ca_id, entry) => {
                        for child in &entry.children {
                            frontier.push((child.clone(), entry.ta_name.clone()));
                        }
                        self.points.insert(ca_id, entry);
                    }
                    Planned::Missing(ca_id, entry, old) => {
                        log_dirty = true;
                        self.commit_fresh(ca_id, entry, old, &mut frontier, &mut touched);
                    }
                    Planned::Dirty {
                        ca_id,
                        ta_name,
                        ca_fp,
                        content_fp,
                        old,
                        ..
                    } => {
                        log_dirty = true;
                        let entry = match outcome_iter
                            .next()
                            .expect("one execute outcome per dirty item")
                        {
                            Some(entry) => {
                                stats.objects_validated += entry.objects;
                                entry
                            }
                            None => {
                                stats.points_skipped += 1;
                                CachedPoint::skipped(ta_name, ca_fp, content_fp)
                            }
                        };
                        self.commit_fresh(ca_id, entry, old, &mut frontier, &mut touched);
                    }
                }
            }
        }

        // Points no longer reachable: withdraw their VRPs.
        for (_, dead) in prev.drain() {
            log_dirty = true;
            self.release_vrps(&dead.vrps, &mut touched);
        }

        self.rejected = self
            .tas
            .iter()
            .filter(|t| t.event.rejected.is_some())
            .count()
            + self.points.values().map(|p| p.rejected).sum::<usize>();

        if log_dirty {
            self.relinearize_log();
        }

        let mut delta = VrpDelta {
            stats,
            ..VrpDelta::default()
        };
        for (vrp, was_present) in touched {
            let is_present = self.vrp_counts.contains_key(&vrp);
            match (was_present, is_present) {
                (false, true) => delta.announced.push(vrp),
                (true, false) => delta.withdrawn.push(vrp),
                _ => {}
            }
        }
        delta.announced.sort();
        delta.withdrawn.sort();
        delta
    }

    /// Commit one freshly computed (or skipped) entry: swap the VRP
    /// refcounts, extend the next wave's frontier, install the entry.
    fn commit_fresh(
        &mut self,
        ca_id: KeyId,
        entry: CachedPoint,
        old: Option<CachedPoint>,
        frontier: &mut Vec<(Cert, String)>,
        touched: &mut HashMap<Vrp, bool>,
    ) {
        if let Some(old) = old {
            self.release_vrps(&old.vrps, touched);
        }
        self.acquire_vrps(&entry.vrps, touched);
        for child in &entry.children {
            frontier.push((child.clone(), entry.ta_name.clone()));
        }
        self.points.insert(ca_id, entry);
    }

    fn acquire_vrps(&mut self, vrps: &[Vrp], touched: &mut HashMap<Vrp, bool>) {
        for vrp in vrps {
            let count = self.vrp_counts.entry(*vrp).or_insert(0);
            touched.entry(*vrp).or_insert(*count > 0);
            *count += 1;
        }
    }

    fn release_vrps(&mut self, vrps: &[Vrp], touched: &mut HashMap<Vrp, bool>) {
        for vrp in vrps {
            let count = self
                .vrp_counts
                .get_mut(vrp)
                .expect("released VRP was never acquired");
            touched.entry(*vrp).or_insert(true);
            *count -= 1;
            if *count == 0 {
                self.vrp_counts.remove(vrp);
            }
        }
    }

    /// Rebuild the maintained flat log from the cached tree: a
    /// depth-first descent (matching the full validator's walk order)
    /// that clones chunk `Arc`s, never events — O(points), not
    /// O(events).
    fn relinearize_log(&mut self) {
        let mut pieces: Vec<Arc<Vec<ValidationEvent>>> = Vec::with_capacity(self.log_pieces.len());
        let mut seen: HashSet<KeyId> = HashSet::new();
        for ta in &self.tas {
            pieces.push(Arc::new(vec![ta.event.clone()]));
            if ta.usable {
                Self::linearize(&self.points, &ta.cert, &mut seen, &mut pieces);
            }
        }
        self.log_pieces = pieces;
    }

    fn linearize(
        points: &HashMap<KeyId, CachedPoint>,
        ca_cert: &Cert,
        seen: &mut HashSet<KeyId>,
        pieces: &mut Vec<Arc<Vec<ValidationEvent>>>,
    ) {
        let ca_id = ca_cert.subject_key_id();
        if !seen.insert(ca_id) {
            return;
        }
        let Some(entry) = points.get(&ca_id) else {
            return;
        };
        for (i, chunk) in entry.chunks.iter().enumerate() {
            if !chunk.is_empty() {
                pieces.push(Arc::clone(chunk));
            }
            if let Some(child) = entry.children.get(i) {
                Self::linearize(points, child, seen, pieces);
            }
        }
    }

    /// The [`ValidationReport`] a full `validate_with` run would produce
    /// for the last applied `(repo, now)` — identical event order and
    /// VRP set — assembled from the incrementally maintained log and the
    /// VRP refcount table. No walk is replayed and nothing is
    /// revalidated; the cost is one clone of the event stream.
    ///
    /// A point skipped by panic isolation is absent from the log until a
    /// later pass revalidates it.
    pub fn report(&self) -> ValidationReport {
        let total: usize = self.log_pieces.iter().map(|c| c.len()).sum();
        let mut log = Vec::with_capacity(total);
        for chunk in &self.log_pieces {
            log.extend(chunk.iter().cloned());
        }
        ValidationReport {
            vrps: self.vrps(),
            log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::RepositoryBuilder;
    use crate::resources::Resources;
    use crate::roa::RoaPrefix;
    use crate::time::Duration;
    use crate::validate::validate;
    use ripki_net::{Asn, IpPrefix};

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn res(prefixes: &[&str]) -> Resources {
        Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
    }

    /// Both validators must agree exactly: VRPs and full event log.
    fn assert_equiv(inc: &IncrementalValidator, repo: &Repository, now: SimTime) {
        let full = validate(repo, now);
        let replay = inc.report();
        assert_eq!(replay.vrps, full.vrps, "VRP sets diverge");
        assert_eq!(replay.log, full.log, "event logs diverge");
        assert_eq!(inc.vrps(), full.vrps);
        assert_eq!(inc.rejected_count(), full.rejected_count());
    }

    #[test]
    fn initial_apply_matches_full_validation() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert!(delta.withdrawn.is_empty());
        assert!(!delta.stats.full_pass_avoided());
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn unchanged_repo_reuses_every_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        inc.apply(&repo, now);
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_reused, delta.stats.points_total);
        assert_eq!(delta.stats.objects_validated, 0);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn roa_addition_revalidates_only_its_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp1 = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(ta, "ISP-2", res(&["86.0.0.0/8"])).unwrap();
        b.add_roa(
            isp1,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        b.add_roa(
            isp2,
            Asn::new(200),
            vec![RoaPrefix::exact(p("86.1.0.0/16"))],
        )
        .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        b.add_roa(
            isp2,
            Asn::new(201),
            vec![RoaPrefix::exact(p("86.2.0.0/16"))],
        )
        .unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert_eq!(delta.announced[0].asn, Asn::new(201));
        assert!(delta.withdrawn.is_empty());
        // TA point dirty? No: ISP-2's *content* changed, not the TA's.
        // Only ISP-2's point is revalidated; TA and ISP-1 points reused.
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_eq!(delta.stats.points_reused, 2);
        assert!(delta.stats.full_pass_avoided());
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn crl_revocation_revalidates_sibling_roas() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        // ROA EEs have serials 3 and 4 (TA=1, ISP=2).
        b.revoke(isp, 3).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.withdrawn.len(), 1);
        assert_eq!(delta.withdrawn[0].asn, Asn::new(100));
        assert!(delta.announced.is_empty());
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn key_rollover_revalidates_subtree() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        let new_isp = b.rollover_key(isp).unwrap();
        assert_ne!(new_isp, isp);
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        // Same VRP reappears under the new key: refcount sees no change.
        assert!(delta.is_empty(), "delta: {delta:?}");
        // TA point (new child cert) and the rolled CA's point both redo.
        assert_eq!(delta.stats.points_revalidated, 2);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn expiry_sweep_only_touches_expiring_points() {
        let start = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.snapshot();
        let mut inc = IncrementalValidator::default();
        inc.apply(&repo, start);
        assert_eq!(inc.vrps().len(), 1);

        // One hour later: still inside every era — nothing revalidates.
        let delta = inc.apply(&repo, start + Duration::hours(1));
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_revalidated, 0);
        assert_equiv(&inc, &repo, start + Duration::hours(1));

        // Past the CRL window (7 days): points expire, VRPs withdraw.
        let late = SimTime::EPOCH + Duration::days(30);
        let delta = inc.apply(&repo, late);
        assert_eq!(delta.withdrawn.len(), 1);
        assert!(inc.vrps().is_empty());
        assert_equiv(&inc, &repo, late);
    }

    #[test]
    fn manifest_replacement_revalidates_point() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut inc = IncrementalValidator::default();
        inc.apply(&b.snapshot(), now);

        b.republish(isp).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty());
        assert_eq!(delta.stats.points_revalidated, 1);
        assert_eq!(delta.stats.points_reused, 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn duplicate_vrps_reference_counted() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp1 = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(ta, "ISP-2", res(&["85.0.0.0/8"])).unwrap();
        // Same VRP asserted by two ROAs at two different points.
        b.add_roa(
            isp1,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        b.add_roa(
            isp2,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&b.snapshot(), now);
        assert_eq!(delta.announced.len(), 1);

        // Removing one copy must not withdraw the VRP. EE serials: TA=1,
        // ISP certs 2 and 3, ROA EEs 4 and 5; drop ISP-2's copy (5).
        b.remove_roa(isp2, 5).unwrap();
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert!(delta.is_empty(), "delta: {delta:?}");
        assert_eq!(inc.vrps().len(), 1);
        assert_equiv(&inc, &repo, now);
    }

    #[test]
    fn missing_point_cached_and_recovered() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut repo = b.snapshot();
        repo.points.remove(&isp);
        let mut inc = IncrementalValidator::default();
        let delta = inc.apply(&repo, now);
        assert!(delta.announced.is_empty());
        assert_equiv(&inc, &repo, now);

        // Reused on a second pass.
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.stats.points_reused, delta.stats.points_total);

        // Point comes back: revalidated, VRP announced.
        let repo = b.snapshot();
        let delta = inc.apply(&repo, now);
        assert_eq!(delta.announced.len(), 1);
        assert_equiv(&inc, &repo, now);
    }

    /// Two-CA world for the panic-isolation cases below.
    fn poisoned_world() -> (RepositoryBuilder, KeyId, KeyId) {
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp1 = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(ta, "ISP-2", res(&["86.0.0.0/8"])).unwrap();
        b.add_roa(
            isp1,
            Asn::new(100),
            vec![RoaPrefix::exact(p("85.1.0.0/16"))],
        )
        .unwrap();
        b.add_roa(
            isp2,
            Asn::new(200),
            vec![RoaPrefix::exact(p("86.1.0.0/16"))],
        )
        .unwrap();
        (b, isp1, isp2)
    }

    /// A poisoned work item marks only its own publication point as
    /// skipped: siblings still validate, the skipped point's VRPs are
    /// withdrawn, and the next (healthy) pass recovers them.
    #[test]
    fn poisoned_point_is_skipped_and_recovered() {
        let now = SimTime::EPOCH + Duration::days(1);
        let (mut b, _isp1, isp2) = poisoned_world();
        for threads in [1usize, 4] {
            let mut inc = IncrementalValidator::default();
            inc.set_worker_threads(threads);
            inc.apply(&b.snapshot(), now);
            assert_eq!(inc.vrps().len(), 2);

            // Dirty both CAs (republish) with ISP-2 poisoned: only its
            // point skips, ISP-1 revalidates normally.
            b.republish(isp2).unwrap();
            inc.poison_point_for_tests(isp2);
            let repo = b.snapshot();
            let delta = inc.apply(&repo, now);
            assert_eq!(delta.stats.points_skipped, 1, "threads={threads}");
            assert_eq!(delta.withdrawn.len(), 1, "threads={threads}");
            assert_eq!(delta.withdrawn[0].asn, Asn::new(200));
            assert_eq!(inc.vrps().len(), 1);
            // The skipped point is invisible in the maintained log; the
            // healthy siblings still match the full pass's prefix.
            let replay = inc.report();
            assert!(replay
                .log
                .iter()
                .all(|e| !e.object.contains("ISP-2") || e.object.contains("CA cert")));

            // Healthy pass: the skipped entry is never reusable, so the
            // point revalidates and its VRP comes back.
            inc.clear_poison_for_tests();
            let delta = inc.apply(&repo, now);
            assert_eq!(delta.stats.points_skipped, 0);
            assert_eq!(delta.announced.len(), 1);
            assert_eq!(delta.announced[0].asn, Asn::new(200));
            assert_equiv(&inc, &repo, now);
        }
    }
}
