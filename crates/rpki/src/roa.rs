//! Route Origin Authorizations (RFC 6482, simplified).
//!
//! A ROA states: "origin AS *a* is authorized to announce these prefixes,
//! each up to `maxLength` specific". Real ROAs are CMS signed-objects
//! wrapped around a one-time end-entity certificate; we keep exactly that
//! two-layer structure — [`Roa::ee`] is an EE certificate issued by the
//! publishing CA, and the ROA content is signed by the EE key — because
//! the paper's step 4 relies on the full chain being checked.

use crate::cert::Cert;
use crate::time::Validity;
use ripki_crypto::keystore::{KeyId, Keypair};
use ripki_crypto::schnorr::{SecretKey, Signature};
use ripki_crypto::sha256::{sha256, Digest};
use ripki_crypto::tlv::{Reader, TlvError, Writer};
use ripki_net::{Asn, IpPrefix, PrefixSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One prefix entry of a ROA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoaPrefix {
    /// The authorized prefix.
    pub prefix: IpPrefix,
    /// Longest more-specific announcement permitted. `None` means "the
    /// prefix length itself" (RFC 6482 default).
    pub max_length: Option<u8>,
}

impl RoaPrefix {
    /// Entry with the default max-length.
    pub fn exact(prefix: IpPrefix) -> RoaPrefix {
        RoaPrefix {
            prefix,
            max_length: None,
        }
    }

    /// Entry allowing more-specifics up to `max_length`.
    pub fn up_to(prefix: IpPrefix, max_length: u8) -> RoaPrefix {
        RoaPrefix {
            prefix,
            max_length: Some(max_length),
        }
    }

    /// Effective max length (the prefix's own length if unset).
    pub fn effective_max_length(&self) -> u8 {
        self.max_length.unwrap_or_else(|| self.prefix.len())
    }

    /// Whether the entry is internally consistent:
    /// `prefix.len() <= maxLength <= family bits`.
    pub fn is_well_formed(&self) -> bool {
        let ml = self.effective_max_length();
        self.prefix.len() <= ml && ml <= self.prefix.family().bits()
    }
}

impl fmt::Display for RoaPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_length {
            Some(ml) => write!(f, "{}-{}", self.prefix, ml),
            None => write!(f, "{}", self.prefix),
        }
    }
}

/// A Route Origin Authorization signed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roa {
    /// The embedded one-time end-entity certificate (issued by the
    /// publishing CA; its resources must cover the ROA's prefixes).
    pub ee: Cert,
    /// The authorized origin AS.
    pub asn: Asn,
    /// The authorized prefixes.
    pub prefixes: Vec<RoaPrefix>,
    /// EE-key signature over the content bytes.
    pub signature: Signature,
}

impl Roa {
    /// Canonical encoding of the ROA content (the signed part).
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(0x01, self.asn.value());
        w.put_u32(0x02, self.prefixes.len() as u32);
        for rp in &self.prefixes {
            w.put_str(0x03, &rp.prefix.to_string());
            w.put_u8(0x04, rp.max_length.map_or(0, |m| m + 1));
        }
        w.finish().to_vec()
    }

    /// Full encoding (EE cert + content + signature); hashed in manifests.
    pub fn encoded(&self) -> Vec<u8> {
        let mut bytes = self.ee.encoded();
        bytes.extend_from_slice(&self.content_bytes());
        bytes.extend_from_slice(&self.signature.to_bytes());
        bytes
    }

    /// SHA-256 of the full encoding.
    pub fn digest(&self) -> Digest {
        sha256(&self.encoded())
    }

    /// Fold this ROA into a republication fingerprint: the EE
    /// certificate identity plus the content signature (which covers the
    /// ASN and every prefix entry).
    pub fn fold_fingerprint(&self, fp: &mut crate::repo::Fingerprint) {
        self.ee.fold_fingerprint(fp);
        fp.write(&self.signature.to_bytes());
    }

    /// Self-delimiting encoding for archives: the EE certificate,
    /// content, and signature each framed in an outer TLV.
    pub fn archive_encoded(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(0x20, &self.ee.encoded());
        w.put_bytes(0x21, &self.content_bytes());
        w.put_bytes(0x22, &self.signature.to_bytes());
        w.finish().to_vec()
    }

    /// Decode from [`archive_encoded`](Roa::archive_encoded) bytes.
    pub fn decode(bytes: &[u8]) -> Result<Roa, TlvError> {
        let mut r = Reader::new(bytes);
        let ee = crate::cert::Cert::decode(r.get_bytes(0x20)?)?;
        let content = r.get_bytes(0x21)?;
        let sig_raw = r.get_bytes(0x22)?;
        if sig_raw.len() != 32 {
            return Err(TlvError::BadLength {
                tag: 0x22,
                expected: 32,
                found: sig_raw.len(),
            });
        }
        r.finish()?;
        let mut c = Reader::new(content);
        let asn = Asn::new(c.get_u32(0x01)?);
        let count = c.get_u32(0x02)?;
        let mut prefixes = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let prefix: IpPrefix = c.get_str(0x03)?.parse().map_err(|_| TlvError::BadUtf8)?;
            let raw_ml = c.get_u8(0x04)?;
            let max_length = if raw_ml == 0 { None } else { Some(raw_ml - 1) };
            prefixes.push(RoaPrefix { prefix, max_length });
        }
        c.finish()?;
        let mut sig_bytes = [0u8; 32];
        sig_bytes.copy_from_slice(sig_raw);
        Ok(Roa {
            ee,
            asn,
            prefixes,
            signature: Signature::from_bytes(&sig_bytes),
        })
    }

    /// The prefix set claimed by the ROA (for resource checks).
    pub fn claimed_prefixes(&self) -> PrefixSet {
        PrefixSet::from_prefixes(self.prefixes.iter().map(|rp| rp.prefix))
    }

    /// Verify the EE signature over the content (not the chain; the
    /// validator does chain checks).
    pub fn verify_content_signature(&self) -> bool {
        self.ee
            .subject_key
            .verify(&self.content_bytes(), &self.signature)
            .is_ok()
    }

    /// Create a ROA: derives a one-time EE key, has the CA issue the EE
    /// certificate over exactly the ROA's prefixes, and signs the content.
    ///
    /// `ee_seed` must be unique per ROA (the builder passes a counter).
    pub fn create(
        ca_secret: &SecretKey,
        ca_key_id: KeyId,
        ee_serial: u64,
        ee_seed: (u64, &str),
        asn: Asn,
        prefixes: Vec<RoaPrefix>,
        validity: Validity,
    ) -> Roa {
        let ee_keys = Keypair::derive(ee_seed.0, ee_seed.1);
        let resources =
            crate::resources::Resources::from_prefixes(prefixes.iter().map(|rp| rp.prefix));
        let ee = Cert::issue(
            ee_serial,
            &format!("ROA EE for {asn}"),
            ee_keys.public,
            ca_secret,
            ca_key_id,
            validity,
            resources,
            false,
        );
        let mut roa = Roa {
            ee,
            asn,
            prefixes,
            signature: Signature { e: 1, s: 0 },
        };
        roa.signature = ee_keys.secret.sign(&roa.content_bytes());
        roa
    }
}

impl fmt::Display for Roa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ROA {} ← [", self.asn)?;
        for (i, rp) in self.prefixes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rp}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, SimTime};

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn make() -> (Keypair, Roa) {
        let ca = Keypair::derive(3, "roa-ca");
        let roa = Roa::create(
            &ca.secret,
            ca.key_id,
            100,
            (3, "roa-ee-1"),
            Asn::new(65010),
            vec![
                RoaPrefix::exact(p("203.0.113.0/24")),
                RoaPrefix::up_to(p("198.51.100.0/24"), 28),
            ],
            Validity::starting(SimTime::EPOCH, Duration::years(1)),
        );
        (ca, roa)
    }

    #[test]
    fn create_verifies_end_to_end() {
        let (ca, roa) = make();
        assert!(roa.verify_content_signature());
        assert!(roa.ee.verify_signature(&ca.public));
        assert!(!roa.ee.is_ca);
        assert_eq!(roa.ee.issuer_key_id, ca.key_id);
    }

    #[test]
    fn ee_resources_cover_exactly_the_roa_prefixes() {
        let (_, roa) = make();
        assert!(roa
            .ee
            .resources
            .prefixes
            .encompasses(&roa.claimed_prefixes()));
        assert_eq!(roa.ee.resources.prefixes.len(), 2);
    }

    #[test]
    fn content_tamper_detected() {
        let (_, roa) = make();
        let mut t = roa.clone();
        t.asn = Asn::new(65011);
        assert!(!t.verify_content_signature());

        let mut t = roa.clone();
        t.prefixes[0] = RoaPrefix::exact(p("203.0.112.0/24"));
        assert!(!t.verify_content_signature());

        let mut t = roa.clone();
        t.prefixes[1].max_length = Some(30);
        assert!(!t.verify_content_signature());

        // maxLength None vs Some(len) must encode differently.
        let mut t = roa.clone();
        t.prefixes[0].max_length = Some(24);
        assert!(!t.verify_content_signature());
    }

    #[test]
    fn digests_differ_between_roas() {
        let (ca, roa) = make();
        let other = Roa::create(
            &ca.secret,
            ca.key_id,
            101,
            (3, "roa-ee-2"),
            Asn::new(65010),
            vec![RoaPrefix::exact(p("192.0.2.0/24"))],
            Validity::starting(SimTime::EPOCH, Duration::years(1)),
        );
        assert_ne!(roa.digest(), other.digest());
    }

    #[test]
    fn roa_prefix_well_formedness() {
        assert!(RoaPrefix::exact(p("10.0.0.0/8")).is_well_formed());
        assert!(RoaPrefix::up_to(p("10.0.0.0/8"), 24).is_well_formed());
        assert!(!RoaPrefix::up_to(p("10.0.0.0/8"), 7).is_well_formed());
        assert!(!RoaPrefix::up_to(p("10.0.0.0/8"), 33).is_well_formed());
        assert!(RoaPrefix::up_to(p("2001:db8::/32"), 128).is_well_formed());
        assert_eq!(RoaPrefix::exact(p("10.0.0.0/8")).effective_max_length(), 8);
        assert_eq!(
            RoaPrefix::up_to(p("10.0.0.0/8"), 24).effective_max_length(),
            24
        );
    }

    #[test]
    fn display_forms() {
        let (_, roa) = make();
        let s = roa.to_string();
        assert!(s.contains("AS65010"));
        assert!(s.contains("203.0.113.0/24"));
        assert!(s.contains("198.51.100.0/24-28"));
    }
}
