//! Manifests (RFC 6486, simplified).
//!
//! A manifest enumerates every object published at a publication point
//! together with its SHA-256 hash. Validators use it to detect deleted,
//! substituted, or corrupted repository content: an object missing from
//! the repository, present but absent from the manifest, or hashing to a
//! different value than listed makes the publication point inconsistent.

use crate::time::{SimTime, Validity};
use ripki_crypto::keystore::KeyId;
use ripki_crypto::schnorr::{PublicKey, SecretKey, Signature};
use ripki_crypto::sha256::Digest;
use ripki_crypto::tlv::{Reader, TlvError, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// A per-publication-point manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Key id of the publishing CA.
    pub issuer_key_id: KeyId,
    /// Monotonically increasing manifest number.
    pub manifest_number: u64,
    /// File name → SHA-256 digest, sorted by name (canonical).
    pub entries: BTreeMap<String, Digest>,
    /// thisUpdate/nextUpdate currency window.
    pub validity: Validity,
    /// CA signature over the TBS bytes.
    pub signature: Signature,
}

impl Manifest {
    /// Canonical to-be-signed encoding.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(0x01, self.issuer_key_id.0.as_bytes())
            .put_u64(0x02, self.manifest_number)
            .put_u64(0x03, self.validity.not_before.0)
            .put_u64(0x04, self.validity.not_after.0)
            .put_u32(0x05, self.entries.len() as u32);
        for (name, digest) in &self.entries {
            w.put_str(0x06, name);
            w.put_bytes(0x07, digest.as_bytes());
        }
        w.finish().to_vec()
    }

    /// Full encoding including the signature (for archives).
    pub fn encoded(&self) -> Vec<u8> {
        let mut bytes = self.tbs_bytes();
        bytes.extend_from_slice(&self.signature.to_bytes());
        bytes
    }

    /// Decode a manifest from its [`encoded`](Manifest::encoded) bytes.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, TlvError> {
        if bytes.len() < 32 {
            return Err(TlvError::Truncated);
        }
        let (tbs, sig) = bytes.split_at(bytes.len() - 32);
        let mut r = Reader::new(tbs);
        let issuer_raw = r.get_bytes(0x01)?;
        if issuer_raw.len() != 32 {
            return Err(TlvError::BadLength {
                tag: 0x01,
                expected: 32,
                found: issuer_raw.len(),
            });
        }
        let mut issuer_digest = [0u8; 32];
        issuer_digest.copy_from_slice(issuer_raw);
        let manifest_number = r.get_u64(0x02)?;
        let not_before = SimTime(r.get_u64(0x03)?);
        let not_after = SimTime(r.get_u64(0x04)?);
        let count = r.get_u32(0x05)?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name = r.get_str(0x06)?.to_string();
            let digest_raw = r.get_bytes(0x07)?;
            if digest_raw.len() != 32 {
                return Err(TlvError::BadLength {
                    tag: 0x07,
                    expected: 32,
                    found: digest_raw.len(),
                });
            }
            let mut d = [0u8; 32];
            d.copy_from_slice(digest_raw);
            entries.insert(name, Digest(d));
        }
        r.finish()?;
        let mut sig_bytes = [0u8; 32];
        sig_bytes.copy_from_slice(sig);
        Ok(Manifest {
            issuer_key_id: KeyId(Digest(issuer_digest)),
            manifest_number,
            entries,
            validity: Validity::new(not_before, not_after),
            signature: ripki_crypto::schnorr::Signature::from_bytes(&sig_bytes),
        })
    }

    /// Issue a manifest signed by the CA.
    pub fn issue(
        issuer_secret: &SecretKey,
        issuer_key_id: KeyId,
        manifest_number: u64,
        entries: impl IntoIterator<Item = (String, Digest)>,
        validity: Validity,
    ) -> Manifest {
        let mut mft = Manifest {
            issuer_key_id,
            manifest_number,
            entries: entries.into_iter().collect(),
            validity,
            signature: Signature { e: 1, s: 0 },
        };
        mft.signature = issuer_secret.sign(&mft.tbs_bytes());
        mft
    }

    /// Verify the CA's signature.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> bool {
        issuer_key
            .verify(&self.tbs_bytes(), &self.signature)
            .is_ok()
    }

    /// Whether the manifest is current at `now`.
    pub fn is_current(&self, now: SimTime) -> bool {
        self.validity.contains(now)
    }

    /// The listed digest for `name`, if present.
    pub fn digest_of(&self, name: &str) -> Option<&Digest> {
        self.entries.get(name)
    }

    /// Fold this manifest into a republication fingerprint. Number +
    /// deterministic signature (covering window and every entry hash)
    /// distinguish any two distinctly issued manifests in O(1).
    pub fn fold_fingerprint(&self, fp: &mut crate::repo::Fingerprint) {
        fp.write_u64(self.manifest_number);
        fp.write(&self.signature.to_bytes());
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "manifest #{} by {} ({} entries, {})",
            self.manifest_number,
            self.issuer_key_id,
            self.entries.len(),
            self.validity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use ripki_crypto::keystore::Keypair;
    use ripki_crypto::sha256::sha256;

    fn make() -> (Keypair, Manifest) {
        let ca = Keypair::derive(4, "mft-ca");
        let mft = Manifest::issue(
            &ca.secret,
            ca.key_id,
            1,
            vec![
                ("roa-1.roa".to_string(), sha256(b"roa one")),
                ("ca.crl".to_string(), sha256(b"the crl")),
            ],
            Validity::starting(SimTime::EPOCH, Duration::days(1)),
        );
        (ca, mft)
    }

    #[test]
    fn issue_and_verify() {
        let (ca, mft) = make();
        assert!(mft.verify_signature(&ca.public));
        assert_eq!(mft.digest_of("roa-1.roa"), Some(&sha256(b"roa one")));
        assert_eq!(mft.digest_of("absent"), None);
    }

    #[test]
    fn entry_tamper_detected() {
        let (ca, mft) = make();
        let mut t = mft.clone();
        t.entries.insert("roa-1.roa".to_string(), sha256(b"evil"));
        assert!(!t.verify_signature(&ca.public));

        let mut t = mft.clone();
        t.entries.remove("ca.crl");
        assert!(!t.verify_signature(&ca.public));

        let mut t = mft.clone();
        t.entries.insert("extra.roa".to_string(), sha256(b"x"));
        assert!(!t.verify_signature(&ca.public));

        let mut t = mft.clone();
        t.manifest_number += 1;
        assert!(!t.verify_signature(&ca.public));
    }

    #[test]
    fn currency() {
        let (_, mft) = make();
        assert!(mft.is_current(SimTime::EPOCH + Duration::hours(12)));
        assert!(!mft.is_current(SimTime::EPOCH + Duration::days(2)));
    }

    #[test]
    fn entries_are_canonically_sorted() {
        let ca = Keypair::derive(4, "mft-ca");
        let ab = |order: [(&str, &[u8]); 2]| {
            Manifest::issue(
                &ca.secret,
                ca.key_id,
                1,
                order
                    .iter()
                    .map(|(n, d)| (n.to_string(), sha256(d)))
                    .collect::<Vec<_>>(),
                Validity::starting(SimTime::EPOCH, Duration::days(1)),
            )
        };
        let m1 = ab([("a", b"1"), ("b", b"2")]);
        let m2 = ab([("b", b"2"), ("a", b"1")]);
        assert_eq!(m1.tbs_bytes(), m2.tbs_bytes());
        assert_eq!(m1.signature, m2.signature);
    }
}
