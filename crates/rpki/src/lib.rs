//! # ripki-rpki
//!
//! A Resource Public Key Infrastructure (RFC 6480 family) in miniature:
//! the object model, repository structure, and top-down validation that
//! RiPKI's measurement step 4 performs ("ROA data of all trust anchors
//! are collected and validated; only cryptographically correct ROAs are
//! further used").
//!
//! ## Object model
//!
//! * [`cert::Cert`] — resource certificates with RFC 3779 resource
//!   extensions ([`resources::Resources`]), both CA and end-entity (EE).
//! * [`roa::Roa`] — Route Origin Authorizations: a signed object binding
//!   an origin AS to a set of prefixes with `maxLength`, wrapped in a
//!   one-time EE certificate, as in RFC 6482.
//! * [`crl::Crl`] — certificate revocation lists per CA.
//! * [`manifest::Manifest`] — per-publication-point listings with SHA-256
//!   hashes of every published object (RFC 6486).
//! * [`ta::TrustAnchor`] — self-signed roots; the builder in
//!   [`repo::RepositoryBuilder`] models the five RIR trust anchors.
//!
//! ## Validation
//!
//! [`validate::validate`] walks from the trust anchors down, checking
//! signatures, validity windows, revocation, RFC 3779 resource
//! encompassment, and manifest completeness/hashes, and emits the set of
//! Validated ROA Payloads ([`validate::Vrp`]) together with a full audit
//! log of every accepted and rejected object.
//!
//! ## Fault injection
//!
//! [`faults`] mutates finished repositories the way misbehaving or sloppy
//! authorities would (expired certificates, overclaimed resources, revoked
//! EEs, manifest mismatches, bit-flipped signatures), so tests can assert
//! that each rejection path actually fires — in the spirit of the paper's
//! citation of "On the Risk of Misbehaving RPKI Authorities" (HotNets'13).
//!
//! ## Omissions (vs. the real RPKI)
//!
//! * No RRDP/rsync transports; repositories are in-memory values.
//! * DER/X.509 replaced by the canonical TLV encoding of `ripki-crypto`.
//! * Manifests are signed directly by the CA key rather than by one-time
//!   EE certificates (the completeness/hash semantics are unchanged).
//! * No Ghostbusters records, no BGPsec router certificates.

pub mod archive;
pub mod cert;
pub mod crl;
pub mod faults;
pub mod incremental;
pub mod manifest;
pub mod privacy;
pub mod repo;
pub mod resources;
pub mod roa;
pub mod ta;
pub mod time;
pub mod validate;

pub use archive::{load as load_archive, save as save_archive, ArchiveError};
pub use cert::Cert;
pub use crl::Crl;
pub use incremental::{ApplyStats, IncrementalValidator, VrpDelta};
pub use manifest::Manifest;
pub use repo::{PublicationPoint, Repository, RepositoryBuilder};
pub use resources::Resources;
pub use roa::{Roa, RoaPrefix};
pub use ta::TrustAnchor;
pub use time::{SimTime, Validity};
pub use validate::{validate, RejectReason, ValidationEvent, ValidationReport, Vrp};
