//! RFC 3779 resource extensions: the Internet number resources a
//! certificate speaks for.
//!
//! Every resource certificate carries a set of IP address blocks and a set
//! of AS numbers. Validation (RFC 6487 §7.2) requires each certificate's
//! resources to be *encompassed* by its issuer's — a CA cannot delegate
//! space it does not hold. The paper's §5.2 privacy discussion hinges on
//! exactly these objects: ROAs make (prefix owner → authorized AS)
//! relations public.

use ripki_crypto::tlv::{Reader, TlvError, Writer};
use ripki_net::{Asn, AsnRange, AsnSet, IpPrefix, PrefixSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resources carried by a certificate: prefixes and ASNs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// IP address blocks (IPv4 and IPv6).
    pub prefixes: PrefixSet,
    /// AS number resources.
    pub asns: AsnSet,
}

impl Resources {
    /// Empty resource set.
    pub fn empty() -> Resources {
        Resources::default()
    }

    /// Resources holding only prefixes.
    pub fn from_prefixes<I: IntoIterator<Item = IpPrefix>>(iter: I) -> Resources {
        Resources {
            prefixes: PrefixSet::from_prefixes(iter),
            asns: AsnSet::empty(),
        }
    }

    /// Resources holding prefixes and ASNs.
    pub fn new(prefixes: PrefixSet, asns: AsnSet) -> Resources {
        Resources { prefixes, asns }
    }

    /// RFC 3779 encompassment: every resource of `other` is contained in
    /// `self`.
    pub fn encompasses(&self, other: &Resources) -> bool {
        self.prefixes.encompasses(&other.prefixes) && self.asns.encompasses(&other.asns)
    }

    /// Whether no resources are held at all.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty() && self.asns.is_empty()
    }

    /// Union with another resource set.
    pub fn union(&self, other: &Resources) -> Resources {
        Resources {
            prefixes: self.prefixes.union(&other.prefixes),
            asns: self.asns.union(&other.asns),
        }
    }

    /// Canonical TLV encoding, included in certificate to-be-signed bytes.
    pub fn encode(&self, w: &mut Writer) {
        let mut inner = Writer::new();
        inner.put_u32(0x01, self.prefixes.len() as u32);
        for p in self.prefixes.members() {
            inner.put_str(0x02, &p.to_string());
        }
        inner.put_u32(0x03, self.asns.ranges().len() as u32);
        for r in self.asns.ranges() {
            inner.put_u32(0x04, r.start.value());
            inner.put_u32(0x05, r.end.value());
        }
        w.put_nested(0x10, inner);
    }

    /// Decode the TLV produced by [`encode`](Self::encode).
    pub fn decode(r: &mut Reader<'_>) -> Result<Resources, TlvError> {
        let mut inner = r.get_nested(0x10)?;
        let n_prefixes = inner.get_u32(0x01)?;
        let mut prefixes = Vec::with_capacity(n_prefixes as usize);
        for _ in 0..n_prefixes {
            let s = inner.get_str(0x02)?;
            prefixes.push(s.parse::<IpPrefix>().map_err(|_| TlvError::BadUtf8)?);
        }
        let n_ranges = inner.get_u32(0x03)?;
        let mut ranges = Vec::with_capacity(n_ranges as usize);
        for _ in 0..n_ranges {
            let start = inner.get_u32(0x04)?;
            let end = inner.get_u32(0x05)?;
            ranges.push(
                AsnRange::new(Asn::new(start), Asn::new(end)).map_err(|_| TlvError::BadUtf8)?,
            );
        }
        inner.finish()?;
        Ok(Resources {
            prefixes: PrefixSet::from_prefixes(prefixes),
            asns: AsnSet::from_ranges(ranges),
        })
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prefixes={} asns={}", self.prefixes, self.asns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn sample() -> Resources {
        Resources::new(
            PrefixSet::from_prefixes(vec![p("10.0.0.0/8"), p("2001:db8::/32")]),
            AsnSet::from_ranges(vec![AsnRange::new(Asn::new(100), Asn::new(200)).unwrap()]),
        )
    }

    #[test]
    fn encompasses_requires_both_dimensions() {
        let issuer = sample();
        let ok = Resources::new(
            PrefixSet::from_prefixes(vec![p("10.5.0.0/16")]),
            AsnSet::from_asns(vec![Asn::new(150)]),
        );
        let bad_prefix = Resources::new(
            PrefixSet::from_prefixes(vec![p("11.0.0.0/16")]),
            AsnSet::from_asns(vec![Asn::new(150)]),
        );
        let bad_asn = Resources::new(
            PrefixSet::from_prefixes(vec![p("10.5.0.0/16")]),
            AsnSet::from_asns(vec![Asn::new(201)]),
        );
        assert!(issuer.encompasses(&ok));
        assert!(!issuer.encompasses(&bad_prefix));
        assert!(!issuer.encompasses(&bad_asn));
        assert!(issuer.encompasses(&Resources::empty()));
    }

    #[test]
    fn tlv_roundtrip() {
        let res = sample();
        let mut w = Writer::new();
        res.encode(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let back = Resources::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn tlv_roundtrip_empty() {
        let res = Resources::empty();
        let mut w = Writer::new();
        res.encode(&mut w);
        let bytes = w.finish();
        let back = Resources::decode(&mut Reader::new(&bytes)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn encoding_canonical_under_input_order() {
        let a = Resources::from_prefixes(vec![p("10.0.0.0/8"), p("192.0.2.0/24")]);
        let b = Resources::from_prefixes(vec![p("192.0.2.0/24"), p("10.0.0.0/8")]);
        let enc = |r: &Resources| {
            let mut w = Writer::new();
            r.encode(&mut w);
            w.finish()
        };
        assert_eq!(enc(&a), enc(&b));
    }

    #[test]
    fn union_merges() {
        let a = Resources::from_prefixes(vec![p("10.0.0.0/8")]);
        let b = Resources::new(
            PrefixSet::from_prefixes(vec![p("172.16.0.0/12")]),
            AsnSet::from_asns(vec![Asn::new(1)]),
        );
        let u = a.union(&b);
        assert!(u.encompasses(&a));
        assert!(u.encompasses(&b));
        assert_eq!(u.prefixes.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("10.0.0.0/8"));
        assert!(s.contains("AS100-AS200"));
    }
}
