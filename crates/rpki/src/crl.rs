//! Certificate revocation lists (RFC 6487 §5, simplified).
//!
//! Each CA publishes exactly one CRL at its publication point. Validators
//! must reject certificates whose serial appears on their issuer's current
//! CRL, and must treat a publication point with a stale CRL as unusable.

use crate::time::{SimTime, Validity};
use ripki_crypto::keystore::KeyId;
use ripki_crypto::schnorr::{PublicKey, SecretKey, Signature};
use ripki_crypto::sha256::{sha256, Digest};
use ripki_crypto::tlv::{Reader, TlvError, Writer};
use std::collections::BTreeSet;
use std::fmt;

/// A CA's revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crl {
    /// Key id of the issuing CA.
    pub issuer_key_id: KeyId,
    /// Serials of revoked certificates, sorted (canonical).
    pub revoked_serials: BTreeSet<u64>,
    /// thisUpdate/nextUpdate window during which the CRL is current.
    pub validity: Validity,
    /// CA signature over the TBS bytes.
    pub signature: Signature,
}

impl Crl {
    /// Canonical to-be-signed encoding.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(0x01, self.issuer_key_id.0.as_bytes())
            .put_u64(0x02, self.validity.not_before.0)
            .put_u64(0x03, self.validity.not_after.0)
            .put_u32(0x04, self.revoked_serials.len() as u32);
        for serial in &self.revoked_serials {
            w.put_u64(0x05, *serial);
        }
        w.finish().to_vec()
    }

    /// Full encoding including signature; hashed into manifests.
    pub fn encoded(&self) -> Vec<u8> {
        let mut bytes = self.tbs_bytes();
        bytes.extend_from_slice(&self.signature.to_bytes());
        bytes
    }

    /// SHA-256 of the full encoding.
    pub fn digest(&self) -> Digest {
        sha256(&self.encoded())
    }

    /// Decode a CRL from its [`encoded`](Crl::encoded) bytes.
    pub fn decode(bytes: &[u8]) -> Result<Crl, TlvError> {
        if bytes.len() < 32 {
            return Err(TlvError::Truncated);
        }
        let (tbs, sig) = bytes.split_at(bytes.len() - 32);
        let mut r = Reader::new(tbs);
        let issuer_raw = r.get_bytes(0x01)?;
        if issuer_raw.len() != 32 {
            return Err(TlvError::BadLength {
                tag: 0x01,
                expected: 32,
                found: issuer_raw.len(),
            });
        }
        let mut issuer_digest = [0u8; 32];
        issuer_digest.copy_from_slice(issuer_raw);
        let not_before = crate::time::SimTime(r.get_u64(0x02)?);
        let not_after = crate::time::SimTime(r.get_u64(0x03)?);
        let count = r.get_u32(0x04)?;
        let mut revoked_serials = BTreeSet::new();
        for _ in 0..count {
            revoked_serials.insert(r.get_u64(0x05)?);
        }
        r.finish()?;
        let mut sig_bytes = [0u8; 32];
        sig_bytes.copy_from_slice(sig);
        Ok(Crl {
            issuer_key_id: KeyId(ripki_crypto::sha256::Digest(issuer_digest)),
            revoked_serials,
            validity: Validity::new(not_before, not_after),
            signature: Signature::from_bytes(&sig_bytes),
        })
    }

    /// Issue a CRL signed by `issuer_secret`.
    pub fn issue(
        issuer_secret: &SecretKey,
        issuer_key_id: KeyId,
        revoked_serials: impl IntoIterator<Item = u64>,
        validity: Validity,
    ) -> Crl {
        let mut crl = Crl {
            issuer_key_id,
            revoked_serials: revoked_serials.into_iter().collect(),
            validity,
            signature: Signature { e: 1, s: 0 },
        };
        crl.signature = issuer_secret.sign(&crl.tbs_bytes());
        crl
    }

    /// Verify the CA's signature.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> bool {
        issuer_key
            .verify(&self.tbs_bytes(), &self.signature)
            .is_ok()
    }

    /// Whether `serial` is revoked by this CRL.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked_serials.contains(&serial)
    }

    /// Whether the CRL is current at `now`.
    pub fn is_current(&self, now: SimTime) -> bool {
        self.validity.contains(now)
    }

    /// Fold this CRL into a republication fingerprint. The deterministic
    /// signature covers issuer, window, and the full revocation set, so
    /// signature + entry count distinguishes any two distinctly issued
    /// CRLs without walking the serials.
    pub fn fold_fingerprint(&self, fp: &mut crate::repo::Fingerprint) {
        fp.write_u64(self.revoked_serials.len() as u64);
        fp.write(&self.signature.to_bytes());
    }
}

impl fmt::Display for Crl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CRL by {} ({} revoked, {})",
            self.issuer_key_id,
            self.revoked_serials.len(),
            self.validity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use ripki_crypto::keystore::Keypair;

    fn make() -> (Keypair, Crl) {
        let ca = Keypair::derive(9, "crl-ca");
        let crl = Crl::issue(
            &ca.secret,
            ca.key_id,
            [5, 3, 5, 9],
            Validity::starting(SimTime::EPOCH, Duration::days(7)),
        );
        (ca, crl)
    }

    #[test]
    fn issue_verify_and_membership() {
        let (ca, crl) = make();
        assert!(crl.verify_signature(&ca.public));
        assert!(crl.is_revoked(3));
        assert!(crl.is_revoked(5));
        assert!(crl.is_revoked(9));
        assert!(!crl.is_revoked(4));
        // Duplicates collapsed.
        assert_eq!(crl.revoked_serials.len(), 3);
    }

    #[test]
    fn currency_window() {
        let (_, crl) = make();
        assert!(crl.is_current(SimTime::EPOCH));
        assert!(crl.is_current(SimTime::EPOCH + Duration::days(7)));
        assert!(!crl.is_current(SimTime::EPOCH + Duration::days(8)));
    }

    #[test]
    fn adding_revocation_breaks_signature() {
        let (ca, crl) = make();
        let mut tampered = crl.clone();
        tampered.revoked_serials.insert(77);
        assert!(!tampered.verify_signature(&ca.public));
        assert_ne!(tampered.digest(), crl.digest());
    }

    #[test]
    fn removing_revocation_breaks_signature() {
        let (ca, crl) = make();
        let mut tampered = crl.clone();
        tampered.revoked_serials.remove(&3);
        assert!(!tampered.verify_signature(&ca.public));
    }

    #[test]
    fn wrong_issuer_rejected() {
        let (_, crl) = make();
        let other = Keypair::derive(10, "other");
        assert!(!crl.verify_signature(&other.public));
    }

    #[test]
    fn empty_crl_is_valid() {
        let ca = Keypair::derive(9, "crl-ca");
        let crl = Crl::issue(
            &ca.secret,
            ca.key_id,
            [],
            Validity::starting(SimTime::EPOCH, Duration::days(7)),
        );
        assert!(crl.verify_signature(&ca.public));
        assert!(!crl.is_revoked(1));
    }
}
