//! Simulated time.
//!
//! RPKI validity is wall-clock-based (notBefore/notAfter, CRL and manifest
//! currency). The workspace is fully deterministic, so time is a plain
//! counter of simulated seconds owned by the scenario, not the OS clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// An instant in simulated time (seconds since the simulation epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// A convenient "now" for scenarios: one simulated year in.
    pub fn start_of_study() -> SimTime {
        SimTime::EPOCH + Duration::days(365)
    }

    /// Seconds since the epoch.
    pub fn as_secs(&self) -> u64 {
        self.0
    }
}

/// A span of simulated time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Duration(pub u64);

impl Duration {
    /// A span of `n` seconds.
    pub const fn secs(n: u64) -> Duration {
        Duration(n)
    }

    /// A span of `n` hours.
    pub const fn hours(n: u64) -> Duration {
        Duration(n * 3600)
    }

    /// A span of `n` days.
    pub const fn days(n: u64) -> Duration {
        Duration(n * 86_400)
    }

    /// A span of `n` 365-day years.
    pub const fn years(n: u64) -> Duration {
        Duration(n * 365 * 86_400)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / 86_400;
        let rem = self.0 % 86_400;
        write!(f, "T+{days}d{:02}h", rem / 3600)
    }
}

/// A notBefore/notAfter validity window (inclusive on both ends, like
/// X.509).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Validity {
    /// First instant at which the object is valid.
    pub not_before: SimTime,
    /// Last instant at which the object is valid.
    pub not_after: SimTime,
}

impl Validity {
    /// Build a window; callers must keep `not_before <= not_after`.
    pub fn new(not_before: SimTime, not_after: SimTime) -> Validity {
        debug_assert!(not_before <= not_after);
        Validity {
            not_before,
            not_after,
        }
    }

    /// A window starting at `from` and lasting `dur`.
    pub fn starting(from: SimTime, dur: Duration) -> Validity {
        Validity {
            not_before: from,
            not_after: from + dur,
        }
    }

    /// Whether `now` lies within the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// Whether the window has already ended at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now > self.not_after
    }

    /// Whether the window has not yet begun at `now`.
    pub fn premature(&self, now: SimTime) -> bool {
        now < self.not_before
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.not_before, self.not_after)
    }
}

/// A maximal half-open interval `[lo, hi)` of instants over which a set
/// of validity-window decisions is constant.
///
/// Every window check (`contains`, `expired`, `premature`) can only flip
/// at a window's `not_before` or at `not_after + 1`. An [`Era`] built by
/// [`observe`](Era::observe)-ing every window consulted during a
/// computation therefore certifies: the computation's outcome is
/// identical for any `now` inside the era. The incremental validator
/// caches per-publication-point results keyed on their era, so advancing
/// simulated time only revalidates points whose era the new instant
/// left — the expiry sweep touches exactly the expired subtrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Era {
    /// First instant of the era (inclusive).
    pub lo: SimTime,
    /// First instant after the era (exclusive); `SimTime(u64::MAX)`
    /// means unbounded.
    pub hi: SimTime,
}

impl Era {
    /// The era covering all of simulated time (no windows observed yet).
    pub fn unbounded() -> Era {
        Era {
            lo: SimTime(0),
            hi: SimTime(u64::MAX),
        }
    }

    /// Whether `now` lies inside the era.
    pub fn contains(&self, now: SimTime) -> bool {
        self.lo <= now && now < self.hi
    }

    /// Narrow the era around `now` by the flip instants of `window`.
    pub fn observe(&mut self, window: &Validity, now: SimTime) {
        let flips = [
            window.not_before,
            SimTime(window.not_after.0.saturating_add(1)),
        ];
        for flip in flips {
            if flip <= now {
                if flip > self.lo {
                    self.lo = flip;
                }
            } else if flip < self.hi {
                self.hi = flip;
            }
        }
    }
}

impl Default for Era {
    fn default() -> Era {
        Era::unbounded()
    }
}

impl fmt::Display for Era {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi.0 == u64::MAX {
            write!(f, "[{} .. ∞)", self.lo)
        } else {
            write!(f, "[{} .. {})", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + Duration::secs(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - Duration::secs(150), SimTime::EPOCH);
        // Saturation, no panic.
        assert_eq!(SimTime(10) - Duration::secs(100), SimTime(0));
        assert_eq!(Duration::days(1).0, 86_400);
        assert_eq!(Duration::hours(2).0, 7_200);
        assert_eq!(Duration::years(1).0, 365 * 86_400);
    }

    #[test]
    fn validity_window_inclusive() {
        let v = Validity::starting(SimTime(100), Duration::secs(10));
        assert!(!v.contains(SimTime(99)));
        assert!(v.contains(SimTime(100)));
        assert!(v.contains(SimTime(110)));
        assert!(!v.contains(SimTime(111)));
        assert!(v.premature(SimTime(99)));
        assert!(v.expired(SimTime(111)));
        assert!(!v.expired(SimTime(110)));
        assert!(!v.premature(SimTime(100)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime(86_400 + 3_600).to_string(), "T+1d01h");
        let v = Validity::starting(SimTime::EPOCH, Duration::days(2));
        assert_eq!(v.to_string(), "[T+0d00h .. T+2d00h]");
    }

    #[test]
    fn era_narrows_to_constant_outcome_interval() {
        let now = SimTime(500);
        let mut era = Era::unbounded();
        // A window fully in the past and one fully in the future.
        era.observe(&Validity::new(SimTime(100), SimTime(200)), now);
        era.observe(&Validity::new(SimTime(800), SimTime(900)), now);
        // Flips at 100, 201, 800, 901; around 500 that is [201, 800).
        assert_eq!(era.lo, SimTime(201));
        assert_eq!(era.hi, SimTime(800));
        assert!(era.contains(SimTime(201)));
        assert!(era.contains(SimTime(799)));
        assert!(!era.contains(SimTime(800)));
        assert!(!era.contains(SimTime(200)));
        // A window containing `now` narrows to its own interior flips.
        let mut era = Era::unbounded();
        era.observe(&Validity::new(SimTime(400), SimTime(600)), now);
        assert_eq!(era.lo, SimTime(400));
        assert_eq!(era.hi, SimTime(601));
    }

    #[test]
    fn era_outcome_constant_within() {
        // Brute-force: for a handful of windows, the decision vector is
        // constant across every instant of the era computed at `now`.
        let windows = [
            Validity::new(SimTime(10), SimTime(20)),
            Validity::new(SimTime(15), SimTime(40)),
            Validity::new(SimTime(35), SimTime(60)),
        ];
        for now_raw in 0..80u64 {
            let now = SimTime(now_raw);
            let mut era = Era::unbounded();
            for w in &windows {
                era.observe(w, now);
            }
            let decisions =
                |t: SimTime| windows.map(|w| (w.contains(t), w.expired(t), w.premature(t)));
            let at_now = decisions(now);
            for t in era.lo.0..era.hi.0.min(100) {
                assert_eq!(decisions(SimTime(t)), at_now, "era {era} broken at {t}");
            }
        }
    }
}
