//! Resource certificates (RFC 6487, simplified).
//!
//! One struct serves both certificate kinds:
//!
//! * **CA certificates** (`is_ca = true`) delegate resources down the
//!   hierarchy; their subject keys sign child certificates, CRLs, and
//!   manifests.
//! * **End-entity certificates** (`is_ca = false`) are one-time keys that
//!   sign a single object (a ROA).
//!
//! The to-be-signed (TBS) portion is the canonical TLV encoding of all
//! fields except the signature; the issuer signs exactly those bytes, so
//! any field mutation is detected at verification time.

use crate::resources::Resources;
use crate::time::Validity;
use ripki_crypto::keystore::KeyId;
use ripki_crypto::schnorr::{PublicKey, SecretKey, Signature};
use ripki_crypto::sha256::{sha256, Digest};
use ripki_crypto::tlv::{Reader, TlvError, Writer};
use std::fmt;

/// A resource certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cert {
    /// Serial number, unique per issuer (CRLs revoke by serial).
    pub serial: u64,
    /// Human-readable subject, e.g. `"RIPE"` or `"ISP-204 production"`.
    pub subject: String,
    /// The subject's public key.
    pub subject_key: PublicKey,
    /// Authority key identifier: hash of the issuer's public key. For
    /// self-signed trust-anchor certificates this equals the subject's own
    /// key id.
    pub issuer_key_id: KeyId,
    /// Validity window.
    pub validity: Validity,
    /// RFC 3779 resources the certificate speaks for.
    pub resources: Resources,
    /// Whether the subject may act as a CA.
    pub is_ca: bool,
    /// Issuer's signature over [`tbs_bytes`](Cert::tbs_bytes).
    pub signature: Signature,
}

impl Cert {
    /// Canonical to-be-signed encoding.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(0x01, self.serial)
            .put_str(0x02, &self.subject)
            .put_u128(0x03, self.subject_key.element())
            .put_bytes(0x04, self.issuer_key_id.0.as_bytes())
            .put_u64(0x05, self.validity.not_before.0)
            .put_u64(0x06, self.validity.not_after.0)
            .put_u8(0x07, self.is_ca as u8);
        self.resources.encode(&mut w);
        w.finish().to_vec()
    }

    /// Full canonical encoding including the signature — the bytes whose
    /// hash appears in manifests.
    pub fn encoded(&self) -> Vec<u8> {
        let mut bytes = self.tbs_bytes();
        bytes.extend_from_slice(&self.signature.to_bytes());
        bytes
    }

    /// SHA-256 over [`encoded`](Cert::encoded); manifests list this.
    pub fn digest(&self) -> Digest {
        sha256(&self.encoded())
    }

    /// Key identifier of the subject key.
    pub fn subject_key_id(&self) -> KeyId {
        KeyId::of(&self.subject_key)
    }

    /// Fold this certificate into a republication fingerprint. The
    /// deterministic signature covers the full TBS encoding, so serial +
    /// signature distinguishes any two distinctly *issued* certificates
    /// without hashing their contents.
    pub fn fold_fingerprint(&self, fp: &mut crate::repo::Fingerprint) {
        fp.write_u64(self.serial);
        fp.write(&self.signature.to_bytes());
    }

    /// Whether this certificate claims to be self-signed (a trust anchor).
    pub fn is_self_signed(&self) -> bool {
        self.subject_key_id() == self.issuer_key_id
    }

    /// Verify the signature against the issuer's public key.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> bool {
        issuer_key
            .verify(&self.tbs_bytes(), &self.signature)
            .is_ok()
    }

    /// Decode a certificate from its [`encoded`](Cert::encoded) bytes.
    pub fn decode(bytes: &[u8]) -> Result<Cert, TlvError> {
        if bytes.len() < 32 {
            return Err(TlvError::Truncated);
        }
        let (tbs, sig) = bytes.split_at(bytes.len() - 32);
        let mut r = Reader::new(tbs);
        let serial = r.get_u64(0x01)?;
        let subject = r.get_str(0x02)?.to_string();
        let subject_key = PublicKey::from_element(r.get_u128(0x03)?);
        let issuer_raw = r.get_bytes(0x04)?;
        if issuer_raw.len() != 32 {
            return Err(TlvError::BadLength {
                tag: 0x04,
                expected: 32,
                found: issuer_raw.len(),
            });
        }
        let mut issuer_digest = [0u8; 32];
        issuer_digest.copy_from_slice(issuer_raw);
        let not_before = crate::time::SimTime(r.get_u64(0x05)?);
        let not_after = crate::time::SimTime(r.get_u64(0x06)?);
        let is_ca = r.get_u8(0x07)? != 0;
        let resources = Resources::decode(&mut r)?;
        r.finish()?;
        let mut sig_bytes = [0u8; 32];
        sig_bytes.copy_from_slice(sig);
        Ok(Cert {
            serial,
            subject,
            subject_key,
            issuer_key_id: KeyId(ripki_crypto::sha256::Digest(issuer_digest)),
            validity: Validity::new(not_before, not_after),
            resources,
            is_ca,
            signature: Signature::from_bytes(&sig_bytes),
        })
    }

    /// Issue a certificate: fills all fields and signs with `issuer_key`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        serial: u64,
        subject: &str,
        subject_key: PublicKey,
        issuer_secret: &SecretKey,
        issuer_key_id: KeyId,
        validity: Validity,
        resources: Resources,
        is_ca: bool,
    ) -> Cert {
        let mut cert = Cert {
            serial,
            subject: subject.to_string(),
            subject_key,
            issuer_key_id,
            validity,
            resources,
            is_ca,
            signature: Signature { e: 1, s: 0 },
        };
        cert.signature = issuer_secret.sign(&cert.tbs_bytes());
        cert
    }
}

impl fmt::Display for Cert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cert #{} \"{}\" ({})",
            if self.is_ca { "CA" } else { "EE" },
            self.serial,
            self.subject,
            self.validity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, SimTime};
    use ripki_crypto::keystore::Keypair;
    use ripki_net::IpPrefix;

    fn keys(label: &str) -> Keypair {
        Keypair::derive(1, label)
    }

    fn validity() -> Validity {
        Validity::starting(SimTime::EPOCH, Duration::years(1))
    }

    fn issue_simple(issuer: &Keypair, subject: &Keypair, is_ca: bool) -> Cert {
        Cert::issue(
            7,
            "test subject",
            subject.public,
            &issuer.secret,
            issuer.key_id,
            validity(),
            Resources::from_prefixes(vec!["10.0.0.0/8".parse::<IpPrefix>().unwrap()]),
            is_ca,
        )
    }

    #[test]
    fn issue_and_verify() {
        let issuer = keys("issuer");
        let subject = keys("subject");
        let cert = issue_simple(&issuer, &subject, true);
        assert!(cert.verify_signature(&issuer.public));
        assert!(!cert.verify_signature(&subject.public));
        assert!(!cert.is_self_signed());
        assert_eq!(cert.subject_key_id(), subject.key_id);
    }

    #[test]
    fn self_signed_detection() {
        let ta = keys("ta");
        let cert = Cert::issue(
            1,
            "root",
            ta.public,
            &ta.secret,
            ta.key_id,
            validity(),
            Resources::empty(),
            true,
        );
        assert!(cert.is_self_signed());
        assert!(cert.verify_signature(&ta.public));
    }

    #[test]
    fn any_field_mutation_breaks_signature() {
        let issuer = keys("issuer");
        let subject = keys("subject");
        let cert = issue_simple(&issuer, &subject, true);

        let mut m = cert.clone();
        m.serial += 1;
        assert!(!m.verify_signature(&issuer.public));

        let mut m = cert.clone();
        m.subject.push('x');
        assert!(!m.verify_signature(&issuer.public));

        let mut m = cert.clone();
        m.validity.not_after = m.validity.not_after + Duration::years(10);
        assert!(!m.verify_signature(&issuer.public));

        let mut m = cert.clone();
        m.resources = Resources::from_prefixes(vec![
            "10.0.0.0/8".parse::<IpPrefix>().unwrap(),
            "11.0.0.0/8".parse::<IpPrefix>().unwrap(),
        ]);
        assert!(!m.verify_signature(&issuer.public));

        let mut m = cert.clone();
        m.is_ca = false;
        assert!(!m.verify_signature(&issuer.public));

        let mut m = cert.clone();
        m.subject_key = keys("other").public;
        assert!(!m.verify_signature(&issuer.public));
    }

    #[test]
    fn digest_covers_signature() {
        let issuer = keys("issuer");
        let subject = keys("subject");
        let a = issue_simple(&issuer, &subject, true);
        let mut b = a.clone();
        b.signature = Signature {
            e: a.signature.e ^ 1,
            s: a.signature.s,
        };
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn display_mentions_kind() {
        let issuer = keys("issuer");
        let subject = keys("subject");
        assert!(issue_simple(&issuer, &subject, true)
            .to_string()
            .starts_with("CA"));
        assert!(issue_simple(&issuer, &subject, false)
            .to_string()
            .starts_with("EE"));
    }
}
