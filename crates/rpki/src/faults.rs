//! Fault injection for repositories.
//!
//! Following the smoltcp tradition of first-class fault injection, these
//! helpers corrupt a finished [`Repository`] the way real-world failures
//! do. Tests and ablation benches use them to prove that every validator
//! rejection path fires (and that *only* the intended objects are lost).
//!
//! All functions mutate in place and return how many objects they touched.

use crate::manifest::Manifest;
use crate::repo::Repository;
use crate::time::{Duration, Validity};
use ripki_crypto::keystore::KeyId;
use ripki_crypto::schnorr::Signature;

/// Flip a bit in every ROA content signature at `ca`'s publication point,
/// simulating storage corruption or a broken signer.
pub fn corrupt_roa_signatures(repo: &mut Repository, ca: KeyId) -> usize {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return 0;
    };
    for roa in &mut pp.roas {
        roa.signature = Signature {
            e: roa.signature.e ^ 1,
            s: roa.signature.s,
        };
    }
    pp.roas.len()
}

/// Replace the CRL with one whose validity window ended in the past,
/// simulating an unattended CA that stopped re-signing (the most common
/// real-world RPKI operational failure).
pub fn stale_crl(repo: &mut Repository, ca: KeyId) -> usize {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return 0;
    };
    let v = pp.crl.validity;
    // Shift the window to end before it begins relative to "now" users:
    // one second of life at the original not_before.
    pp.crl.validity = Validity::new(v.not_before, v.not_before + Duration::secs(1));
    // NOTE: deliberately does NOT re-sign — a stale *but authentic* CRL.
    // The signature is now invalid too (validity is in the TBS), which is
    // fine: the validator reports the first failure it hits.
    1
}

/// Drop an object from the publication point without touching the
/// manifest: the classic "withheld object" attack from *On the Risk of
/// Misbehaving RPKI Authorities*. Returns the number of ROAs removed.
pub fn withhold_roa(repo: &mut Repository, ca: KeyId, index: usize) -> usize {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return 0;
    };
    if index < pp.roas.len() {
        pp.roas.remove(index);
        1
    } else {
        0
    }
}

/// Replace one ROA's bytes after manifest issuance (hash mismatch).
pub fn substitute_roa_asn(repo: &mut Repository, ca: KeyId, new_asn: u32) -> usize {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return 0;
    };
    let mut touched = 0;
    for roa in &mut pp.roas {
        roa.asn = ripki_net::Asn::new(new_asn);
        touched += 1;
    }
    touched
}

/// Add a manifest entry for a file that is not published ("ghost entry").
pub fn ghost_manifest_entry(repo: &mut Repository, ca: KeyId) -> usize {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return 0;
    };
    let mut entries = pp.manifest.entries.clone();
    entries.insert(
        "ghost.roa".to_string(),
        ripki_crypto::sha256::sha256(b"never published"),
    );
    // Signed by nobody — reuse the old signature; the signature check
    // fails first unless callers re-sign. To exercise the *mismatch*
    // (not signature) path, forge with the correct structure but keep
    // the break localized: tests that want a signed-but-inconsistent
    // manifest should use [`resign_manifest`] afterwards.
    pp.manifest = Manifest {
        entries,
        ..pp.manifest.clone()
    };
    1
}

/// Re-sign `ca`'s manifest with the given secret key (for tests that model
/// a complicit CA producing a *validly signed* inconsistent manifest).
pub fn resign_manifest(
    repo: &mut Repository,
    ca: KeyId,
    secret: &ripki_crypto::schnorr::SecretKey,
) -> bool {
    let Some(pp) = repo.points.get_mut(&ca) else {
        return false;
    };
    pp.manifest = Manifest::issue(
        secret,
        ca,
        pp.manifest.manifest_number + 1,
        pp.manifest.entries.clone(),
        pp.manifest.validity,
    );
    true
}

/// Delete `ca`'s publication point entirely (unreachable repository).
pub fn unpublish(repo: &mut Repository, ca: KeyId) -> bool {
    repo.points.remove(&ca).is_some()
}

/// Convenience: iterate over all publication-point key ids (sorted for
/// determinism).
pub fn publication_points(repo: &Repository) -> Vec<KeyId> {
    let mut ids: Vec<KeyId> = repo.points.keys().copied().collect();
    ids.sort();
    ids
}

/// Which ROAs survive validation after a fault — a compact summary for
/// tests: `(vrps_before, vrps_after)`.
pub fn vrp_delta(
    before: &crate::validate::ValidationReport,
    after: &crate::validate::ValidationReport,
) -> (usize, usize) {
    (before.vrps.len(), after.vrps.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::RepositoryBuilder;
    use crate::resources::Resources;
    use crate::roa::RoaPrefix;
    use crate::time::{Duration, SimTime};
    use crate::validate::{validate, RejectReason};
    use ripki_net::{Asn, IpPrefix};

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn build() -> (Repository, KeyId, SimTime) {
        let mut b = RepositoryBuilder::new(8, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", Resources::from_prefixes(vec![p("80.0.0.0/4")]));
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec![p("85.0.0.0/8")]))
            .unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        (b.finalize(), isp, SimTime::EPOCH + Duration::days(1))
    }

    #[test]
    fn corrupt_signatures_rejects_roas_only() {
        let (mut repo, isp, now) = build();
        let before = validate(&repo, now);
        assert_eq!(corrupt_roa_signatures(&mut repo, isp), 2);
        let after = validate(&repo, now);
        assert_eq!(vrp_delta(&before, &after), (2, 0));
        // Manifest hashes broke too; under strict manifests that is the
        // reported reason.
        assert!(after
            .log
            .iter()
            .any(|e| matches!(e.rejected, Some(RejectReason::ManifestMismatch(_)))));
    }

    #[test]
    fn stale_crl_kills_publication_point() {
        let (mut repo, isp, now) = build();
        assert_eq!(stale_crl(&mut repo, isp), 1);
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| matches!(e.rejected, Some(RejectReason::BadCrl(_)))));
    }

    #[test]
    fn withheld_roa_detected_via_manifest() {
        let (mut repo, isp, now) = build();
        assert_eq!(withhold_roa(&mut repo, isp, 0), 1);
        let report = validate(&repo, now);
        // Strict manifests: whole point rejected, both VRPs gone — the
        // "withholding is detectable" property from the misbehaving-
        // authorities paper.
        assert!(report.vrps.is_empty());
        assert!(report.log.iter().any(|e| {
            matches!(&e.rejected, Some(RejectReason::ManifestMismatch(d)) if d.contains("manifest but not published"))
        }));
    }

    #[test]
    fn substituted_roa_hash_mismatch() {
        let (mut repo, isp, now) = build();
        assert_eq!(substitute_roa_asn(&mut repo, isp, 666), 2);
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report.log.iter().any(|e| {
            matches!(&e.rejected, Some(RejectReason::ManifestMismatch(d)) if d.contains("hash mismatch"))
        }));
    }

    #[test]
    fn ghost_entry_detected_after_resign() {
        let (mut repo, isp, now) = build();
        ghost_manifest_entry(&mut repo, isp);
        let keys = ripki_crypto::keystore::Keypair::derive(8, "ca/ISP-1");
        assert!(resign_manifest(&mut repo, isp, &keys.secret));
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report.log.iter().any(|e| {
            matches!(&e.rejected, Some(RejectReason::ManifestMismatch(d)) if d.contains("ghost.roa"))
        }));
    }

    #[test]
    fn unpublish_removes_point() {
        let (mut repo, isp, now) = build();
        assert!(unpublish(&mut repo, isp));
        assert!(!unpublish(&mut repo, isp));
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
    }

    #[test]
    fn faults_on_unknown_ca_are_noops() {
        let (mut repo, _, _) = build();
        let bogus = ripki_crypto::keystore::Keypair::derive(99, "nobody").key_id;
        assert_eq!(corrupt_roa_signatures(&mut repo, bogus), 0);
        assert_eq!(stale_crl(&mut repo, bogus), 0);
        assert_eq!(withhold_roa(&mut repo, bogus, 0), 0);
        assert_eq!(substitute_roa_asn(&mut repo, bogus, 1), 0);
        assert_eq!(ghost_manifest_entry(&mut repo, bogus), 0);
    }

    #[test]
    fn publication_points_sorted() {
        let (repo, _, _) = build();
        let ids = publication_points(&repo);
        assert_eq!(ids.len(), 2);
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
    }
}
