//! Business-relationship exposure analysis (paper §5.2).
//!
//! The paper's operator interviews surfaced an RPKI-specific deterrent:
//! ROAs are a *proactive, public catalog*. A prefix owner who authorizes a
//! partner's AS — say a secret mutual-backup CDN arrangement — publishes
//! that relation **before** any route is ever announced. BGP collectors,
//! in contrast, only reveal a relation *after* routes carrying it
//! propagate.
//!
//! This module quantifies that asymmetry. Given
//!
//! * the ROA catalog (as `(prefix, asn)` authorizations), and
//! * the set of `(prefix, origin)` pairs actually observed in routing,
//!
//! it classifies every authorization as **operational** (observably
//! announced) or **latent** (authorized but never announced — exactly the
//! backup/standby relations operators worry about exposing).

use crate::validate::Vrp;
use ripki_net::{Asn, IpPrefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One authorization relation extracted from the ROA catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Authorization {
    /// The authorized prefix.
    pub prefix: IpPrefix,
    /// The AS authorized to originate it.
    pub asn: Asn,
}

/// Result of the exposure analysis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExposureReport {
    /// Authorizations whose (prefix, asn) was seen in BGP: the relation
    /// was public anyway.
    pub operational: Vec<Authorization>,
    /// Authorizations never observed in BGP: relations *only* the RPKI
    /// reveals (secret backups, standby arrangements, pre-provisioning).
    pub latent: Vec<Authorization>,
}

impl ExposureReport {
    /// Fraction of catalog relations that are latent (0 when empty).
    pub fn latent_fraction(&self) -> f64 {
        let total = self.operational.len() + self.latent.len();
        if total == 0 {
            0.0
        } else {
            self.latent.len() as f64 / total as f64
        }
    }

    /// Total relations in the catalog.
    pub fn total(&self) -> usize {
        self.operational.len() + self.latent.len()
    }
}

/// Classify every VRP against observed `(prefix, origin)` announcements.
///
/// A VRP is *operational* if some observed announcement matches it under
/// RFC 6811 semantics (covered by the VRP prefix, length ≤ maxLength,
/// same origin). Everything else is *latent*.
pub fn exposure(vrps: &[Vrp], announced: &BTreeSet<(IpPrefix, Asn)>) -> ExposureReport {
    let mut report = ExposureReport::default();
    for vrp in vrps {
        let auth = Authorization {
            prefix: vrp.prefix,
            asn: vrp.asn,
        };
        let used = announced.iter().any(|(pfx, origin)| {
            *origin == vrp.asn && vrp.prefix.covers(pfx) && pfx.len() <= vrp.max_length
        });
        if used {
            report.operational.push(auth);
        } else {
            report.latent.push(auth);
        }
    }
    report.operational.sort();
    report.operational.dedup();
    report.latent.sort();
    report.latent.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn vrp(prefix: &str, ml: u8, asn: u32) -> Vrp {
        Vrp {
            prefix: p(prefix),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    #[test]
    fn announced_relation_is_operational() {
        let vrps = vec![vrp("10.0.0.0/16", 16, 100)];
        let mut seen = BTreeSet::new();
        seen.insert((p("10.0.0.0/16"), Asn::new(100)));
        let rep = exposure(&vrps, &seen);
        assert_eq!(rep.operational.len(), 1);
        assert!(rep.latent.is_empty());
        assert_eq!(rep.latent_fraction(), 0.0);
    }

    #[test]
    fn unannounced_backup_is_latent() {
        // Primary AS100 announces; backup AS200 is authorized but silent.
        let vrps = vec![vrp("10.0.0.0/16", 16, 100), vrp("10.0.0.0/16", 16, 200)];
        let mut seen = BTreeSet::new();
        seen.insert((p("10.0.0.0/16"), Asn::new(100)));
        let rep = exposure(&vrps, &seen);
        assert_eq!(rep.operational.len(), 1);
        assert_eq!(rep.latent.len(), 1);
        assert_eq!(rep.latent[0].asn, Asn::new(200));
        assert!((rep.latent_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(rep.total(), 2);
    }

    #[test]
    fn more_specific_within_maxlength_counts_as_use() {
        let vrps = vec![vrp("10.0.0.0/16", 24, 100)];
        let mut seen = BTreeSet::new();
        seen.insert((p("10.0.5.0/24"), Asn::new(100)));
        let rep = exposure(&vrps, &seen);
        assert_eq!(rep.operational.len(), 1);
    }

    #[test]
    fn too_specific_announcement_does_not_count() {
        let vrps = vec![vrp("10.0.0.0/16", 20, 100)];
        let mut seen = BTreeSet::new();
        seen.insert((p("10.0.5.0/24"), Asn::new(100)));
        let rep = exposure(&vrps, &seen);
        assert_eq!(rep.latent.len(), 1);
    }

    #[test]
    fn different_origin_does_not_count() {
        let vrps = vec![vrp("10.0.0.0/16", 16, 100)];
        let mut seen = BTreeSet::new();
        seen.insert((p("10.0.0.0/16"), Asn::new(999)));
        let rep = exposure(&vrps, &seen);
        assert_eq!(rep.latent.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        let rep = exposure(&[], &BTreeSet::new());
        assert_eq!(rep.total(), 0);
        assert_eq!(rep.latent_fraction(), 0.0);
    }
}
