//! Top-down validation: from trust anchors to Validated ROA Payloads.
//!
//! This is the relying-party side (what Routinator or the RTRlib cache
//! does). The walk re-checks everything the issuing side promised:
//!
//! 1. trust anchor certificates are self-signed, within validity, CA;
//! 2. per publication point: the CRL verifies and is current, the
//!    manifest verifies, is current, and lists *exactly* the published
//!    objects with matching SHA-256 hashes;
//! 3. subordinate CA certificates verify against the issuer key, are
//!    within validity, unrevoked, flagged CA, and their RFC 3779
//!    resources are encompassed by the issuer's;
//! 4. ROAs: the embedded EE certificate passes the same checks (with
//!    `is_ca = false`), the payload verifies under the EE key, every
//!    ROA prefix is covered by the EE certificate's resources, and every
//!    `maxLength` is well-formed.
//!
//! Every decision is recorded in a [`ValidationEvent`]; accepted ROAs
//! contribute [`Vrp`]s. The paper's step 4 — "only cryptographically
//! correct ROAs are further used" — is [`ValidationReport::vrps`].

use crate::cert::Cert;
use crate::repo::{PublicationPoint, Repository};
use crate::ta::TrustAnchor;
use crate::time::{Era, SimTime};
use ripki_crypto::keystore::KeyId;
use ripki_net::{Asn, IpPrefix};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A Validated ROA Payload: the (prefix, maxLength, ASN) triple that
/// feeds route origin validation (RFC 6811).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vrp {
    /// Authorized prefix.
    pub prefix: IpPrefix,
    /// Maximum announced length considered authorized.
    pub max_length: u8,
    /// Authorized origin AS.
    pub asn: Asn,
}

impl fmt::Display for Vrp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{} => {}", self.prefix, self.max_length, self.asn)
    }
}

/// Why an object was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Signature did not verify under the issuer key.
    BadSignature,
    /// Certificate/CRL/manifest outside its validity window.
    Expired,
    /// Validity window has not started yet.
    NotYetValid,
    /// Serial listed on the issuer's CRL.
    Revoked,
    /// Subject claims resources the issuer does not hold.
    ResourceOverclaim,
    /// Trust anchor certificate is not self-signed or not a CA.
    MalformedTrustAnchor,
    /// Subordinate certificate not flagged CA but used as one.
    NotACa,
    /// EE certificate flagged CA (ROAs must embed EE certs).
    UnexpectedCa,
    /// The CRL of the publication point failed (reason nested).
    BadCrl(Box<RejectReason>),
    /// The manifest of the publication point failed (reason nested).
    BadManifest(Box<RejectReason>),
    /// Object missing from manifest, digest mismatch, or manifest lists a
    /// file the point does not publish.
    ManifestMismatch(String),
    /// ROA payload signature (by the EE key) failed.
    BadContentSignature,
    /// A ROA prefix entry violates `len <= maxLength <= bits`.
    MalformedRoaPrefix,
    /// ROA prefixes not covered by the EE certificate's resources.
    RoaResourceMismatch,
    /// CA has no publication point in the repository.
    MissingPublicationPoint,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadSignature => write!(f, "bad signature"),
            RejectReason::Expired => write!(f, "expired"),
            RejectReason::NotYetValid => write!(f, "not yet valid"),
            RejectReason::Revoked => write!(f, "revoked"),
            RejectReason::ResourceOverclaim => write!(f, "resource overclaim"),
            RejectReason::MalformedTrustAnchor => write!(f, "malformed trust anchor"),
            RejectReason::NotACa => write!(f, "not a CA certificate"),
            RejectReason::UnexpectedCa => write!(f, "EE slot holds a CA certificate"),
            RejectReason::BadCrl(r) => write!(f, "publication point CRL invalid: {r}"),
            RejectReason::BadManifest(r) => write!(f, "manifest invalid: {r}"),
            RejectReason::ManifestMismatch(d) => write!(f, "manifest mismatch: {d}"),
            RejectReason::BadContentSignature => write!(f, "ROA payload signature invalid"),
            RejectReason::MalformedRoaPrefix => write!(f, "malformed ROA prefix entry"),
            RejectReason::RoaResourceMismatch => {
                write!(f, "ROA prefixes exceed EE certificate resources")
            }
            RejectReason::MissingPublicationPoint => {
                write!(f, "no publication point for CA")
            }
        }
    }
}

/// One validation decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationEvent {
    /// Human-readable object description, e.g. `"CA cert #12 \"ISP-3\""`.
    pub object: String,
    /// The trust anchor the walk started from.
    pub trust_anchor: String,
    /// `None` if accepted, otherwise the rejection reason.
    pub rejected: Option<RejectReason>,
}

impl ValidationEvent {
    pub(crate) fn accepted(ta: &str, object: impl Into<String>) -> ValidationEvent {
        ValidationEvent {
            object: object.into(),
            trust_anchor: ta.to_string(),
            rejected: None,
        }
    }

    pub(crate) fn rejected(
        ta: &str,
        object: impl Into<String>,
        reason: RejectReason,
    ) -> ValidationEvent {
        ValidationEvent {
            object: object.into(),
            trust_anchor: ta.to_string(),
            rejected: Some(reason),
        }
    }
}

/// Options governing strictness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// If `true` (default), a publication point whose manifest is invalid
    /// or inconsistent is discarded wholesale. If `false`, objects are
    /// still processed individually (RFC 6486 left this to local policy;
    /// the ablation bench compares both).
    pub strict_manifests: bool,
}

impl Default for ValidationOptions {
    fn default() -> ValidationOptions {
        ValidationOptions {
            strict_manifests: true,
        }
    }
}

/// The outcome of a full validation run.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All validated ROA payloads, deduplicated and sorted.
    pub vrps: Vec<Vrp>,
    /// Every accept/reject decision taken during the walk.
    pub log: Vec<ValidationEvent>,
}

impl ValidationReport {
    /// Number of rejected objects.
    pub fn rejected_count(&self) -> usize {
        self.log.iter().filter(|e| e.rejected.is_some()).count()
    }

    /// Number of accepted objects.
    pub fn accepted_count(&self) -> usize {
        self.log.iter().filter(|e| e.rejected.is_none()).count()
    }

    /// Events with a given rejection reason (discriminant match on the
    /// outer variant).
    pub fn rejections(&self) -> impl Iterator<Item = &ValidationEvent> {
        self.log.iter().filter(|e| e.rejected.is_some())
    }
}

/// Validate `repo` as of `now` with default options.
pub fn validate(repo: &Repository, now: SimTime) -> ValidationReport {
    validate_with(repo, now, ValidationOptions::default())
}

/// Validate `repo` as of `now`.
pub fn validate_with(
    repo: &Repository,
    now: SimTime,
    options: ValidationOptions,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut vrps: HashSet<Vrp> = HashSet::new();
    for ta in &repo.trust_anchors {
        let mut era = Era::unbounded();
        report.log.push(trust_anchor_event(ta, now, &mut era));
        if report.log.last().is_some_and(|e| e.rejected.is_some()) {
            continue;
        }
        // Guard against certificate cycles: a CA key is walked only once.
        let mut visited: HashSet<KeyId> = HashSet::new();
        walk_ca(
            repo,
            &ta.cert,
            &ta.name,
            now,
            options,
            &mut report,
            &mut vrps,
            &mut visited,
        );
    }
    let mut sorted: Vec<Vrp> = vrps.into_iter().collect();
    sorted.sort();
    report.vrps = sorted;
    report
}

/// Check a trust anchor certificate and produce its accept/reject event.
///
/// `era` is narrowed to the interval of `now` values over which the
/// verdict is unchanged (the incremental validator caches on it).
pub(crate) fn trust_anchor_event(ta: &TrustAnchor, now: SimTime, era: &mut Era) -> ValidationEvent {
    let cert = &ta.cert;
    let desc = format!("trust anchor \"{}\"", ta.name);
    if !cert.is_self_signed() || !cert.is_ca {
        return ValidationEvent::rejected(&ta.name, desc, RejectReason::MalformedTrustAnchor);
    }
    if !cert.verify_signature(&cert.subject_key) {
        return ValidationEvent::rejected(&ta.name, desc, RejectReason::BadSignature);
    }
    era.observe(&cert.validity, now);
    if let Some(reason) = window_reason(cert, now) {
        return ValidationEvent::rejected(&ta.name, desc, reason);
    }
    ValidationEvent::accepted(&ta.name, desc)
}

fn window_reason(cert: &Cert, now: SimTime) -> Option<RejectReason> {
    if cert.validity.premature(now) {
        Some(RejectReason::NotYetValid)
    } else if cert.validity.expired(now) {
        Some(RejectReason::Expired)
    } else {
        None
    }
}

/// Compare the manifest against the actually published objects.
fn manifest_consistency(pp: &PublicationPoint) -> Result<(), String> {
    let mut expected: Vec<(String, ripki_crypto::sha256::Digest)> = Vec::new();
    expected.push((PublicationPoint::CRL_FILE_NAME.to_string(), pp.crl.digest()));
    for cert in &pp.child_certs {
        expected.push((PublicationPoint::cert_file_name(cert), cert.digest()));
    }
    for roa in &pp.roas {
        expected.push((PublicationPoint::roa_file_name(roa), roa.digest()));
    }
    for (name, digest) in &expected {
        match pp.manifest.digest_of(name) {
            None => return Err(format!("{name} published but not on manifest")),
            Some(listed) if listed != digest => return Err(format!("{name} hash mismatch")),
            Some(_) => {}
        }
    }
    if pp.manifest.entries.len() != expected.len() {
        let published: HashSet<&String> = expected.iter().map(|(n, _)| n).collect();
        for name in pp.manifest.entries.keys() {
            if !published.contains(name) {
                return Err(format!("{name} on manifest but not published"));
            }
        }
    }
    Ok(())
}

/// One logged decision of a publication-point validation, in walk order.
///
/// An accepted subordinate CA is kept as the certificate itself (not just
/// its accept event) so a cached outcome carries everything needed to
/// re-emit the event *and* descend into the child's own point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PointItem {
    /// A terminal decision: point-level failure, child/ROA reject, or
    /// ROA accept.
    Event(ValidationEvent),
    /// An accepted subordinate CA certificate; the walk emits its accept
    /// event and recurses into its publication point.
    Child(Box<Cert>),
}

/// The complete, self-contained outcome of validating one publication
/// point under a given issuing certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PointOutcome {
    /// Decisions in exactly the order `validate` logs them.
    pub items: Vec<PointItem>,
    /// VRPs contributed by this point's accepted ROAs. Duplicates are
    /// preserved: the incremental validator reference-counts them.
    pub vrps: Vec<Vrp>,
    /// Interval of `now` values over which this outcome is unchanged.
    /// Every validity window the walk consulted narrows it.
    pub era: Era,
}

/// The accept event emitted for a subordinate CA certificate.
pub(crate) fn ca_accept_event(ta_name: &str, child: &Cert) -> ValidationEvent {
    ValidationEvent::accepted(
        ta_name,
        format!("CA cert #{} \"{}\"", child.serial, child.subject),
    )
}

/// The reject event emitted for a CA whose publication point is absent.
pub(crate) fn missing_point_event(ta_name: &str, ca_cert: &Cert) -> ValidationEvent {
    ValidationEvent::rejected(
        ta_name,
        format!("publication point of \"{}\"", ca_cert.subject),
        RejectReason::MissingPublicationPoint,
    )
}

/// Validate a single publication point under its issuing certificate.
///
/// This is the one place the per-object checks live; the full walk and
/// the incremental validator both consume it. The returned era is only
/// narrowed by windows the walk actually consulted: a child whose
/// signature fails is rejected regardless of time, so its window does
/// not constrain the outcome.
pub(crate) fn validate_point(
    ca_cert: &Cert,
    pp: &PublicationPoint,
    ta_name: &str,
    now: SimTime,
    options: ValidationOptions,
) -> PointOutcome {
    let mut out = PointOutcome {
        items: Vec::new(),
        vrps: Vec::new(),
        era: Era::unbounded(),
    };
    let ca_desc = format!("publication point of \"{}\"", ca_cert.subject);

    // CRL checks. A broken CRL makes revocation status unknowable; the
    // point is unusable.
    if !pp.crl.verify_signature(&ca_cert.subject_key) {
        out.items.push(PointItem::Event(ValidationEvent::rejected(
            ta_name,
            ca_desc,
            RejectReason::BadCrl(Box::new(RejectReason::BadSignature)),
        )));
        return out;
    }
    out.era.observe(&pp.crl.validity, now);
    if !pp.crl.is_current(now) {
        out.items.push(PointItem::Event(ValidationEvent::rejected(
            ta_name,
            ca_desc,
            RejectReason::BadCrl(Box::new(RejectReason::Expired)),
        )));
        return out;
    }

    // Manifest checks.
    let manifest_ok = if !pp.manifest.verify_signature(&ca_cert.subject_key) {
        out.items.push(PointItem::Event(ValidationEvent::rejected(
            ta_name,
            &ca_desc,
            RejectReason::BadManifest(Box::new(RejectReason::BadSignature)),
        )));
        false
    } else {
        out.era.observe(&pp.manifest.validity, now);
        if !pp.manifest.is_current(now) {
            out.items.push(PointItem::Event(ValidationEvent::rejected(
                ta_name,
                &ca_desc,
                RejectReason::BadManifest(Box::new(RejectReason::Expired)),
            )));
            false
        } else if let Err(detail) = manifest_consistency(pp) {
            out.items.push(PointItem::Event(ValidationEvent::rejected(
                ta_name,
                &ca_desc,
                RejectReason::ManifestMismatch(detail),
            )));
            false
        } else {
            true
        }
    };
    if !manifest_ok && options.strict_manifests {
        return out;
    }

    // Subordinate CA certificates.
    for child in &pp.child_certs {
        let reason = if !child.verify_signature(&ca_cert.subject_key) {
            Some(RejectReason::BadSignature)
        } else if pp.crl.is_revoked(child.serial) {
            Some(RejectReason::Revoked)
        } else {
            out.era.observe(&child.validity, now);
            if let Some(r) = window_reason(child, now) {
                Some(r)
            } else if !child.is_ca {
                Some(RejectReason::NotACa)
            } else if !ca_cert.resources.encompasses(&child.resources) {
                Some(RejectReason::ResourceOverclaim)
            } else {
                None
            }
        };
        match reason {
            Some(r) => {
                let desc = format!("CA cert #{} \"{}\"", child.serial, child.subject);
                out.items.push(PointItem::Event(ValidationEvent::rejected(
                    ta_name, desc, r,
                )));
            }
            None => out.items.push(PointItem::Child(Box::new(child.clone()))),
        }
    }

    // ROAs.
    for roa in &pp.roas {
        let ee = &roa.ee;
        let reason = if !ee.verify_signature(&ca_cert.subject_key) {
            Some(RejectReason::BadSignature)
        } else if pp.crl.is_revoked(ee.serial) {
            Some(RejectReason::Revoked)
        } else {
            out.era.observe(&ee.validity, now);
            if let Some(r) = window_reason(ee, now) {
                Some(r)
            } else if ee.is_ca {
                Some(RejectReason::UnexpectedCa)
            } else if !ca_cert.resources.encompasses(&ee.resources) {
                Some(RejectReason::ResourceOverclaim)
            } else if !roa.verify_content_signature() {
                Some(RejectReason::BadContentSignature)
            } else if roa.prefixes.iter().any(|rp| !rp.is_well_formed()) {
                Some(RejectReason::MalformedRoaPrefix)
            } else if !ee.resources.prefixes.encompasses(&roa.claimed_prefixes()) {
                Some(RejectReason::RoaResourceMismatch)
            } else {
                None
            }
        };
        let desc = format!("ROA #{} ({})", roa.ee.serial, roa);
        match reason {
            Some(r) => out.items.push(PointItem::Event(ValidationEvent::rejected(
                ta_name, desc, r,
            ))),
            None => {
                out.items
                    .push(PointItem::Event(ValidationEvent::accepted(ta_name, desc)));
                for rp in &roa.prefixes {
                    out.vrps.push(Vrp {
                        prefix: rp.prefix,
                        max_length: rp.effective_max_length(),
                        asn: roa.asn,
                    });
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn walk_ca(
    repo: &Repository,
    ca_cert: &Cert,
    ta_name: &str,
    now: SimTime,
    options: ValidationOptions,
    report: &mut ValidationReport,
    vrps: &mut HashSet<Vrp>,
    visited: &mut HashSet<KeyId>,
) {
    let ca_id = ca_cert.subject_key_id();
    if !visited.insert(ca_id) {
        return;
    }
    let Some(pp) = repo.points.get(&ca_id) else {
        report.log.push(missing_point_event(ta_name, ca_cert));
        return;
    };
    let outcome = validate_point(ca_cert, pp, ta_name, now, options);
    for item in outcome.items {
        match item {
            PointItem::Event(event) => report.log.push(event),
            PointItem::Child(child) => {
                report.log.push(ca_accept_event(ta_name, &child));
                walk_ca(repo, &child, ta_name, now, options, report, vrps, visited);
            }
        }
    }
    vrps.extend(outcome.vrps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::RepositoryBuilder;
    use crate::resources::Resources;
    use crate::roa::RoaPrefix;
    use crate::time::Duration;
    use ripki_net::PrefixSet;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn res(prefixes: &[&str]) -> Resources {
        Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
    }

    /// TA → ISP → two ROAs; everything validates.
    fn happy_repo() -> (Repository, SimTime) {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4", "2001::/16"]));
        let isp = b
            .add_ca(ta, "ISP-1", res(&["85.0.0.0/8", "2001:600::/24"]))
            .unwrap();
        b.add_roa(
            isp,
            Asn::new(100),
            vec![RoaPrefix::up_to(p("85.1.0.0/16"), 24)],
        )
        .unwrap();
        b.add_roa(
            isp,
            Asn::new(100),
            vec![RoaPrefix::exact(p("2001:600::/32"))],
        )
        .unwrap();
        (b.finalize(), now)
    }

    #[test]
    fn happy_path_emits_all_vrps() {
        let (repo, now) = happy_repo();
        let report = validate(&repo, now);
        assert_eq!(report.rejected_count(), 0, "log: {:?}", report.log);
        assert_eq!(report.vrps.len(), 2);
        assert!(report.vrps.contains(&Vrp {
            prefix: p("85.1.0.0/16"),
            max_length: 24,
            asn: Asn::new(100),
        }));
        assert!(report.vrps.contains(&Vrp {
            prefix: p("2001:600::/32"),
            max_length: 32,
            asn: Asn::new(100),
        }));
        // TA + pubpoints’ objects: TA cert, ISP cert, 2 ROAs accepted.
        assert_eq!(report.accepted_count(), 4);
    }

    #[test]
    fn expired_ee_rejected() {
        let now_late = SimTime::EPOCH + Duration::years(2);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        // Two years later everything (certs 1y, CRLs 7d) is stale; the
        // TA (10y) survives but its publication point CRL is expired.
        let report = validate(&repo, now_late);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| matches!(e.rejected, Some(RejectReason::BadCrl(_)))));
    }

    #[test]
    fn validation_before_not_before_rejects() {
        let issue_at = SimTime::EPOCH + Duration::days(10);
        let mut b = RepositoryBuilder::new(5, issue_at);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        let report = validate(&repo, SimTime::EPOCH);
        assert!(report.vrps.is_empty());
    }

    #[test]
    fn revoked_roa_dropped() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        // ROA EEs got serials 3 and 4 (TA=1, ISP=2). Revoke the first.
        b.revoke(isp, 3).unwrap();
        let repo = b.finalize();
        let report = validate(&repo, now);
        assert_eq!(report.vrps.len(), 1);
        assert_eq!(report.vrps[0].asn, Asn::new(200));
        assert!(report
            .log
            .iter()
            .any(|e| e.rejected == Some(RejectReason::Revoked)));
    }

    #[test]
    fn revoked_ca_prunes_subtree() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.revoke(ta, 2).unwrap(); // ISP cert serial
        let repo = b.finalize();
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| e.rejected == Some(RejectReason::Revoked)));
    }

    #[test]
    fn tampered_roa_asn_rejected_as_bad_content_signature() {
        let (mut repo, now) = happy_repo();
        for pp in repo.points.values_mut() {
            for roa in &mut pp.roas {
                roa.asn = Asn::new(666);
            }
        }
        // Re-fix manifests? No — tampering also breaks manifest hashes.
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| matches!(e.rejected, Some(RejectReason::ManifestMismatch(_)))));
    }

    #[test]
    fn relaxed_manifests_still_catch_content_tamper() {
        let (mut repo, now) = happy_repo();
        for pp in repo.points.values_mut() {
            for roa in &mut pp.roas {
                roa.asn = Asn::new(666);
            }
        }
        let report = validate_with(
            &repo,
            now,
            ValidationOptions {
                strict_manifests: false,
            },
        );
        // Manifest mismatch logged, objects processed anyway, and the EE
        // content signature check still kills the tampered ROAs.
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| e.rejected == Some(RejectReason::BadContentSignature)));
    }

    #[test]
    fn overclaiming_ee_rejected() {
        // Build a valid repo, then maliciously widen an EE's resources
        // *with* a correct CA signature (a compromised CA key could do
        // this): the ROA claims space the CA does not hold, so the chain
        // check must reject it one level up.
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut repo = b.finalize();

        // Forge: re-issue the EE with resources outside the CA's holdings,
        // signed by the real CA key (replayed via the builder's key
        // derivation), and update the manifest accordingly.
        let ca_keys = ripki_crypto::keystore::Keypair::derive(5, "ca/ISP-1");
        let pp = repo.points.get_mut(&ca_keys.key_id).unwrap();
        let roa = &mut pp.roas[0];
        let mut forged_ee = roa.ee.clone();
        forged_ee.resources = Resources {
            prefixes: PrefixSet::from_prefixes(vec![p("9.0.0.0/8")]),
            ..Default::default()
        };
        forged_ee.signature = ca_keys.secret.sign(&forged_ee.tbs_bytes());
        roa.ee = forged_ee;
        let digest = roa.digest();
        let name = PublicationPoint::roa_file_name(roa);
        // Re-sign the manifest with the updated hash (CA is complicit).
        let mut entries = pp.manifest.entries.clone();
        entries.insert(name, digest);
        pp.manifest = crate::manifest::Manifest::issue(
            &ca_keys.secret,
            ca_keys.key_id,
            2,
            entries,
            pp.manifest.validity,
        );

        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| e.rejected == Some(RejectReason::ResourceOverclaim)));
    }

    #[test]
    fn missing_publication_point_logged_not_fatal() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let mut repo = b.finalize();
        // Remove the ISP's publication point: its cert is fine but its
        // objects are unreachable. (TA manifest still lists the TA's own
        // objects, which are intact.)
        let ca_keys = ripki_crypto::keystore::Keypair::derive(5, "ca/ISP-1");
        repo.points.remove(&ca_keys.key_id);
        let report = validate(&repo, now);
        assert!(report.vrps.is_empty());
        assert!(report
            .log
            .iter()
            .any(|e| e.rejected == Some(RejectReason::MissingPublicationPoint)));
        // The TA itself and the ISP cert are still accepted.
        assert!(report.accepted_count() >= 2);
    }

    #[test]
    fn two_trust_anchors_independent() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ripe = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let arin = b.add_trust_anchor("ARIN", res(&["96.0.0.0/4"]));
        let isp1 = b.add_ca(ripe, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let isp2 = b.add_ca(arin, "ISP-2", res(&["100.0.0.0/8"])).unwrap();
        b.add_roa(isp1, Asn::new(1), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        b.add_roa(isp2, Asn::new(2), vec![RoaPrefix::exact(p("100.1.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        let report = validate(&repo, now);
        assert_eq!(report.vrps.len(), 2);
        let tas: HashSet<&str> = report.log.iter().map(|e| e.trust_anchor.as_str()).collect();
        assert!(tas.contains("RIPE") && tas.contains("ARIN"));
    }

    #[test]
    fn vrps_deduplicated_and_sorted() {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        // Same VRP twice via two ROAs.
        for _ in 0..2 {
            b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
                .unwrap();
        }
        b.add_roa(isp, Asn::new(50), vec![RoaPrefix::exact(p("85.0.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        let report = validate(&repo, now);
        assert_eq!(report.vrps.len(), 2);
        let mut sorted = report.vrps.clone();
        sorted.sort();
        assert_eq!(sorted, report.vrps);
    }
}
