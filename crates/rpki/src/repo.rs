//! The repository: publication points and a builder that plays the CA.
//!
//! A real relying party rsyncs a tree of files per CA ("publication
//! point"): the CA's issued certificates, its ROAs, one CRL, and one
//! manifest. [`Repository`] is that tree in memory; [`RepositoryBuilder`]
//! is the issuing side — it owns the keys, hands out certificates down a
//! hierarchy, signs ROAs via one-time EE certificates, and emits
//! consistent CRLs and manifests at [`RepositoryBuilder::finalize`].

use crate::cert::Cert;
use crate::crl::Crl;
use crate::manifest::Manifest;
use crate::resources::Resources;
use crate::roa::{Roa, RoaPrefix};
use crate::ta::TrustAnchor;
use crate::time::{Duration, SimTime, Validity};
use ripki_crypto::keystore::{KeyId, Keypair};
use ripki_net::Asn;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An order-sensitive FNV-1a accumulator for cheap change detection.
///
/// The incremental validator needs to ask "did this publication point
/// change since I last validated it?" without re-hashing every object
/// (that would cost as much as the manifest-consistency check it is
/// trying to avoid). Signed objects already carry a deterministic
/// signature over their full to-be-signed encoding, so folding the
/// signatures (plus serials and counts) detects any republication at a
/// few nanoseconds per object.
///
/// This is a *republication* detector, not a tamper detector: mutating
/// an object's payload in place without re-signing it (as the fault
/// injector does) leaves the fingerprint unchanged. Validators that may
/// face such repositories must start from a fresh full pass; see the
/// republication contract in `incremental`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Fingerprint {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes (order-sensitive).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold one integer.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// Everything one CA publishes.
#[derive(Debug, Clone)]
pub struct PublicationPoint {
    /// Certificates this CA issued to subordinate CAs.
    pub child_certs: Vec<Cert>,
    /// ROAs published by this CA.
    pub roas: Vec<Roa>,
    /// The CA's current CRL.
    pub crl: Crl,
    /// The CA's current manifest.
    pub manifest: Manifest,
}

impl PublicationPoint {
    /// Canonical file name for a child certificate.
    pub fn cert_file_name(cert: &Cert) -> String {
        format!("cert-{}.cer", cert.serial)
    }

    /// Canonical file name for a ROA (keyed by its EE serial).
    pub fn roa_file_name(roa: &Roa) -> String {
        format!("roa-{}.roa", roa.ee.serial)
    }

    /// Canonical file name of the CRL.
    pub const CRL_FILE_NAME: &'static str = "ca.crl";

    /// Cheap content fingerprint of the whole point (CRL, manifest,
    /// child certificates, ROAs — in publication order). Two points
    /// published through [`RepositoryBuilder`] compare equal iff nothing
    /// at the point was republished; see [`Fingerprint`] for the
    /// contract and its limits.
    pub fn quick_fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprint::new();
        self.crl.fold_fingerprint(&mut fp);
        self.manifest.fold_fingerprint(&mut fp);
        fp.write_u64(self.child_certs.len() as u64);
        for cert in &self.child_certs {
            cert.fold_fingerprint(&mut fp);
        }
        fp.write_u64(self.roas.len() as u64);
        for roa in &self.roas {
            roa.fold_fingerprint(&mut fp);
        }
        fp
    }
}

/// A complete RPKI repository: trust anchors plus one publication point
/// per CA (keyed by the CA's subject key id).
#[derive(Debug, Clone, Default)]
pub struct Repository {
    /// The trust anchors (the five RIRs in full scenarios).
    pub trust_anchors: Vec<TrustAnchor>,
    /// Publication points by CA subject key id.
    pub points: HashMap<KeyId, PublicationPoint>,
}

impl Repository {
    /// Total number of ROAs across all publication points.
    pub fn roa_count(&self) -> usize {
        self.points.values().map(|p| p.roas.len()).sum()
    }

    /// Total number of CA certificates (trust anchors + issued).
    pub fn ca_count(&self) -> usize {
        self.trust_anchors.len()
            + self
                .points
                .values()
                .flat_map(|p| &p.child_certs)
                .filter(|c| c.is_ca)
                .count()
    }

    /// Iterate all ROAs (regardless of validity — validation is the
    /// relying party's job).
    pub fn all_roas(&self) -> impl Iterator<Item = &Roa> {
        self.points.values().flat_map(|p| p.roas.iter())
    }
}

impl fmt::Display for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repository: {} TAs, {} publication points, {} ROAs",
            self.trust_anchors.len(),
            self.points.len(),
            self.roa_count(),
        )
    }
}

/// Errors from the building side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Referenced CA does not exist.
    UnknownCa(KeyId),
    /// The requested resources are not encompassed by the parent's.
    ResourcesExceedParent {
        /// The parent's resource set.
        parent: String,
        /// The resources the child asked for.
        requested: String,
    },
    /// Key rollover is only modelled for leaf (childless, non-TA) CAs.
    RolloverUnsupported(KeyId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownCa(id) => write!(f, "unknown CA {id}"),
            BuildError::ResourcesExceedParent { parent, requested } => write!(
                f,
                "requested resources {requested} exceed parent's {parent}"
            ),
            BuildError::RolloverUnsupported(id) => {
                write!(
                    f,
                    "key rollover unsupported for CA {id} (TA or has children)"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Internal per-CA issuing state.
struct CaState {
    name: String,
    keys: Keypair,
    cert: Cert,
    children: Vec<Cert>,
    roas: Vec<Roa>,
    revoked: BTreeSet<u64>,
    is_trust_anchor: bool,
    /// Key generation, bumped on rollover (keys derive from name + gen).
    generation: u32,
    /// The CRL/manifest pair signed at the last snapshot, reused while
    /// the point's content is unchanged. `None` marks the point dirty:
    /// the next [`RepositoryBuilder::snapshot`] re-signs it. Real CAs
    /// behave the same way — a manifest is only reissued when the point
    /// republishes — and the incremental validator's change detection
    /// relies on it.
    published: Option<(Crl, Manifest)>,
}

/// The issuing side of the RPKI: builds a consistent [`Repository`].
///
/// All keys are derived deterministically from `master_seed`, so the same
/// build program yields byte-identical repositories.
pub struct RepositoryBuilder {
    master_seed: u64,
    now: SimTime,
    cert_validity: Duration,
    crl_validity: Duration,
    serial_counter: u64,
    /// Bumped on every [`RepositoryBuilder::snapshot`], so successive
    /// publications carry increasing manifest numbers (RFC 9286).
    manifest_number: u64,
    cas: HashMap<KeyId, CaState>,
    /// Insertion order of CAs, for deterministic iteration.
    order: Vec<KeyId>,
}

impl RepositoryBuilder {
    /// Start building; certificates issued from `now`.
    pub fn new(master_seed: u64, now: SimTime) -> RepositoryBuilder {
        RepositoryBuilder {
            master_seed,
            now,
            cert_validity: Duration::years(1),
            crl_validity: Duration::days(7),
            serial_counter: 0,
            manifest_number: 0,
            cas: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Advance the builder's clock: later certificates, CRLs, and
    /// manifests are issued from the new instant. Already-issued
    /// certificates keep their original validity.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Override the certificate validity span (default one year).
    pub fn cert_validity(mut self, dur: Duration) -> RepositoryBuilder {
        self.cert_validity = dur;
        self
    }

    /// Override CRL/manifest currency span (default seven days).
    pub fn crl_validity(mut self, dur: Duration) -> RepositoryBuilder {
        self.crl_validity = dur;
        self
    }

    /// The simulated instant this builder issues at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn next_serial(&mut self) -> u64 {
        self.serial_counter += 1;
        self.serial_counter
    }

    /// Create a self-signed trust anchor holding `resources`.
    pub fn add_trust_anchor(&mut self, name: &str, resources: Resources) -> KeyId {
        let keys = Keypair::derive(self.master_seed, &format!("ta/{name}"));
        let serial = self.next_serial();
        let cert = Cert::issue(
            serial,
            name,
            keys.public,
            &keys.secret,
            keys.key_id,
            Validity::starting(self.now, Duration::years(10)),
            resources,
            true,
        );
        let id = keys.key_id;
        self.cas.insert(
            id,
            CaState {
                name: name.to_string(),
                keys,
                cert,
                children: Vec::new(),
                roas: Vec::new(),
                revoked: BTreeSet::new(),
                is_trust_anchor: true,
                generation: 0,
                published: None,
            },
        );
        self.order.push(id);
        id
    }

    /// Mark `ca` dirty: its CRL and manifest are re-signed at the next
    /// snapshot instead of reusing the cached publication.
    fn touch(&mut self, ca: KeyId) {
        if let Some(state) = self.cas.get_mut(&ca) {
            state.published = None;
        }
    }

    /// Issue a subordinate CA certificate under `parent`.
    pub fn add_ca(
        &mut self,
        parent: KeyId,
        name: &str,
        resources: Resources,
    ) -> Result<KeyId, BuildError> {
        let serial = self.next_serial();
        let parent_state = self.cas.get(&parent).ok_or(BuildError::UnknownCa(parent))?;
        if !parent_state.cert.resources.encompasses(&resources) {
            return Err(BuildError::ResourcesExceedParent {
                parent: parent_state.cert.resources.to_string(),
                requested: resources.to_string(),
            });
        }
        let keys = Keypair::derive(self.master_seed, &format!("ca/{name}"));
        let cert = Cert::issue(
            serial,
            name,
            keys.public,
            &parent_state.keys.secret,
            parent,
            Validity::starting(self.now, self.cert_validity),
            resources,
            true,
        );
        let id = keys.key_id;
        {
            let parent_state = self.cas.get_mut(&parent).expect("parent just looked up");
            parent_state.children.push(cert.clone());
            parent_state.published = None;
        }
        self.cas.insert(
            id,
            CaState {
                name: name.to_string(),
                keys,
                cert,
                children: Vec::new(),
                roas: Vec::new(),
                revoked: BTreeSet::new(),
                is_trust_anchor: false,
                generation: 0,
                published: None,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// Publish a ROA at `ca` authorizing `asn` for `prefixes`.
    ///
    /// The ROA's one-time EE certificate is issued by `ca`; its resources
    /// are exactly the ROA's prefixes, which must be encompassed by the
    /// CA's own resources.
    pub fn add_roa(
        &mut self,
        ca: KeyId,
        asn: Asn,
        prefixes: Vec<RoaPrefix>,
    ) -> Result<(), BuildError> {
        let serial = self.next_serial();
        let seed = self.master_seed;
        let validity_dur = self.cert_validity;
        let now = self.now;
        let state = self.cas.get_mut(&ca).ok_or(BuildError::UnknownCa(ca))?;
        let claimed = Resources::from_prefixes(prefixes.iter().map(|rp| rp.prefix));
        if !state.cert.resources.encompasses(&claimed) {
            return Err(BuildError::ResourcesExceedParent {
                parent: state.cert.resources.to_string(),
                requested: claimed.to_string(),
            });
        }
        let roa = Roa::create(
            &state.keys.secret,
            ca,
            serial,
            (seed, &format!("ee/{serial}")),
            asn,
            prefixes,
            Validity::starting(now, validity_dur),
        );
        state.roas.push(roa);
        state.published = None;
        Ok(())
    }

    /// Mark `serial` as revoked in `ca`'s next CRL.
    pub fn revoke(&mut self, ca: KeyId, serial: u64) -> Result<(), BuildError> {
        let state = self.cas.get_mut(&ca).ok_or(BuildError::UnknownCa(ca))?;
        state.revoked.insert(serial);
        state.published = None;
        Ok(())
    }

    /// Force `ca` to re-sign its CRL and manifest at the next snapshot
    /// even though its content is unchanged (a CA re-publishing on its
    /// reissuance schedule). To a relying party this is a manifest
    /// replacement: same objects, new manifest number and windows.
    pub fn republish(&mut self, ca: KeyId) -> Result<(), BuildError> {
        if !self.cas.contains_key(&ca) {
            return Err(BuildError::UnknownCa(ca));
        }
        self.touch(ca);
        Ok(())
    }

    /// The public key id of a CA added earlier, by name (test helper).
    pub fn find_ca(&self, name: &str) -> Option<KeyId> {
        self.order
            .iter()
            .find(|id| self.cas[id].name == name)
            .copied()
    }

    /// Withdraw a ROA from publication (modelling expiry or operator
    /// cleanup), keyed by its EE certificate serial. Returns whether a
    /// ROA was actually removed.
    pub fn remove_roa(&mut self, ca: KeyId, ee_serial: u64) -> Result<bool, BuildError> {
        let state = self.cas.get_mut(&ca).ok_or(BuildError::UnknownCa(ca))?;
        let before = state.roas.len();
        state.roas.retain(|r| r.ee.serial != ee_serial);
        let removed = state.roas.len() != before;
        if removed {
            state.published = None;
        }
        Ok(removed)
    }

    /// Every published ROA as `(issuing CA, EE serial, authorized ASN)`,
    /// in deterministic (CA insertion, then issue) order.
    pub fn list_roas(&self) -> Vec<(KeyId, u64, Asn)> {
        self.order
            .iter()
            .flat_map(|id| {
                self.cas[id]
                    .roas
                    .iter()
                    .map(move |r| (*id, r.ee.serial, r.asn))
            })
            .collect()
    }

    /// The prefixes of the published ROA with the given EE serial.
    pub fn roa_prefixes(&self, ca: KeyId, ee_serial: u64) -> Option<Vec<RoaPrefix>> {
        self.cas
            .get(&ca)?
            .roas
            .iter()
            .find(|r| r.ee.serial == ee_serial)
            .map(|r| r.prefixes.clone())
    }

    /// CAs eligible for [`rollover_key`](Self::rollover_key): non-TA,
    /// childless CAs, in deterministic order.
    pub fn rollover_candidates(&self) -> Vec<KeyId> {
        self.order
            .iter()
            .copied()
            .filter(|id| {
                let s = &self.cas[id];
                !s.is_trust_anchor && s.children.is_empty()
            })
            .collect()
    }

    /// The display name of a CA added earlier.
    pub fn ca_name(&self, id: KeyId) -> Option<&str> {
        self.cas.get(&id).map(|s| s.name.as_str())
    }

    /// Roll `ca`'s key: derive a new keypair, have the parent issue a
    /// replacement certificate (revoking the old one in its CRL), and
    /// re-sign all of the CA's ROAs under the new key. Returns the new
    /// CA key id — the old id is dead from here on.
    ///
    /// Only leaf CAs are supported: rolling a CA with children would
    /// cascade re-issuance down the whole subtree, which this model
    /// defers (see ROADMAP).
    pub fn rollover_key(&mut self, ca: KeyId) -> Result<KeyId, BuildError> {
        let state = self.cas.get(&ca).ok_or(BuildError::UnknownCa(ca))?;
        if state.is_trust_anchor || !state.children.is_empty() {
            return Err(BuildError::RolloverUnsupported(ca));
        }
        let name = state.name.clone();
        let generation = state.generation + 1;
        let resources = state.cert.resources.clone();
        let old_serial = state.cert.serial;
        let roa_specs: Vec<(Asn, Vec<RoaPrefix>)> = state
            .roas
            .iter()
            .map(|r| (r.asn, r.prefixes.clone()))
            .collect();
        let parent = self
            .order
            .iter()
            .copied()
            .find(|pid| {
                self.cas[pid]
                    .children
                    .iter()
                    .any(|c| c.subject_key_id() == ca)
            })
            .ok_or(BuildError::UnknownCa(ca))?;
        let serial = self.next_serial();
        let keys = Keypair::derive(self.master_seed, &format!("ca/{name}#gen{generation}"));
        let new_id = keys.key_id;
        let cert = {
            let parent_state = &self.cas[&parent];
            Cert::issue(
                serial,
                &name,
                keys.public,
                &parent_state.keys.secret,
                parent,
                Validity::starting(self.now, self.cert_validity),
                resources,
                true,
            )
        };
        {
            let parent_state = self.cas.get_mut(&parent).expect("parent just looked up");
            parent_state.children.retain(|c| c.subject_key_id() != ca);
            parent_state.children.push(cert.clone());
            parent_state.revoked.insert(old_serial);
            parent_state.published = None;
        }
        let old_state = self.cas.remove(&ca).expect("CA just looked up");
        let pos = self
            .order
            .iter()
            .position(|id| *id == ca)
            .expect("CA is in insertion order");
        self.order[pos] = new_id;
        self.cas.insert(
            new_id,
            CaState {
                name,
                keys,
                cert,
                children: Vec::new(),
                roas: Vec::new(),
                revoked: old_state.revoked,
                is_trust_anchor: false,
                generation,
                published: None,
            },
        );
        for (asn, prefixes) in roa_specs {
            self.add_roa(new_id, asn, prefixes)
                .expect("reissued ROA stays within unchanged CA resources");
        }
        Ok(new_id)
    }

    /// Sign CRLs and manifests where needed and emit the current
    /// repository state, leaving the builder usable for further
    /// evolution (the longitudinal engine publishes once per epoch).
    ///
    /// Only *dirty* publication points — those whose content changed
    /// since the last snapshot, or whose cached CRL/manifest is no
    /// longer current at the builder's clock — are re-signed; clean
    /// points reuse the exact CRL and manifest signed before, as a real
    /// CA would (manifests are only replaced when the point
    /// republishes). Each call bumps the global manifest number, so
    /// every republication carries a strictly larger number (RFC 9286).
    pub fn snapshot(&mut self) -> Repository {
        self.manifest_number += 1;
        let manifest_number = self.manifest_number;
        let mut repo = Repository::default();
        let crl_window = Validity::starting(self.now, self.crl_validity);
        let now = self.now;
        for id in &self.order {
            let state = self.cas.get_mut(id).expect("ordered CA exists");
            if state.is_trust_anchor {
                repo.trust_anchors
                    .push(TrustAnchor::new(state.name.clone(), state.cert.clone()));
            }
            let stale = match &state.published {
                Some((crl, manifest)) => !crl.is_current(now) || !manifest.is_current(now),
                None => true,
            };
            if stale {
                let crl = Crl::issue(
                    &state.keys.secret,
                    *id,
                    state.revoked.iter().copied(),
                    crl_window,
                );
                let mut entries: Vec<(String, ripki_crypto::sha256::Digest)> = Vec::new();
                entries.push((PublicationPoint::CRL_FILE_NAME.to_string(), crl.digest()));
                for cert in &state.children {
                    entries.push((PublicationPoint::cert_file_name(cert), cert.digest()));
                }
                for roa in &state.roas {
                    entries.push((PublicationPoint::roa_file_name(roa), roa.digest()));
                }
                let manifest = Manifest::issue(
                    &state.keys.secret,
                    *id,
                    manifest_number,
                    entries,
                    crl_window,
                );
                state.published = Some((crl, manifest));
            }
            let (crl, manifest) = state.published.clone().expect("published just ensured");
            repo.points.insert(
                *id,
                PublicationPoint {
                    child_certs: state.children.clone(),
                    roas: state.roas.clone(),
                    crl,
                    manifest,
                },
            );
        }
        repo
    }

    /// Sign CRLs and manifests everywhere and emit the repository.
    pub fn finalize(mut self) -> Repository {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::IpPrefix;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn res(prefixes: &[&str]) -> Resources {
        Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
    }

    #[test]
    fn build_small_hierarchy() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4", "2001::/16"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        assert_eq!(repo.trust_anchors.len(), 1);
        assert_eq!(repo.points.len(), 2);
        assert_eq!(repo.roa_count(), 1);
        assert_eq!(repo.ca_count(), 2);
        // Manifest of the ISP lists exactly the CRL and the ROA.
        let pp = &repo.points[&isp];
        assert_eq!(pp.manifest.entries.len(), 2);
        assert!(pp.manifest.digest_of("ca.crl").is_some());
        // TA's point lists CRL + the ISP cert.
        let tapp = &repo.points[&ta];
        assert_eq!(tapp.manifest.entries.len(), 2);
        assert_eq!(tapp.child_certs.len(), 1);
    }

    #[test]
    fn overclaiming_ca_rejected_at_build_time() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let err = b.add_ca(ta, "greedy", res(&["10.0.0.0/8"])).unwrap_err();
        assert!(matches!(err, BuildError::ResourcesExceedParent { .. }));
    }

    #[test]
    fn roa_beyond_ca_resources_rejected() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let err = b
            .add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("9.9.9.0/24"))])
            .unwrap_err();
        assert!(matches!(err, BuildError::ResourcesExceedParent { .. }));
    }

    #[test]
    fn unknown_ca_errors() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let repo_key = {
            let mut other = RepositoryBuilder::new(2, SimTime::EPOCH);
            other.add_trust_anchor("GHOST", Resources::empty())
        };
        assert_eq!(
            b.add_ca(repo_key, "x", Resources::empty()).unwrap_err(),
            BuildError::UnknownCa(repo_key)
        );
        assert!(b.add_roa(repo_key, Asn::new(1), vec![]).is_err());
        assert!(b.revoke(repo_key, 1).is_err());
        let _ = ta;
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut b = RepositoryBuilder::new(7, SimTime::EPOCH);
            let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
            let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
            b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
                .unwrap();
            b.finalize()
        };
        let a = build();
        let b = build();
        let ka: Vec<_> = a.points[&a.trust_anchors[0].cert.subject_key_id()]
            .manifest
            .tbs_bytes();
        let kb: Vec<_> = b.points[&b.trust_anchors[0].cert.subject_key_id()]
            .manifest
            .tbs_bytes();
        assert_eq!(ka, kb);
    }

    #[test]
    fn find_ca_by_name() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        assert_eq!(b.find_ca("ISP-1"), Some(isp));
        assert_eq!(b.find_ca("RIPE"), Some(ta));
        assert_eq!(b.find_ca("nope"), None);
    }

    #[test]
    fn snapshot_allows_continued_evolution() {
        let mut b = RepositoryBuilder::new(3, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let first = b.snapshot();
        assert_eq!(first.roa_count(), 1);
        assert_eq!(first.points[&isp].manifest.manifest_number, 1);

        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        let second = b.snapshot();
        assert_eq!(second.roa_count(), 2);
        assert_eq!(second.points[&isp].manifest.manifest_number, 2);
        // The earlier snapshot is unaffected.
        assert_eq!(first.roa_count(), 1);
    }

    #[test]
    fn remove_roa_unpublishes() {
        let mut b = RepositoryBuilder::new(3, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let roas = b.list_roas();
        assert_eq!(roas.len(), 1);
        let (ca, ee_serial, asn) = roas[0];
        assert_eq!(ca, isp);
        assert_eq!(asn, Asn::new(100));
        assert!(b.remove_roa(ca, ee_serial).unwrap());
        assert!(!b.remove_roa(ca, ee_serial).unwrap());
        assert_eq!(b.snapshot().roa_count(), 0);
    }

    #[test]
    fn key_rollover_replaces_cert_and_reissues_roas() {
        use crate::validate::validate;

        let mut b = RepositoryBuilder::new(5, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let before = validate(&b.snapshot(), SimTime::EPOCH + Duration::days(1));

        assert_eq!(b.rollover_candidates(), vec![isp]);
        let new_isp = b.rollover_key(isp).unwrap();
        assert_ne!(new_isp, isp);
        assert_eq!(b.ca_name(new_isp), Some("ISP-1"));
        assert_eq!(b.ca_name(isp), None);
        // TAs and CAs with children cannot roll.
        assert!(matches!(
            b.rollover_key(ta),
            Err(BuildError::RolloverUnsupported(_))
        ));

        let repo = b.snapshot();
        let after = validate(&repo, SimTime::EPOCH + Duration::days(1));
        // The VRP set is unchanged by the rollover…
        assert_eq!(before.vrps, after.vrps);
        // …the old CA cert is revoked at the TA…
        let old_serial = 2; // TA cert serial 1, ISP cert serial 2
        assert!(repo.points[&ta].crl.is_revoked(old_serial));
        // …and the old publication point is gone.
        assert!(!repo.points.contains_key(&isp));
        assert!(repo.points.contains_key(&new_isp));
    }

    #[test]
    fn clean_points_keep_their_publication_across_snapshots() {
        let mut b = RepositoryBuilder::new(3, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let first = b.snapshot();

        // Only the ISP republishes; the TA's point is untouched.
        b.add_roa(isp, Asn::new(200), vec![RoaPrefix::exact(p("85.2.0.0/16"))])
            .unwrap();
        let second = b.snapshot();
        assert_eq!(first.points[&ta].manifest, second.points[&ta].manifest);
        assert_eq!(first.points[&ta].crl, second.points[&ta].crl);
        assert_eq!(
            first.points[&ta].quick_fingerprint(),
            second.points[&ta].quick_fingerprint()
        );
        assert_ne!(
            first.points[&isp].manifest.manifest_number,
            second.points[&isp].manifest.manifest_number
        );
        assert_ne!(
            first.points[&isp].quick_fingerprint(),
            second.points[&isp].quick_fingerprint()
        );

        // An explicit republish replaces the manifest without changing
        // the published objects.
        b.republish(ta).unwrap();
        let third = b.snapshot();
        assert_ne!(second.points[&ta].manifest, third.points[&ta].manifest);
        assert_eq!(third.points[&ta].manifest.manifest_number, 3);
        assert_ne!(
            second.points[&ta].quick_fingerprint(),
            third.points[&ta].quick_fingerprint()
        );
        assert_eq!(
            second.points[&ta].child_certs.len(),
            third.points[&ta].child_certs.len()
        );
    }

    #[test]
    fn stale_publication_reissued_when_clock_advances() {
        let mut b = RepositoryBuilder::new(3, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let first = b.snapshot();
        // Within the CRL window nothing is re-signed…
        b.set_now(SimTime::EPOCH + Duration::days(3));
        let second = b.snapshot();
        assert_eq!(first.points[&ta].crl, second.points[&ta].crl);
        // …but past it the CA is on its reissuance schedule.
        b.set_now(SimTime::EPOCH + Duration::days(10));
        let third = b.snapshot();
        assert_ne!(second.points[&ta].crl, third.points[&ta].crl);
        assert!(third.points[&ta]
            .crl
            .is_current(SimTime::EPOCH + Duration::days(10)));
    }

    #[test]
    fn revocations_land_in_crl() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        // Revoke the ISP's cert at the TA.
        let isp_serial = {
            let repo = RepositoryBuilder::new(1, SimTime::EPOCH); // placeholder
            drop(repo);
            2u64 // TA cert got serial 1, ISP cert serial 2
        };
        b.revoke(ta, isp_serial).unwrap();
        let repo = b.finalize();
        assert!(repo.points[&ta].crl.is_revoked(isp_serial));
        assert!(!repo.points[&isp].crl.is_revoked(isp_serial));
    }
}
