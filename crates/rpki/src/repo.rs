//! The repository: publication points and a builder that plays the CA.
//!
//! A real relying party rsyncs a tree of files per CA ("publication
//! point"): the CA's issued certificates, its ROAs, one CRL, and one
//! manifest. [`Repository`] is that tree in memory; [`RepositoryBuilder`]
//! is the issuing side — it owns the keys, hands out certificates down a
//! hierarchy, signs ROAs via one-time EE certificates, and emits
//! consistent CRLs and manifests at [`RepositoryBuilder::finalize`].

use crate::cert::Cert;
use crate::crl::Crl;
use crate::manifest::Manifest;
use crate::resources::Resources;
use crate::roa::{Roa, RoaPrefix};
use crate::ta::TrustAnchor;
use crate::time::{Duration, SimTime, Validity};
use ripki_crypto::keystore::{KeyId, Keypair};
use ripki_net::Asn;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Everything one CA publishes.
#[derive(Debug, Clone)]
pub struct PublicationPoint {
    /// Certificates this CA issued to subordinate CAs.
    pub child_certs: Vec<Cert>,
    /// ROAs published by this CA.
    pub roas: Vec<Roa>,
    /// The CA's current CRL.
    pub crl: Crl,
    /// The CA's current manifest.
    pub manifest: Manifest,
}

impl PublicationPoint {
    /// Canonical file name for a child certificate.
    pub fn cert_file_name(cert: &Cert) -> String {
        format!("cert-{}.cer", cert.serial)
    }

    /// Canonical file name for a ROA (keyed by its EE serial).
    pub fn roa_file_name(roa: &Roa) -> String {
        format!("roa-{}.roa", roa.ee.serial)
    }

    /// Canonical file name of the CRL.
    pub const CRL_FILE_NAME: &'static str = "ca.crl";
}

/// A complete RPKI repository: trust anchors plus one publication point
/// per CA (keyed by the CA's subject key id).
#[derive(Debug, Clone, Default)]
pub struct Repository {
    /// The trust anchors (the five RIRs in full scenarios).
    pub trust_anchors: Vec<TrustAnchor>,
    /// Publication points by CA subject key id.
    pub points: HashMap<KeyId, PublicationPoint>,
}

impl Repository {
    /// Total number of ROAs across all publication points.
    pub fn roa_count(&self) -> usize {
        self.points.values().map(|p| p.roas.len()).sum()
    }

    /// Total number of CA certificates (trust anchors + issued).
    pub fn ca_count(&self) -> usize {
        self.trust_anchors.len()
            + self
                .points
                .values()
                .flat_map(|p| &p.child_certs)
                .filter(|c| c.is_ca)
                .count()
    }

    /// Iterate all ROAs (regardless of validity — validation is the
    /// relying party's job).
    pub fn all_roas(&self) -> impl Iterator<Item = &Roa> {
        self.points.values().flat_map(|p| p.roas.iter())
    }
}

impl fmt::Display for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repository: {} TAs, {} publication points, {} ROAs",
            self.trust_anchors.len(),
            self.points.len(),
            self.roa_count(),
        )
    }
}

/// Errors from the building side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Referenced CA does not exist.
    UnknownCa(KeyId),
    /// The requested resources are not encompassed by the parent's.
    ResourcesExceedParent { parent: String, requested: String },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownCa(id) => write!(f, "unknown CA {id}"),
            BuildError::ResourcesExceedParent { parent, requested } => write!(
                f,
                "requested resources {requested} exceed parent's {parent}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Internal per-CA issuing state.
struct CaState {
    name: String,
    keys: Keypair,
    cert: Cert,
    children: Vec<Cert>,
    roas: Vec<Roa>,
    revoked: BTreeSet<u64>,
    is_trust_anchor: bool,
}

/// The issuing side of the RPKI: builds a consistent [`Repository`].
///
/// All keys are derived deterministically from `master_seed`, so the same
/// build program yields byte-identical repositories.
pub struct RepositoryBuilder {
    master_seed: u64,
    now: SimTime,
    cert_validity: Duration,
    crl_validity: Duration,
    serial_counter: u64,
    cas: HashMap<KeyId, CaState>,
    /// Insertion order of CAs, for deterministic iteration.
    order: Vec<KeyId>,
}

impl RepositoryBuilder {
    /// Start building; certificates issued from `now`.
    pub fn new(master_seed: u64, now: SimTime) -> RepositoryBuilder {
        RepositoryBuilder {
            master_seed,
            now,
            cert_validity: Duration::years(1),
            crl_validity: Duration::days(7),
            serial_counter: 0,
            cas: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Override the certificate validity span (default one year).
    pub fn cert_validity(mut self, dur: Duration) -> RepositoryBuilder {
        self.cert_validity = dur;
        self
    }

    /// Override CRL/manifest currency span (default seven days).
    pub fn crl_validity(mut self, dur: Duration) -> RepositoryBuilder {
        self.crl_validity = dur;
        self
    }

    /// The simulated instant this builder issues at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn next_serial(&mut self) -> u64 {
        self.serial_counter += 1;
        self.serial_counter
    }

    /// Create a self-signed trust anchor holding `resources`.
    pub fn add_trust_anchor(&mut self, name: &str, resources: Resources) -> KeyId {
        let keys = Keypair::derive(self.master_seed, &format!("ta/{name}"));
        let serial = self.next_serial();
        let cert = Cert::issue(
            serial,
            name,
            keys.public,
            &keys.secret,
            keys.key_id,
            Validity::starting(self.now, Duration::years(10)),
            resources,
            true,
        );
        let id = keys.key_id;
        self.cas.insert(
            id,
            CaState {
                name: name.to_string(),
                keys,
                cert,
                children: Vec::new(),
                roas: Vec::new(),
                revoked: BTreeSet::new(),
                is_trust_anchor: true,
            },
        );
        self.order.push(id);
        id
    }

    /// Issue a subordinate CA certificate under `parent`.
    pub fn add_ca(
        &mut self,
        parent: KeyId,
        name: &str,
        resources: Resources,
    ) -> Result<KeyId, BuildError> {
        let serial = self.next_serial();
        let parent_state = self.cas.get(&parent).ok_or(BuildError::UnknownCa(parent))?;
        if !parent_state.cert.resources.encompasses(&resources) {
            return Err(BuildError::ResourcesExceedParent {
                parent: parent_state.cert.resources.to_string(),
                requested: resources.to_string(),
            });
        }
        let keys = Keypair::derive(self.master_seed, &format!("ca/{name}"));
        let cert = Cert::issue(
            serial,
            name,
            keys.public,
            &parent_state.keys.secret,
            parent,
            Validity::starting(self.now, self.cert_validity),
            resources,
            true,
        );
        let id = keys.key_id;
        self.cas
            .get_mut(&parent)
            .expect("parent just looked up")
            .children
            .push(cert.clone());
        self.cas.insert(
            id,
            CaState {
                name: name.to_string(),
                keys,
                cert,
                children: Vec::new(),
                roas: Vec::new(),
                revoked: BTreeSet::new(),
                is_trust_anchor: false,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// Publish a ROA at `ca` authorizing `asn` for `prefixes`.
    ///
    /// The ROA's one-time EE certificate is issued by `ca`; its resources
    /// are exactly the ROA's prefixes, which must be encompassed by the
    /// CA's own resources.
    pub fn add_roa(
        &mut self,
        ca: KeyId,
        asn: Asn,
        prefixes: Vec<RoaPrefix>,
    ) -> Result<(), BuildError> {
        let serial = self.next_serial();
        let seed = self.master_seed;
        let validity_dur = self.cert_validity;
        let now = self.now;
        let state = self.cas.get_mut(&ca).ok_or(BuildError::UnknownCa(ca))?;
        let claimed = Resources::from_prefixes(prefixes.iter().map(|rp| rp.prefix));
        if !state.cert.resources.encompasses(&claimed) {
            return Err(BuildError::ResourcesExceedParent {
                parent: state.cert.resources.to_string(),
                requested: claimed.to_string(),
            });
        }
        let roa = Roa::create(
            &state.keys.secret,
            ca,
            serial,
            (seed, &format!("ee/{serial}")),
            asn,
            prefixes,
            Validity::starting(now, validity_dur),
        );
        state.roas.push(roa);
        Ok(())
    }

    /// Mark `serial` as revoked in `ca`'s next CRL.
    pub fn revoke(&mut self, ca: KeyId, serial: u64) -> Result<(), BuildError> {
        let state = self.cas.get_mut(&ca).ok_or(BuildError::UnknownCa(ca))?;
        state.revoked.insert(serial);
        Ok(())
    }

    /// The public key id of a CA added earlier, by name (test helper).
    pub fn find_ca(&self, name: &str) -> Option<KeyId> {
        self.order
            .iter()
            .find(|id| self.cas[id].name == name)
            .copied()
    }

    /// Sign CRLs and manifests everywhere and emit the repository.
    pub fn finalize(self) -> Repository {
        let mut repo = Repository::default();
        let crl_window = Validity::starting(self.now, self.crl_validity);
        for id in &self.order {
            let state = &self.cas[id];
            if state.is_trust_anchor {
                repo.trust_anchors
                    .push(TrustAnchor::new(state.name.clone(), state.cert.clone()));
            }
            let crl = Crl::issue(
                &state.keys.secret,
                *id,
                state.revoked.iter().copied(),
                crl_window,
            );
            let mut entries: Vec<(String, ripki_crypto::sha256::Digest)> = Vec::new();
            entries.push((PublicationPoint::CRL_FILE_NAME.to_string(), crl.digest()));
            for cert in &state.children {
                entries.push((PublicationPoint::cert_file_name(cert), cert.digest()));
            }
            for roa in &state.roas {
                entries.push((PublicationPoint::roa_file_name(roa), roa.digest()));
            }
            let manifest = Manifest::issue(&state.keys.secret, *id, 1, entries, crl_window);
            repo.points.insert(
                *id,
                PublicationPoint {
                    child_certs: state.children.clone(),
                    roas: state.roas.clone(),
                    crl,
                    manifest,
                },
            );
        }
        repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::IpPrefix;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn res(prefixes: &[&str]) -> Resources {
        Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
    }

    #[test]
    fn build_small_hierarchy() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4", "2001::/16"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
            .unwrap();
        let repo = b.finalize();
        assert_eq!(repo.trust_anchors.len(), 1);
        assert_eq!(repo.points.len(), 2);
        assert_eq!(repo.roa_count(), 1);
        assert_eq!(repo.ca_count(), 2);
        // Manifest of the ISP lists exactly the CRL and the ROA.
        let pp = &repo.points[&isp];
        assert_eq!(pp.manifest.entries.len(), 2);
        assert!(pp.manifest.digest_of("ca.crl").is_some());
        // TA's point lists CRL + the ISP cert.
        let tapp = &repo.points[&ta];
        assert_eq!(tapp.manifest.entries.len(), 2);
        assert_eq!(tapp.child_certs.len(), 1);
    }

    #[test]
    fn overclaiming_ca_rejected_at_build_time() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let err = b.add_ca(ta, "greedy", res(&["10.0.0.0/8"])).unwrap_err();
        assert!(matches!(err, BuildError::ResourcesExceedParent { .. }));
    }

    #[test]
    fn roa_beyond_ca_resources_rejected() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        let err = b
            .add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("9.9.9.0/24"))])
            .unwrap_err();
        assert!(matches!(err, BuildError::ResourcesExceedParent { .. }));
    }

    #[test]
    fn unknown_ca_errors() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let repo_key = {
            let mut other = RepositoryBuilder::new(2, SimTime::EPOCH);
            other.add_trust_anchor("GHOST", Resources::empty())
        };
        assert_eq!(
            b.add_ca(repo_key, "x", Resources::empty()).unwrap_err(),
            BuildError::UnknownCa(repo_key)
        );
        assert!(b.add_roa(repo_key, Asn::new(1), vec![]).is_err());
        assert!(b.revoke(repo_key, 1).is_err());
        let _ = ta;
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut b = RepositoryBuilder::new(7, SimTime::EPOCH);
            let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
            let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
            b.add_roa(isp, Asn::new(100), vec![RoaPrefix::exact(p("85.1.0.0/16"))])
                .unwrap();
            b.finalize()
        };
        let a = build();
        let b = build();
        let ka: Vec<_> = a.points[&a.trust_anchors[0].cert.subject_key_id()]
            .manifest
            .tbs_bytes();
        let kb: Vec<_> = b.points[&b.trust_anchors[0].cert.subject_key_id()]
            .manifest
            .tbs_bytes();
        assert_eq!(ka, kb);
    }

    #[test]
    fn find_ca_by_name() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        assert_eq!(b.find_ca("ISP-1"), Some(isp));
        assert_eq!(b.find_ca("RIPE"), Some(ta));
        assert_eq!(b.find_ca("nope"), None);
    }

    #[test]
    fn revocations_land_in_crl() {
        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor("RIPE", res(&["80.0.0.0/4"]));
        let isp = b.add_ca(ta, "ISP-1", res(&["85.0.0.0/8"])).unwrap();
        // Revoke the ISP's cert at the TA.
        let isp_serial = {
            let repo = RepositoryBuilder::new(1, SimTime::EPOCH); // placeholder
            drop(repo);
            2u64 // TA cert got serial 1, ISP cert serial 2
        };
        b.revoke(ta, isp_serial).unwrap();
        let repo = b.finalize();
        assert!(repo.points[&ta].crl.is_revoked(isp_serial));
        assert!(!repo.points[&isp].crl.is_revoked(isp_serial));
    }
}
