//! Validator behaviour on deeper and weirder hierarchies than the
//! builder normally produces: multi-level CA chains (TA → NIR → LIR →
//! customer), mid-chain resource narrowing, and hand-forged certificates
//! hitting the NotACa / UnexpectedCa rejection paths.

use ripki_crypto::keystore::Keypair;
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::cert::Cert;
use ripki_rpki::repo::{PublicationPoint, RepositoryBuilder};
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::{Duration, SimTime};
use ripki_rpki::validate::{validate, RejectReason};

fn p(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

fn res(prefixes: &[&str]) -> Resources {
    Resources::from_prefixes(prefixes.iter().map(|s| p(s)))
}

#[test]
fn four_level_chain_validates() {
    let now = SimTime::EPOCH + Duration::days(1);
    let mut b = RepositoryBuilder::new(21, SimTime::EPOCH);
    let ta = b.add_trust_anchor("APNIC", res(&["1.0.0.0/8"]));
    let nir = b.add_ca(ta, "NIR-JP", res(&["1.0.0.0/10"])).unwrap();
    let lir = b.add_ca(nir, "LIR-tokyo", res(&["1.16.0.0/12"])).unwrap();
    let cust = b.add_ca(lir, "customer-77", res(&["1.16.0.0/16"])).unwrap();
    b.add_roa(
        cust,
        Asn::new(2500),
        vec![RoaPrefix::exact(p("1.16.0.0/16"))],
    )
    .unwrap();
    let repo = b.finalize();
    let report = validate(&repo, now);
    assert_eq!(report.rejected_count(), 0, "{:?}", report.log);
    assert_eq!(report.vrps.len(), 1);
    assert_eq!(report.vrps[0].asn, Asn::new(2500));
    // All four pub points exist.
    assert_eq!(repo.points.len(), 4);
}

#[test]
fn mid_chain_expiry_prunes_descendants_only() {
    // Issue the mid-level CA with a short life: everything below it dies
    // with it, siblings survive.
    let issue = SimTime::EPOCH;
    let mut b = RepositoryBuilder::new(22, issue).cert_validity(Duration::days(10));
    let ta = b.add_trust_anchor("APNIC", res(&["1.0.0.0/8"]));
    let lir_a = b.add_ca(ta, "LIR-a", res(&["1.0.0.0/12"])).unwrap();
    let lir_b = b.add_ca(ta, "LIR-b", res(&["1.16.0.0/12"])).unwrap();
    b.add_roa(lir_a, Asn::new(1), vec![RoaPrefix::exact(p("1.0.0.0/16"))])
        .unwrap();
    b.add_roa(lir_b, Asn::new(2), vec![RoaPrefix::exact(p("1.16.0.0/16"))])
        .unwrap();
    let mut repo = b.finalize();

    // Rewind LIR-a's certificate validity by re-issuing it expired —
    // signed correctly by the TA key, so only the window check fires.
    let ta_keys = Keypair::derive(22, "ta/APNIC");
    let lir_a_keys = Keypair::derive(22, "ca/LIR-a");
    let ta_pp = repo.points.get_mut(&ta_keys.key_id).unwrap();
    let idx = ta_pp
        .child_certs
        .iter()
        .position(|c| c.subject_key_id() == lir_a_keys.key_id)
        .unwrap();
    let old = &ta_pp.child_certs[idx];
    let expired = Cert::issue(
        old.serial,
        &old.subject,
        old.subject_key,
        &ta_keys.secret,
        ta_keys.key_id,
        ripki_rpki::time::Validity::starting(SimTime::EPOCH, Duration::secs(1)),
        old.resources.clone(),
        true,
    );
    ta_pp.child_certs[idx] = expired.clone();
    // Fix the TA manifest for the re-issued cert (complicit CA).
    let mut entries = ta_pp.manifest.entries.clone();
    entries.insert(PublicationPoint::cert_file_name(&expired), expired.digest());
    ta_pp.manifest = ripki_rpki::manifest::Manifest::issue(
        &ta_keys.secret,
        ta_keys.key_id,
        2,
        entries,
        ta_pp.manifest.validity,
    );

    let report = validate(&repo, SimTime::EPOCH + Duration::days(1));
    let asns: Vec<Asn> = report.vrps.iter().map(|v| v.asn).collect();
    assert_eq!(asns, vec![Asn::new(2)], "only LIR-b's ROA survives");
    assert!(report
        .log
        .iter()
        .any(|e| e.rejected == Some(RejectReason::Expired)));
}

#[test]
fn non_ca_cert_in_ca_position_rejected() {
    let now = SimTime::EPOCH + Duration::days(1);
    let mut b = RepositoryBuilder::new(23, SimTime::EPOCH);
    let ta = b.add_trust_anchor("APNIC", res(&["1.0.0.0/8"]));
    let lir = b.add_ca(ta, "LIR", res(&["1.0.0.0/12"])).unwrap();
    b.add_roa(lir, Asn::new(9), vec![RoaPrefix::exact(p("1.0.0.0/16"))])
        .unwrap();
    let mut repo = b.finalize();

    // Forge: flip the LIR cert's CA bit (and re-sign + re-manifest, so
    // only the NotACa check can fire).
    let ta_keys = Keypair::derive(23, "ta/APNIC");
    let ta_pp = repo.points.get_mut(&ta_keys.key_id).unwrap();
    let old = &ta_pp.child_certs[0];
    let not_ca = Cert::issue(
        old.serial,
        &old.subject,
        old.subject_key,
        &ta_keys.secret,
        ta_keys.key_id,
        old.validity,
        old.resources.clone(),
        false, // ← the forgery
    );
    ta_pp.child_certs[0] = not_ca.clone();
    let mut entries = ta_pp.manifest.entries.clone();
    entries.insert(PublicationPoint::cert_file_name(&not_ca), not_ca.digest());
    ta_pp.manifest = ripki_rpki::manifest::Manifest::issue(
        &ta_keys.secret,
        ta_keys.key_id,
        2,
        entries,
        ta_pp.manifest.validity,
    );

    let report = validate(&repo, now);
    assert!(report.vrps.is_empty());
    assert!(report
        .log
        .iter()
        .any(|e| e.rejected == Some(RejectReason::NotACa)));
}

#[test]
fn ca_flagged_ee_in_roa_rejected() {
    let now = SimTime::EPOCH + Duration::days(1);
    let mut b = RepositoryBuilder::new(24, SimTime::EPOCH);
    let ta = b.add_trust_anchor("APNIC", res(&["1.0.0.0/8"]));
    let lir = b.add_ca(ta, "LIR", res(&["1.0.0.0/12"])).unwrap();
    b.add_roa(lir, Asn::new(9), vec![RoaPrefix::exact(p("1.0.0.0/16"))])
        .unwrap();
    let mut repo = b.finalize();

    // Forge: mark the ROA's EE cert as a CA (re-signed by the real LIR
    // key; manifest fixed).
    let lir_keys = Keypair::derive(24, "ca/LIR");
    let pp = repo.points.get_mut(&lir_keys.key_id).unwrap();
    let roa = &mut pp.roas[0];
    let old_ee = &roa.ee;
    let forged_ee = Cert::issue(
        old_ee.serial,
        &old_ee.subject,
        old_ee.subject_key,
        &lir_keys.secret,
        lir_keys.key_id,
        old_ee.validity,
        old_ee.resources.clone(),
        true, // ← EE must never be a CA
    );
    roa.ee = forged_ee;
    let digest = roa.digest();
    let name = PublicationPoint::roa_file_name(roa);
    let mut entries = pp.manifest.entries.clone();
    entries.insert(name, digest);
    pp.manifest = ripki_rpki::manifest::Manifest::issue(
        &lir_keys.secret,
        lir_keys.key_id,
        2,
        entries,
        pp.manifest.validity,
    );

    let report = validate(&repo, now);
    assert!(report.vrps.is_empty());
    assert!(report
        .log
        .iter()
        .any(|e| e.rejected == Some(RejectReason::UnexpectedCa)));
}

#[test]
fn sibling_isolation_under_deep_hierarchy() {
    // Two NIRs under one TA, two LIRs each; breaking one LIR's CRL kills
    // exactly its subtree.
    let now = SimTime::EPOCH + Duration::days(1);
    let mut b = RepositoryBuilder::new(25, SimTime::EPOCH);
    let ta = b.add_trust_anchor("APNIC", res(&["1.0.0.0/8"]));
    let mut leaf_cas = Vec::new();
    for (n, nir_block) in [("jp", "1.0.0.0/10"), ("cn", "1.64.0.0/10")] {
        let nir = b
            .add_ca(ta, &format!("NIR-{n}"), res(&[nir_block]))
            .unwrap();
        for l in 0..2 {
            let base: IpPrefix = nir_block.parse().unwrap();
            let lir_block = format!(
                "1.{}.0.0/12",
                match (n, l) {
                    ("jp", 0) => 0,
                    ("jp", 1) => 16,
                    ("cn", 0) => 64,
                    _ => 80,
                }
            );
            let _ = base;
            let lir = b
                .add_ca(nir, &format!("LIR-{n}-{l}"), res(&[&lir_block]))
                .unwrap();
            b.add_roa(
                lir,
                Asn::new(100 + l as u32),
                vec![RoaPrefix::exact(lir_block.parse().unwrap())],
            )
            .unwrap();
            leaf_cas.push(lir);
        }
    }
    let mut repo = b.finalize();
    let before = validate(&repo, now);
    assert_eq!(before.vrps.len(), 4);

    ripki_rpki::faults::stale_crl(&mut repo, leaf_cas[0]);
    let after = validate(&repo, now);
    assert_eq!(after.vrps.len(), 3);
}
