//! The incremental validator's central property: after every step of a
//! random churn stream, [`IncrementalValidator`] agrees *exactly* with a
//! from-scratch [`validate`] pass over the same repository and clock —
//! identical VRP sets, an identical per-object event log (so every
//! verdict and rejection reason matches, not just the accept set), and
//! a per-step [`VrpDelta`] that is precisely the VRP set difference.
//!
//! The op alphabet covers all four invalidation classes the dependency
//! graph has to get right:
//! * ROA/certificate expiry — `AdvanceTime` moves only the validation
//!   clock, without a fresh snapshot, so reuse must be refused purely by
//!   each cached point's validity era;
//! * CRL revocation — `RevokeRoa` dirties the CRL and must drag the
//!   revoked EE's *siblings* through revalidation with it;
//! * manifest replacement — `Republish` re-signs an unchanged point;
//! * key rollover — `Rollover` replaces a CA's key, killing the old
//!   subtree and re-issuing every ROA under the new one.

use proptest::prelude::*;
use ripki_crypto::keystore::KeyId;
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::repo::{Repository, RepositoryBuilder};
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::{Duration, SimTime};
use ripki_rpki::validate::{validate, Vrp};
use ripki_rpki::IncrementalValidator;
use std::collections::BTreeSet;

const TAS: usize = 2;
const CAS_PER_TA: usize = 2;
const INITIAL_ROAS_PER_CA: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    /// Publish a fresh ROA under CA `ca` (fresh /24, fresh ASN).
    AddRoa { ca: usize },
    /// Withdraw CA `ca`'s oldest published ROA, if any.
    RemoveRoa { ca: usize },
    /// Revoke CA `ca`'s oldest ROA's EE certificate in its CRL.
    RevokeRoa { ca: usize },
    /// Re-sign CA `ca`'s CRL and manifest without changing content.
    Republish { ca: usize },
    /// Roll CA `ca`'s key, revoking the old certificate and re-issuing
    /// its ROAs under the new key.
    Rollover { ca: usize },
    /// Advance the validation clock without republishing anything.
    /// Large enough advances cross the 20-day certificate / 7-day CRL
    /// validity edges and force era-driven revalidation.
    AdvanceTime { hours: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let ca = 0..TAS * CAS_PER_TA;
    prop_oneof![
        ca.clone().prop_map(|ca| Op::AddRoa { ca }),
        ca.clone().prop_map(|ca| Op::RemoveRoa { ca }),
        ca.clone().prop_map(|ca| Op::RevokeRoa { ca }),
        ca.clone().prop_map(|ca| Op::Republish { ca }),
        ca.prop_map(|ca| Op::Rollover { ca }),
        (1u64..1000).prop_map(|hours| Op::AdvanceTime { hours }),
    ]
}

/// The world under churn: the issuing builder, the CA handle table
/// (rollover replaces ids), the validation clock, and a monotonically
/// increasing counter minting fresh /24s.
struct World {
    builder: RepositoryBuilder,
    cas: Vec<(usize, usize, KeyId)>,
    now: SimTime,
    next_roa: usize,
}

impl World {
    fn build(seed: u64) -> World {
        let start = SimTime::EPOCH;
        let mut builder = RepositoryBuilder::new(seed, start)
            .cert_validity(Duration::days(20))
            .crl_validity(Duration::days(7));
        let mut cas = Vec::new();
        let mut next_roa = 0;
        for t in 0..TAS {
            let ta = builder
                .add_trust_anchor(&format!("TA-{t}"), Resources::from_prefixes([block(t, 8)]));
            for c in 0..CAS_PER_TA {
                let ca = builder
                    .add_ca(
                        ta,
                        &format!("CA-{t}-{c}"),
                        Resources::from_prefixes([format!("{}.{c}.0.0/16", 10 + t)
                            .parse::<IpPrefix>()
                            .unwrap()]),
                    )
                    .expect("CA resources within TA");
                for _ in 0..INITIAL_ROAS_PER_CA {
                    add_fresh_roa(&mut builder, ca, t, c, &mut next_roa);
                }
                cas.push((t, c, ca));
            }
        }
        World {
            builder,
            cas,
            now: start + Duration::hours(1),
            next_roa,
        }
    }

    /// Apply one op. Returns whether the repository needs re-snapshotting
    /// (`false` for pure clock advances — the expiry-sweep path).
    fn apply(&mut self, op: &Op) -> bool {
        match *op {
            Op::AddRoa { ca } => {
                let (t, c, id) = self.cas[ca % self.cas.len()];
                add_fresh_roa(&mut self.builder, id, t, c, &mut self.next_roa);
                true
            }
            Op::RemoveRoa { ca } => {
                let (_, _, id) = self.cas[ca % self.cas.len()];
                if let Some(serial) = self.oldest_roa(id) {
                    self.builder.remove_roa(id, serial).expect("CA exists");
                }
                true
            }
            Op::RevokeRoa { ca } => {
                let (_, _, id) = self.cas[ca % self.cas.len()];
                if let Some(serial) = self.oldest_roa(id) {
                    self.builder.revoke(id, serial).expect("CA exists");
                }
                true
            }
            Op::Republish { ca } => {
                let (_, _, id) = self.cas[ca % self.cas.len()];
                self.builder.republish(id).expect("CA exists");
                true
            }
            Op::Rollover { ca } => {
                let slot = ca % self.cas.len();
                let (_, _, id) = self.cas[slot];
                let new_id = self.builder.rollover_key(id).expect("leaf CA rolls over");
                self.cas[slot].2 = new_id;
                true
            }
            Op::AdvanceTime { hours } => {
                self.now = self.now + Duration::hours(hours);
                self.builder.set_now(self.now);
                false
            }
        }
    }

    fn oldest_roa(&self, ca: KeyId) -> Option<u64> {
        self.builder
            .list_roas()
            .into_iter()
            .find(|(owner, _, _)| *owner == ca)
            .map(|(_, serial, _)| serial)
    }
}

fn block(t: usize, len: u8) -> IpPrefix {
    format!("{}.0.0.0/{len}", 10 + t).parse().unwrap()
}

fn add_fresh_roa(
    builder: &mut RepositoryBuilder,
    ca: KeyId,
    t: usize,
    c: usize,
    next_roa: &mut usize,
) {
    let third = *next_roa % 256;
    *next_roa += 1;
    let prefix: IpPrefix = format!("{}.{c}.{third}.0/24", 10 + t).parse().unwrap();
    builder
        .add_roa(
            ca,
            Asn::new((64500 + *next_roa) as u32),
            vec![RoaPrefix::exact(prefix)],
        )
        .expect("ROA within CA resources");
}

/// One step's worth of assertions: the incremental validator and a
/// fresh full pass agree exactly, and the delta is the set difference.
fn check_step(
    inc: &mut IncrementalValidator,
    repo: &Repository,
    now: SimTime,
    prev: &BTreeSet<Vrp>,
) -> BTreeSet<Vrp> {
    let delta = inc.apply(repo, now);
    let current: BTreeSet<Vrp> = inc.vrps().into_iter().collect();

    // Delta ≡ set difference, with no overlap or phantom entries.
    let announced: BTreeSet<Vrp> = delta.announced.iter().copied().collect();
    let withdrawn: BTreeSet<Vrp> = delta.withdrawn.iter().copied().collect();
    prop_assert_eq!(
        &announced,
        &current.difference(prev).copied().collect::<BTreeSet<_>>(),
        "announced is not the set difference"
    );
    prop_assert_eq!(
        &withdrawn,
        &prev.difference(&current).copied().collect::<BTreeSet<_>>(),
        "withdrawn is not the set difference"
    );

    // Full agreement: VRPs, the entire event log, and the reject count.
    let full = validate(repo, now);
    let replay = inc.report();
    prop_assert_eq!(&replay.vrps, &full.vrps, "VRP exports diverge");
    prop_assert_eq!(&replay.log, &full.log, "event logs diverge");
    prop_assert_eq!(inc.rejected_count(), full.rejected_count());
    prop_assert_eq!(
        current.iter().copied().collect::<Vec<_>>(),
        full.vrps.clone(),
        "validator VRP multiset view diverges from the full pass"
    );
    current
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_validation_equals_full_validation(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..12),
    ) {
        let mut world = World::build(seed);
        let mut repo = world.builder.snapshot();
        let mut inc = IncrementalValidator::default();
        let mut prev = check_step(&mut inc, &repo, world.now, &BTreeSet::new());

        for op in &ops {
            if world.apply(op) {
                repo = world.builder.snapshot();
            }
            prev = check_step(&mut inc, &repo, world.now, &prev);
        }
    }

    /// Parallel ≡ serial: the same churn stream applied at 1 thread and
    /// at 4 threads produces byte-identical results at every step — the
    /// full [`VrpDelta`] (announce/withdraw sets *and* work stats), the
    /// maintained event log, and the VRP view. The commit stage folds
    /// execute outcomes in plan order, so thread count must only ever
    /// change wall-clock time.
    #[test]
    fn parallel_apply_equals_serial_apply(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..12),
    ) {
        let mut world = World::build(seed);
        let mut repo = world.builder.snapshot();
        let mut serial = IncrementalValidator::default();
        serial.set_worker_threads(1);
        let mut parallel = IncrementalValidator::default();
        parallel.set_worker_threads(4);

        let mut step = 0usize;
        let mut check = |repo: &Repository, now| {
            let serial_delta = serial.apply(repo, now);
            let parallel_delta = parallel.apply(repo, now);
            prop_assert_eq!(&serial_delta, &parallel_delta, "VrpDelta diverges at step {}", step);
            let serial_report = serial.report();
            let parallel_report = parallel.report();
            prop_assert_eq!(&serial_report.vrps, &parallel_report.vrps, "VRPs diverge at step {}", step);
            prop_assert_eq!(&serial_report.log, &parallel_report.log, "event logs diverge at step {}", step);
            prop_assert_eq!(serial.rejected_count(), parallel.rejected_count());
            step += 1;
        };
        check(&repo, world.now);
        for op in &ops {
            if world.apply(op) {
                repo = world.builder.snapshot();
            }
            check(&repo, world.now);
        }
    }
}

/// Deterministic companion: one stream exercising every invalidation
/// class in sequence, so coverage of all four hard cases does not
/// depend on what the random sampler happens to draw.
#[test]
fn all_four_invalidation_classes_in_one_stream() {
    let mut world = World::build(7);
    let mut repo = world.builder.snapshot();
    let mut inc = IncrementalValidator::default();
    let mut prev = check_step(&mut inc, &repo, world.now, &BTreeSet::new());

    let script = [
        Op::RevokeRoa { ca: 0 },            // CRL revocation
        Op::Republish { ca: 1 },            // manifest replacement
        Op::Rollover { ca: 2 },             // key rollover
        Op::AdvanceTime { hours: 24 * 8 },  // CRLs go stale (7-day span)
        Op::AdvanceTime { hours: 24 * 30 }, // every certificate expires
        // Recovery: rolling CA 3's key reissues its certificate and
        // both of its ROAs at the advanced clock, and a fresh ROA rides
        // along. Every other CA certificate stays expired.
        Op::Rollover { ca: 3 },
        Op::AddRoa { ca: 3 },
    ];
    for op in &script {
        if world.apply(op) {
            repo = world.builder.snapshot();
        }
        prev = check_step(&mut inc, &repo, world.now, &prev);
    }
    assert_eq!(
        prev.len(),
        INITIAL_ROAS_PER_CA + 1,
        "exactly the reissued CA's ROAs survive total expiry: {prev:?}"
    );
}
