//! Property-based tests for `ripki-rpki`: validator soundness under
//! randomly generated hierarchies and random tampering.

use proptest::prelude::*;
use ripki_net::{Asn, IpPrefix, Ipv4Prefix};
use ripki_rpki::repo::RepositoryBuilder;
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::{Duration, SimTime};
use ripki_rpki::validate::{validate, Vrp};
use std::net::Ipv4Addr;

/// A generated ROA spec under an ISP: (/16 index within 85.0.0.0/8, asn,
/// optional maxlen extension).
fn arb_roa_spec() -> impl Strategy<Value = (u8, u32, Option<u8>)> {
    (0u8..=255, 1u32..100_000, prop::option::of(17u8..=24))
}

fn prefix_for(idx: u8) -> IpPrefix {
    IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::new(85, idx, 0, 0), 16).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness + completeness on well-formed repositories: every ROA the
    /// builder published yields exactly its VRPs; nothing is rejected.
    #[test]
    fn validator_accepts_exactly_what_was_published(
        specs in prop::collection::vec(arb_roa_spec(), 0..20),
        seed in 0u64..1000,
    ) {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(seed, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]))
            .unwrap();
        let mut expected: Vec<Vrp> = Vec::new();
        for (idx, asn, maxlen) in &specs {
            let prefix = prefix_for(*idx);
            let rp = match maxlen {
                Some(ml) => RoaPrefix::up_to(prefix, *ml),
                None => RoaPrefix::exact(prefix),
            };
            b.add_roa(isp, Asn::new(*asn), vec![rp]).unwrap();
            expected.push(Vrp {
                prefix,
                max_length: maxlen.unwrap_or(16),
                asn: Asn::new(*asn),
            });
        }
        let repo = b.finalize();
        let report = validate(&repo, now);
        prop_assert_eq!(report.rejected_count(), 0);
        expected.sort();
        expected.dedup();
        prop_assert_eq!(report.vrps, expected);
    }

    /// Tampering with any single ROA's ASN after publication never yields
    /// a VRP for the tampered ASN (no forgery passes).
    #[test]
    fn tampered_asn_never_validates(
        specs in prop::collection::vec(arb_roa_spec(), 1..10),
        victim in any::<prop::sample::Index>(),
        seed in 0u64..200,
    ) {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(seed, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]))
            .unwrap();
        for (idx, asn, maxlen) in &specs {
            let prefix = prefix_for(*idx);
            let rp = match maxlen {
                Some(ml) => RoaPrefix::up_to(prefix, *ml),
                None => RoaPrefix::exact(prefix),
            };
            b.add_roa(isp, Asn::new(*asn), vec![rp]).unwrap();
        }
        let mut repo = b.finalize();
        const EVIL: u32 = 4_000_000_000;
        let pp = repo.points.get_mut(
            &ripki_crypto::keystore::Keypair::derive(seed, "ca/ISP-1").key_id
        ).unwrap();
        let i = victim.index(pp.roas.len());
        pp.roas[i].asn = Asn::new(EVIL);
        let report = validate(&repo, now);
        prop_assert!(report.vrps.iter().all(|v| v.asn != Asn::new(EVIL)));
    }

    /// Validation at a time far beyond every validity window yields no
    /// VRPs, regardless of repository shape.
    #[test]
    fn expired_world_is_empty(
        specs in prop::collection::vec(arb_roa_spec(), 0..8),
        seed in 0u64..200,
    ) {
        let mut b = RepositoryBuilder::new(seed, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]))
            .unwrap();
        for (idx, asn, _) in &specs {
            b.add_roa(isp, Asn::new(*asn), vec![RoaPrefix::exact(prefix_for(*idx))])
                .unwrap();
        }
        let repo = b.finalize();
        let report = validate(&repo, SimTime::EPOCH + Duration::years(50));
        prop_assert!(report.vrps.is_empty());
    }

    /// Revoking a random subset of ROA EE serials removes exactly those
    /// ROAs' VRPs.
    #[test]
    fn revocation_is_precise(
        n_roas in 1usize..12,
        revoke_mask in any::<u16>(),
        seed in 0u64..200,
    ) {
        let now = SimTime::EPOCH + Duration::days(1);
        let mut b = RepositoryBuilder::new(seed, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(ta, "ISP-1", Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]))
            .unwrap();
        // Serials: TA=1, ISP=2, ROA EEs = 3..3+n
        let mut kept: Vec<Asn> = Vec::new();
        for i in 0..n_roas {
            let asn = Asn::new(1000 + i as u32);
            b.add_roa(isp, asn, vec![RoaPrefix::exact(prefix_for(i as u8))]).unwrap();
            let serial = 3 + i as u64;
            if revoke_mask & (1 << i) != 0 {
                b.revoke(isp, serial).unwrap();
            } else {
                kept.push(asn);
            }
        }
        let repo = b.finalize();
        let report = validate(&repo, now);
        let mut got: Vec<Asn> = report.vrps.iter().map(|v| v.asn).collect();
        got.sort();
        kept.sort();
        prop_assert_eq!(got, kept);
    }
}
