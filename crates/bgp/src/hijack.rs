//! Prefix-hijack experiments (the paper's attacker model, §2.3).
//!
//! "We assume an attacker who is able to redirect network traffic destined
//! to the web server by manipulating Internet routing." Two classic
//! attack shapes are modelled:
//!
//! * **Origin hijack** — the attacker announces the victim's exact prefix
//!   from its own AS. Victims and attackers compete on routing policy;
//!   the attacker captures the ASes that are policy-closer to it.
//! * **Subprefix hijack** — the attacker announces a more-specific. By
//!   longest-prefix match every AS that accepts the announcement routes
//!   to the attacker, regardless of path length.
//!
//! Route origin validation changes both pictures: an AS that deploys ROV
//! drops announcements that validate **Invalid** against the VRP set. The
//! experiment sweeps ROV deployment and reports the attacker's capture
//! rate — quantifying the paper's claim that a ROA-covered prefix plus
//! deployed ROV blunts hijacks, and that "the attacker can harm specific
//! subsets of clients" when propagation stays local.

use crate::propagate::{propagate, RoutingOutcome};
use crate::rov::{RouteOriginValidator, RpkiState};
use crate::topology::Topology;
use ripki_net::{Asn, IpPrefix};
use std::collections::BTreeSet;
use std::fmt;

/// Which attack is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Attacker announces the victim's exact prefix.
    OriginHijack,
    /// Attacker announces a more-specific of the victim's prefix.
    SubprefixHijack,
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackKind::OriginHijack => write!(f, "origin hijack"),
            AttackKind::SubprefixHijack => write!(f, "subprefix hijack"),
        }
    }
}

/// The experiment definition.
#[derive(Debug, Clone)]
pub struct HijackScenario {
    /// The legitimate origin AS.
    pub victim: Asn,
    /// The attacking AS.
    pub attacker: Asn,
    /// The victim's announced prefix.
    pub victim_prefix: IpPrefix,
    /// The attacker's announcement (equal to `victim_prefix` for origin
    /// hijacks; a more-specific for subprefix hijacks).
    pub attacker_prefix: IpPrefix,
    /// Attack shape.
    pub kind: AttackKind,
}

impl HijackScenario {
    /// An origin hijack of `prefix`.
    pub fn origin_hijack(victim: Asn, attacker: Asn, prefix: IpPrefix) -> HijackScenario {
        HijackScenario {
            victim,
            attacker,
            victim_prefix: prefix,
            attacker_prefix: prefix,
            kind: AttackKind::OriginHijack,
        }
    }

    /// A subprefix hijack: the attacker announces `subprefix` (must be
    /// strictly more specific than `prefix`).
    pub fn subprefix_hijack(
        victim: Asn,
        attacker: Asn,
        prefix: IpPrefix,
        subprefix: IpPrefix,
    ) -> HijackScenario {
        debug_assert!(prefix.covers(&subprefix) && subprefix.len() > prefix.len());
        HijackScenario {
            victim,
            attacker,
            victim_prefix: prefix,
            attacker_prefix: subprefix,
            kind: AttackKind::SubprefixHijack,
        }
    }
}

/// Outcome of one hijack experiment.
#[derive(Debug, Clone)]
pub struct HijackOutcome {
    /// ASes whose traffic for the victim's addresses reaches the victim.
    pub safe: BTreeSet<Asn>,
    /// ASes whose traffic reaches the attacker.
    pub hijacked: BTreeSet<Asn>,
    /// ASes with no route at all to the affected space.
    pub disconnected: BTreeSet<Asn>,
}

impl HijackOutcome {
    /// Fraction of ASes captured by the attacker, over all ASes that had
    /// any route (attacker and victim excluded from the denominator).
    pub fn capture_rate(&self) -> f64 {
        let safe = self.safe.len() as f64;
        let hijacked = self.hijacked.len() as f64;
        let total = safe + hijacked - 2.0; // exclude victim + attacker selves
        if total <= 0.0 {
            return 0.0;
        }
        let hijacked_others = hijacked - 1.0; // the attacker itself
        (hijacked_others / total).clamp(0.0, 1.0)
    }
}

/// Run a hijack experiment.
///
/// `rov_deployed` is the set of ASes filtering RFC-6811-Invalid routes;
/// `validator` carries the VRPs (possibly empty — no ROAs, nothing is
/// ever Invalid, ROV is inert: the paper's "unprotected website" case).
pub fn run(
    topology: &Topology,
    scenario: &HijackScenario,
    validator: &RouteOriginValidator,
    rov_deployed: &BTreeSet<Asn>,
) -> HijackOutcome {
    match scenario.kind {
        AttackKind::OriginHijack => run_origin_hijack(topology, scenario, validator, rov_deployed),
        AttackKind::SubprefixHijack => {
            run_subprefix_hijack(topology, scenario, validator, rov_deployed)
        }
    }
}

fn rov_filter<'a>(
    prefix: IpPrefix,
    victim: Asn,
    attacker: Asn,
    validator: &'a RouteOriginValidator,
    rov_deployed: &'a BTreeSet<Asn>,
) -> impl Fn(Asn, Asn) -> bool + 'a {
    move |importer: Asn, origin: Asn| {
        if !rov_deployed.contains(&importer) {
            return true;
        }
        // Which prefix the route is for depends on the origin: both
        // compete on the same prefix here, so validate (prefix, origin).
        let _ = (victim, attacker);
        validator.validate(&prefix, origin) != RpkiState::Invalid
    }
}

fn run_origin_hijack(
    topology: &Topology,
    scenario: &HijackScenario,
    validator: &RouteOriginValidator,
    rov_deployed: &BTreeSet<Asn>,
) -> HijackOutcome {
    let filter = rov_filter(
        scenario.victim_prefix,
        scenario.victim,
        scenario.attacker,
        validator,
        rov_deployed,
    );
    let outcome = propagate(topology, &[scenario.victim, scenario.attacker], &filter);
    classify(topology, &outcome, scenario.victim, scenario.attacker)
}

fn run_subprefix_hijack(
    topology: &Topology,
    scenario: &HijackScenario,
    validator: &RouteOriginValidator,
    rov_deployed: &BTreeSet<Asn>,
) -> HijackOutcome {
    // The more-specific wins by longest-prefix match wherever it is
    // accepted, so propagate the two prefixes independently.
    let sub_filter = rov_filter(
        scenario.attacker_prefix,
        scenario.victim,
        scenario.attacker,
        validator,
        rov_deployed,
    );
    let sub_outcome = propagate(topology, &[scenario.attacker], &sub_filter);
    let cover_filter = rov_filter(
        scenario.victim_prefix,
        scenario.victim,
        scenario.attacker,
        validator,
        rov_deployed,
    );
    let cover_outcome = propagate(topology, &[scenario.victim], &cover_filter);

    let mut out = HijackOutcome {
        safe: BTreeSet::new(),
        hijacked: BTreeSet::new(),
        disconnected: BTreeSet::new(),
    };
    for asn in topology.asns() {
        if asn == scenario.victim {
            // The victim delivers its own address space locally; the
            // imported more-specific never beats a connected route.
            out.safe.insert(asn);
        } else if sub_outcome.reaches(asn) == Some(scenario.attacker) {
            out.hijacked.insert(asn);
        } else if cover_outcome.reaches(asn) == Some(scenario.victim) {
            out.safe.insert(asn);
        } else {
            out.disconnected.insert(asn);
        }
    }
    out
}

fn classify(
    topology: &Topology,
    outcome: &RoutingOutcome,
    victim: Asn,
    attacker: Asn,
) -> HijackOutcome {
    let mut out = HijackOutcome {
        safe: BTreeSet::new(),
        hijacked: BTreeSet::new(),
        disconnected: BTreeSet::new(),
    };
    for asn in topology.asns() {
        match outcome.reaches(asn) {
            Some(o) if o == victim => {
                out.safe.insert(asn);
            }
            Some(o) if o == attacker => {
                out.hijacked.insert(asn);
            }
            _ => {
                out.disconnected.insert(asn);
            }
        }
    }
    out
}

/// Sweep ROV deployment at the given fractions (deterministic adopter
/// selection by seed) and report `(fraction, capture_rate)` pairs.
pub fn deployment_sweep(
    topology: &Topology,
    scenario: &HijackScenario,
    validator: &RouteOriginValidator,
    fractions: &[f64],
    seed: u64,
) -> Vec<(f64, f64)> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed ^ ROV_SWEEP_SALT);
    let mut asns: Vec<Asn> = topology.asns().collect();
    asns.shuffle(&mut rng);
    fractions
        .iter()
        .map(|f| {
            let n = ((asns.len() as f64) * f).round() as usize;
            let deployed: BTreeSet<Asn> = asns.iter().take(n).copied().collect();
            let outcome = run(topology, scenario, validator, &deployed);
            (*f, outcome.capture_rate())
        })
        .collect()
}

/// Salt so that adopter selection differs from other seeded draws.
const ROV_SWEEP_SALT: u64 = 0x0520_1337;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rov::VrpTriple;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// Victim stub and attacker stub on opposite sides of two tier-1s.
    fn arena() -> (Topology, Asn, Asn) {
        let mut t = Topology::new();
        let t1a = Asn::new(10);
        let t1b = Asn::new(11);
        let m1 = Asn::new(1000);
        let m2 = Asn::new(1001);
        let victim = Asn::new(10_000);
        let attacker = Asn::new(10_001);
        t.add_peering(t1a, t1b);
        t.add_customer_provider(m1, t1a);
        t.add_customer_provider(m2, t1b);
        t.add_customer_provider(victim, m1);
        t.add_customer_provider(attacker, m2);
        (t, victim, attacker)
    }

    #[test]
    fn origin_hijack_without_rov_splits_the_world() {
        let (t, victim, attacker) = arena();
        let scenario = HijackScenario::origin_hijack(victim, attacker, p("203.0.113.0/24"));
        let out = run(
            &t,
            &scenario,
            &RouteOriginValidator::new(),
            &BTreeSet::new(),
        );
        // Victim side: victim, m1, t1a. Attacker side: attacker, m2, t1b.
        assert!(out.safe.contains(&victim));
        assert!(out.safe.contains(&Asn::new(1000)));
        assert!(out.safe.contains(&Asn::new(10)));
        assert!(out.hijacked.contains(&attacker));
        assert!(out.hijacked.contains(&Asn::new(1001)));
        assert!(out.hijacked.contains(&Asn::new(11)));
        assert!(out.disconnected.is_empty());
        assert!(out.capture_rate() > 0.0);
    }

    #[test]
    fn full_rov_with_roa_stops_origin_hijack() {
        let (t, victim, attacker) = arena();
        let prefix = p("203.0.113.0/24");
        let scenario = HijackScenario::origin_hijack(victim, attacker, prefix);
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 24,
            asn: victim,
        }]);
        let everyone: BTreeSet<Asn> = t.asns().collect();
        let out = run(&t, &scenario, &validator, &everyone);
        // The attacker still "hijacks" itself (it originates), everyone
        // else routes to the victim.
        assert_eq!(out.hijacked.len(), 1);
        assert!(out.hijacked.contains(&attacker));
        assert_eq!(out.capture_rate(), 0.0);
        assert_eq!(out.safe.len(), t.len() - 1);
    }

    #[test]
    fn rov_without_roa_is_inert() {
        let (t, victim, attacker) = arena();
        let prefix = p("203.0.113.0/24");
        let scenario = HijackScenario::origin_hijack(victim, attacker, prefix);
        let everyone: BTreeSet<Asn> = t.asns().collect();
        let no_roas = RouteOriginValidator::new();
        let out = run(&t, &scenario, &no_roas, &everyone);
        // NotFound is not filtered; hijack proceeds as without ROV.
        assert!(out.capture_rate() > 0.0);
    }

    #[test]
    fn subprefix_hijack_captures_everything_without_rov() {
        let (t, victim, attacker) = arena();
        let scenario = HijackScenario::subprefix_hijack(
            victim,
            attacker,
            p("203.0.113.0/24"),
            p("203.0.113.0/25"),
        );
        let out = run(
            &t,
            &scenario,
            &RouteOriginValidator::new(),
            &BTreeSet::new(),
        );
        // Longest-prefix match: every AS with the /25 routes to the
        // attacker — including the victim's own providers.
        assert_eq!(out.hijacked.len(), t.len() - 1);
        assert!(out.safe.contains(&victim));
        assert!((out.capture_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxlength_roa_plus_rov_stops_subprefix_hijack() {
        let (t, victim, attacker) = arena();
        let prefix = p("203.0.113.0/24");
        let scenario =
            HijackScenario::subprefix_hijack(victim, attacker, prefix, p("203.0.113.0/25"));
        // ROA pins maxLength to 24: the /25 is Invalid for everyone.
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 24,
            asn: victim,
        }]);
        let everyone: BTreeSet<Asn> = t.asns().collect();
        let out = run(&t, &scenario, &validator, &everyone);
        assert_eq!(out.hijacked.len(), 1); // only the attacker itself
        assert_eq!(out.capture_rate(), 0.0);
    }

    #[test]
    fn partial_rov_partial_protection() {
        let (t, victim, attacker) = arena();
        let prefix = p("203.0.113.0/24");
        let scenario = HijackScenario::origin_hijack(victim, attacker, prefix);
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 24,
            asn: victim,
        }]);
        // Only t1b (attacker's transit) filters: the attacker's own
        // announcement dies at its first upstream hop beyond m2.
        let deployed: BTreeSet<Asn> = [Asn::new(11)].into_iter().collect();
        let out = run(&t, &scenario, &validator, &deployed);
        // m2 still routes to the attacker (no ROV there)…
        assert!(out.hijacked.contains(&Asn::new(1001)));
        // …but t1b and everything beyond is safe.
        assert!(out.safe.contains(&Asn::new(11)));
        let none = run(&t, &scenario, &validator, &BTreeSet::new());
        assert!(out.capture_rate() < none.capture_rate());
    }

    #[test]
    fn deployment_sweep_is_monotone_here() {
        let t = Topology::generate(11, 3, 15, 150, 0.1);
        let victim = Asn::new(10_000);
        let attacker = Asn::new(10_100);
        let prefix = p("198.51.100.0/24");
        let scenario = HijackScenario::origin_hijack(victim, attacker, prefix);
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 24,
            asn: victim,
        }]);
        let sweep = deployment_sweep(&t, &scenario, &validator, &[0.0, 1.0], 5);
        assert_eq!(sweep.len(), 2);
        let (_, at_zero) = sweep[0];
        let (_, at_full) = sweep[1];
        assert!(at_zero > 0.0, "hijack must capture someone with no ROV");
        assert_eq!(at_full, 0.0, "full ROV must stop the origin hijack");
    }
}
