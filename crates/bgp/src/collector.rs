//! Route collectors: after-the-fact routing visibility.
//!
//! The paper's §5.2 contrasts two information channels: "RPKI data differs
//! from public routing data such as BGP collectors or looking glasses.
//! Those sources also provide insights into peering relations but only
//! after the event has occurred." A collector peers with a set of vantage
//! ASes and records the routes *they selected* — nothing more. The privacy
//! experiment joins this view against the proactive ROA catalog.

use crate::propagate::RoutingOutcome;
use ripki_net::{Asn, IpPrefix};
use std::collections::BTreeSet;
use std::fmt;

/// A route collector with a fixed set of peering vantages.
#[derive(Debug, Clone)]
pub struct Collector {
    /// The ASes feeding this collector.
    pub vantages: BTreeSet<Asn>,
    observed: BTreeSet<(IpPrefix, Asn)>,
}

impl Collector {
    /// A collector fed by `vantages`.
    pub fn new(vantages: impl IntoIterator<Item = Asn>) -> Collector {
        Collector {
            vantages: vantages.into_iter().collect(),
            observed: BTreeSet::new(),
        }
    }

    /// Record what the vantages see for one propagated prefix.
    ///
    /// Only vantages that actually selected a route contribute; the
    /// recorded origin is the one *their* best path leads to — a local
    /// (possibly hijacked) view, exactly like real collectors.
    pub fn observe(&mut self, prefix: IpPrefix, outcome: &RoutingOutcome) {
        for v in &self.vantages {
            if let Some(origin) = outcome.reaches(*v) {
                self.observed.insert((prefix, origin));
            }
        }
    }

    /// Record a raw (prefix, origin) sighting (e.g. imported from a
    /// table dump).
    pub fn observe_raw(&mut self, prefix: IpPrefix, origin: Asn) {
        self.observed.insert((prefix, origin));
    }

    /// Everything this collector has seen.
    pub fn observations(&self) -> &BTreeSet<(IpPrefix, Asn)> {
        &self.observed
    }

    /// Whether `(prefix, origin)` was ever observed.
    pub fn has_seen(&self, prefix: IpPrefix, origin: Asn) -> bool {
        self.observed.contains(&(prefix, origin))
    }

    /// Number of distinct observations.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }
}

impl fmt::Display for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collector: {} vantages, {} observations",
            self.vantages.len(),
            self.observed.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{accept_all, propagate};
    use crate::topology::Topology;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn collector_sees_only_selected_routes() {
        // victim and backup both authorized, but only victim announces.
        let mut t = Topology::new();
        let provider = Asn::new(10);
        let victim = Asn::new(100);
        let backup = Asn::new(200);
        t.add_customer_provider(victim, provider);
        t.add_customer_provider(backup, provider);
        let outcome = propagate(&t, &[victim], &accept_all);

        let mut c = Collector::new([provider]);
        c.observe(p("203.0.113.0/24"), &outcome);
        assert!(c.has_seen(p("203.0.113.0/24"), victim));
        // The backup relation is invisible to the collector.
        assert!(!c.has_seen(p("203.0.113.0/24"), backup));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn vantage_without_route_contributes_nothing() {
        let mut t = Topology::new();
        let isolated = Asn::new(999);
        let origin = Asn::new(100);
        t.add_as(isolated);
        t.add_as(origin);
        let outcome = propagate(&t, &[origin], &accept_all);
        let mut c = Collector::new([isolated]);
        c.observe(p("203.0.113.0/24"), &outcome);
        assert!(c.is_empty());
    }

    #[test]
    fn hijacked_vantage_records_attacker_origin() {
        let mut t = Topology::new();
        let provider = Asn::new(10);
        let victim = Asn::new(100);
        let attacker = Asn::new(200);
        // Attacker is provider's customer too — it wins at the provider
        // only if policy prefers it; with both customer routes, shorter
        // path ties break on lower next-hop ASN (victim:100), so victim
        // wins at the provider. Put the vantage under the attacker
        // instead.
        let vantage = Asn::new(300);
        t.add_customer_provider(victim, provider);
        t.add_customer_provider(attacker, provider);
        t.add_customer_provider(vantage, attacker);
        let outcome = propagate(&t, &[victim, attacker], &accept_all);
        let mut c = Collector::new([vantage, provider]);
        c.observe(p("203.0.113.0/24"), &outcome);
        assert!(c.has_seen(p("203.0.113.0/24"), attacker));
        assert!(c.has_seen(p("203.0.113.0/24"), victim));
    }

    #[test]
    fn observe_raw_and_display() {
        let mut c = Collector::new([Asn::new(1)]);
        c.observe_raw(p("10.0.0.0/8"), Asn::new(5));
        c.observe_raw(p("10.0.0.0/8"), Asn::new(5)); // dedup
        assert_eq!(c.len(), 1);
        assert!(c.to_string().contains("1 vantages"));
        assert_eq!(c.observations().len(), 1);
    }
}
