//! # ripki-bgp
//!
//! The inter-domain routing substrate of the `ripki` workspace: everything
//! the paper's steps 3–4 and its attacker model (§2.3) need from BGP,
//! without the wire protocol.
//!
//! ## Measurement side (paper §3, steps 3–4)
//!
//! * [`path::AsPath`] — AS paths with `AS_SEQUENCE` and `AS_SET` segments
//!   and origin extraction; entries whose origin is an `AS_SET` are
//!   excluded per the methodology (RFC 6472 deprecates `AS_SET`).
//! * [`rib::Rib`] — a routing table over a prefix trie; step 3's
//!   "extract **all covering prefixes** and derive the origin AS" is
//!   [`rib::Rib::lookup_addr`].
//! * [`dump::TableDump`] — a RIS/`bgpdump -m`-flavoured text format so
//!   that tables can be round-tripped like the paper's RIS dumps.
//! * [`rov`] — RFC 6811 prefix origin validation: `Valid` / `Invalid` /
//!   `NotFound` against a set of VRPs.
//!
//! ## Simulation side (paper §2.3, §5)
//!
//! * [`topology::Topology`] — an AS-level graph with customer/provider and
//!   peer relationships, plus a deterministic generator producing
//!   tiered Internet-like topologies.
//! * [`propagate`] — Gao–Rexford policy routing (customer > peer >
//!   provider preference, valley-free export) to a fixed point.
//! * [`hijack`] — origin- and subprefix-hijack experiments, with
//!   configurable ROV deployment, measuring how many ASes an attacker
//!   captures ("the attacker can harm specific subsets of clients").
//! * [`collector`] — route collectors: the after-the-fact visibility the
//!   paper contrasts with the RPKI's proactive catalog (§5.2).
//!
//! ## Omissions
//!
//! * No RFC 4271 message formats, FSM, or timers — the paper's pipeline
//!   reads table *dumps*, not live sessions.
//! * No intra-AS detail (IGP, route reflectors): one AS, one best route.
//! * No MRT binary format; [`dump`] is a text equivalent.

pub mod aggregate;
pub mod collector;
pub mod dump;
pub mod hijack;
pub mod path;
pub mod propagate;
pub mod rib;
pub mod rov;
pub mod topology;

pub use dump::TableDump;
pub use path::{AsPath, Origin, Segment};
pub use rib::{Rib, RibChanges, RibDelta, RibEntry, RibOp};
pub use rov::{RouteOriginValidator, RpkiState, ValidityDetail, VrpTriple};
pub use topology::{Relationship, Topology};
