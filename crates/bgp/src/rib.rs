//! The Routing Information Base: what a route server's "active table"
//! dump contains.
//!
//! The paper takes "dumps of the active tables of the RIPE RIS route
//! servers" and, for each IP address of a domain, extracts "all covering
//! prefixes" and their origin ASes. [`Rib::lookup_addr`] is that
//! operation; [`Rib::origins_for_addr`] additionally applies the AS_SET
//! exclusion and reports what was skipped.

use crate::path::{AsPath, Origin};
use ripki_net::{Asn, IpPrefix, PrefixTrie};
use std::fmt;
use std::net::IpAddr;

/// One table entry: a prefix announced with an AS path, as seen from a
/// collector peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// The announced prefix.
    pub prefix: IpPrefix,
    /// The AS path as received.
    pub path: AsPath,
    /// The collector peer that contributed the entry (vantage point).
    pub peer: Asn,
}

impl RibEntry {
    /// The entry's unambiguous origin AS, if any.
    pub fn origin(&self) -> Option<Asn> {
        self.path.origin().asn()
    }
}

impl fmt::Display for RibEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via [{}] (peer AS{})",
            self.prefix,
            self.path,
            self.peer.value()
        )
    }
}

/// A prefix/origin pair extracted for the measurement pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixOrigin {
    /// The covering prefix found in the table.
    pub prefix: IpPrefix,
    /// Its origin AS.
    pub origin: Asn,
}

impl fmt::Display for PrefixOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.prefix, self.origin)
    }
}

/// Outcome of mapping one address through the table (methodology step 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressMapping {
    /// All distinct (covering prefix, origin) pairs.
    pub pairs: Vec<PrefixOrigin>,
    /// Entries skipped because the origin was an `AS_SET`.
    pub as_set_skipped: usize,
}

impl AddressMapping {
    /// Whether the address is reachable at all from this table.
    pub fn is_reachable(&self) -> bool {
        !self.pairs.is_empty()
    }
}

/// A full table: multiple entries may exist per prefix (one per peer).
#[derive(Debug, Clone, Default)]
pub struct Rib {
    trie: PrefixTrie<Vec<RibEntry>>,
    entry_count: usize,
}

impl Rib {
    /// An empty table.
    pub fn new() -> Rib {
        Rib::default()
    }

    /// Insert an entry.
    pub fn insert(&mut self, entry: RibEntry) {
        self.entry_count += 1;
        if let Some(existing) = self.trie.get_mut(&entry.prefix) {
            existing.push(entry);
        } else {
            self.trie.insert(entry.prefix, vec![entry]);
        }
    }

    /// Number of entries (not distinct prefixes).
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of distinct prefixes.
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }

    /// All entries for covering prefixes of `addr` (most general first).
    pub fn lookup_addr(&self, addr: IpAddr) -> Vec<&RibEntry> {
        self.trie
            .covering_addr(addr)
            .into_iter()
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// All entries stored under exactly `prefix`.
    pub fn entries_for(&self, prefix: &IpPrefix) -> &[RibEntry] {
        self.trie.get(prefix).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Step 3 of the methodology: all (covering prefix, origin AS) pairs
    /// for `addr`, deduplicated; AS_SET-origin entries excluded and
    /// counted.
    pub fn origins_for_addr(&self, addr: IpAddr) -> AddressMapping {
        let mut mapping = AddressMapping::default();
        for entry in self.lookup_addr(addr) {
            match entry.path.origin() {
                Origin::Asn(origin) => {
                    mapping.pairs.push(PrefixOrigin {
                        prefix: entry.prefix,
                        origin,
                    });
                }
                Origin::Set(_) => mapping.as_set_skipped += 1,
                Origin::None => {}
            }
        }
        mapping.pairs.sort();
        mapping.pairs.dedup();
        mapping
    }

    /// Iterate every entry (grouped by prefix, IPv4 first).
    pub fn iter(&self) -> impl Iterator<Item = &RibEntry> {
        self.trie.iter().into_iter().flat_map(|(_, v)| v.iter())
    }

    /// All distinct (prefix, origin) pairs in the whole table — the
    /// "entire BGP table" view used for general deployment statistics and
    /// the route-collector emulation.
    pub fn all_prefix_origins(&self) -> Vec<PrefixOrigin> {
        let mut out: Vec<PrefixOrigin> = self
            .iter()
            .filter_map(|e| {
                e.origin().map(|origin| PrefixOrigin {
                    prefix: e.prefix,
                    origin,
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl FromIterator<RibEntry> for Rib {
    fn from_iter<I: IntoIterator<Item = RibEntry>>(iter: I) -> Rib {
        let mut rib = Rib::new();
        for e in iter {
            rib.insert(e);
        }
        rib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Segment;

    fn entry(prefix: &str, path: &[u32], peer: u32) -> RibEntry {
        RibEntry {
            prefix: prefix.parse().unwrap(),
            path: AsPath::sequence(path.iter().copied()),
            peer: Asn::new(peer),
        }
    }

    fn a(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_counts() {
        let mut rib = Rib::new();
        assert!(rib.is_empty());
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 2], 200)); // second peer
        rib.insert(entry("10.1.0.0/16", &[1, 5], 100));
        assert_eq!(rib.len(), 3);
        assert_eq!(rib.prefix_count(), 2);
        assert_eq!(rib.entries_for(&"10.0.0.0/8".parse().unwrap()).len(), 2);
        assert_eq!(rib.entries_for(&"99.0.0.0/8".parse().unwrap()).len(), 0);
    }

    #[test]
    fn lookup_addr_finds_all_covering() {
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.1.0.0/16", &[1, 5], 100));
        rib.insert(entry("10.2.0.0/16", &[1, 6], 100));
        let found = rib.lookup_addr(a("10.1.2.3"));
        assert_eq!(found.len(), 2);
        assert!(rib.lookup_addr(a("11.0.0.1")).is_empty());
    }

    #[test]
    fn origins_dedup_across_peers() {
        let mut rib = Rib::new();
        // Same prefix+origin via two peers → one pair.
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 9, 2], 200));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].origin, Asn::new(2));
        assert!(m.is_reachable());
    }

    #[test]
    fn moas_yields_multiple_pairs() {
        // Multi-origin AS conflict: two different origins for one prefix.
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 7], 200));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.pairs.len(), 2);
    }

    #[test]
    fn as_set_entries_skipped_and_counted() {
        let mut rib = Rib::new();
        rib.insert(RibEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            path: AsPath::from_segments(vec![
                Segment::Sequence(vec![Asn::new(1)]),
                Segment::Set(vec![Asn::new(2), Asn::new(3)]),
            ]),
            peer: Asn::new(100),
        });
        rib.insert(entry("10.0.0.0/9", &[1, 4], 100));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.as_set_skipped, 1);
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].origin, Asn::new(4));
    }

    #[test]
    fn unreachable_address() {
        let rib = Rib::new();
        let m = rib.origins_for_addr(a("8.8.8.8"));
        assert!(!m.is_reachable());
        assert_eq!(m.as_set_skipped, 0);
    }

    #[test]
    fn all_prefix_origins_dedups() {
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[9, 2], 200));
        rib.insert(entry("2001:db8::/32", &[1, 3], 100));
        let pairs = rib.all_prefix_origins();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn from_iterator() {
        let rib: Rib = vec![
            entry("10.0.0.0/8", &[1, 2], 100),
            entry("11.0.0.0/8", &[1, 3], 100),
        ]
        .into_iter()
        .collect();
        assert_eq!(rib.len(), 2);
    }
}
