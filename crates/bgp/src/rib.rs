//! The Routing Information Base: what a route server's "active table"
//! dump contains.
//!
//! The paper takes "dumps of the active tables of the RIPE RIS route
//! servers" and, for each IP address of a domain, extracts "all covering
//! prefixes" and their origin ASes. [`Rib::lookup_addr`] is that
//! operation; [`Rib::origins_for_addr`] additionally applies the AS_SET
//! exclusion and reports what was skipped.

use crate::path::{AsPath, Origin};
use ripki_net::{Asn, IpPrefix, PrefixTrie};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::net::IpAddr;
use std::sync::Arc;

/// Parent-chain length at which [`Rib::apply`] flattens into a fresh
/// root instead of adding another layer. RIB layers are smaller but
/// more frequent than zone layers (route flap), so the bound is tighter.
pub const MAX_LAYER_DEPTH: usize = 16;

/// One table entry: a prefix announced with an AS path, as seen from a
/// collector peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// The announced prefix.
    pub prefix: IpPrefix,
    /// The AS path as received.
    pub path: AsPath,
    /// The collector peer that contributed the entry (vantage point).
    pub peer: Asn,
}

impl RibEntry {
    /// The entry's unambiguous origin AS, if any.
    pub fn origin(&self) -> Option<Asn> {
        self.path.origin().asn()
    }
}

impl fmt::Display for RibEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via [{}] (peer AS{})",
            self.prefix,
            self.path,
            self.peer.value()
        )
    }
}

/// A prefix/origin pair extracted for the measurement pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixOrigin {
    /// The covering prefix found in the table.
    pub prefix: IpPrefix,
    /// Its origin AS.
    pub origin: Asn,
}

impl fmt::Display for PrefixOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.prefix, self.origin)
    }
}

/// Outcome of mapping one address through the table (methodology step 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressMapping {
    /// All distinct (covering prefix, origin) pairs.
    pub pairs: Vec<PrefixOrigin>,
    /// Entries skipped because the origin was an `AS_SET`.
    pub as_set_skipped: usize,
}

impl AddressMapping {
    /// Whether the address is reachable at all from this table.
    pub fn is_reachable(&self) -> bool {
        !self.pairs.is_empty()
    }
}

/// A full table: multiple entries may exist per prefix (one per peer).
///
/// Like the DNS `ZoneStore`'s layering (see `ripki-dns`), a `Rib`
/// is either a *root* (all groups local) or a thin layer over a shared
/// `Arc` parent produced by [`Rib::apply`]. In a layer, an entry under a
/// prefix shadows the parent's group for that prefix, and an *empty*
/// group is a withdrawal tombstone. All read paths treat an empty group
/// as "prefix not in table".
#[derive(Debug, Clone, Default)]
pub struct Rib {
    trie: PrefixTrie<Vec<RibEntry>>,
    entry_count: usize,
    prefix_count: usize,
    parent: Option<Arc<Rib>>,
    depth: usize,
}

impl Rib {
    /// An empty table.
    pub fn new() -> Rib {
        Rib::default()
    }

    /// Effective entry group for `prefix`, honouring tombstones.
    fn effective_entries(&self, prefix: &IpPrefix) -> Option<&Vec<RibEntry>> {
        if let Some(v) = self.trie.get(prefix) {
            return if v.is_empty() { None } else { Some(v) };
        }
        self.parent
            .as_ref()
            .and_then(|p| p.effective_entries(prefix))
    }

    /// Insert an entry.
    pub fn insert(&mut self, entry: RibEntry) {
        self.entry_count += 1;
        let prefix = entry.prefix;
        if let Some(local) = self.trie.get_mut(&prefix) {
            if local.is_empty() {
                // Re-announcing a prefix this layer had withdrawn.
                self.prefix_count += 1;
            }
            local.push(entry);
            return;
        }
        let inherited = self
            .parent
            .as_ref()
            .and_then(|p| p.effective_entries(&prefix))
            .cloned();
        let mut group = match inherited {
            Some(v) => v,
            None => {
                self.prefix_count += 1;
                Vec::new()
            }
        };
        group.push(entry);
        self.trie.insert(prefix, group);
    }

    /// Number of entries (not distinct prefixes).
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of distinct prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefix_count
    }

    /// Number of layers above the root (0 for a root table).
    pub fn layer_depth(&self) -> usize {
        self.depth
    }

    /// Covering groups for `addr` from every layer, nearest layer wins.
    fn collect_covering<'a>(
        &'a self,
        addr: IpAddr,
        groups: &mut HashMap<IpPrefix, &'a Vec<RibEntry>>,
    ) {
        for (p, v) in self.trie.covering_addr(addr) {
            groups.entry(p).or_insert(v);
        }
        if let Some(parent) = &self.parent {
            parent.collect_covering(addr, groups);
        }
    }

    /// Every group from every layer, nearest layer wins.
    fn collect_all<'a>(&'a self, groups: &mut HashMap<IpPrefix, &'a Vec<RibEntry>>) {
        for (p, v) in self.trie.iter() {
            groups.entry(p).or_insert(v);
        }
        if let Some(parent) = &self.parent {
            parent.collect_all(groups);
        }
    }

    /// All entries for covering prefixes of `addr` (most general first).
    pub fn lookup_addr(&self, addr: IpAddr) -> Vec<&RibEntry> {
        if self.parent.is_none() {
            return self
                .trie
                .covering_addr(addr)
                .into_iter()
                .flat_map(|(_, v)| v.iter())
                .collect();
        }
        let mut groups = HashMap::new();
        self.collect_covering(addr, &mut groups);
        let mut found: Vec<(IpPrefix, &Vec<RibEntry>)> =
            groups.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        // Covering prefixes of one address are nested, so ascending
        // length reproduces the trie's most-general-first order.
        found.sort_by_key(|(p, _)| p.len());
        found.into_iter().flat_map(|(_, v)| v.iter()).collect()
    }

    /// All entries stored under exactly `prefix`.
    pub fn entries_for(&self, prefix: &IpPrefix) -> &[RibEntry] {
        self.effective_entries(prefix).map_or(&[], Vec::as_slice)
    }

    /// Step 3 of the methodology: all (covering prefix, origin AS) pairs
    /// for `addr`, deduplicated; AS_SET-origin entries excluded and
    /// counted.
    pub fn origins_for_addr(&self, addr: IpAddr) -> AddressMapping {
        let mut mapping = AddressMapping::default();
        for entry in self.lookup_addr(addr) {
            match entry.path.origin() {
                Origin::Asn(origin) => {
                    mapping.pairs.push(PrefixOrigin {
                        prefix: entry.prefix,
                        origin,
                    });
                }
                Origin::Set(_) => mapping.as_set_skipped += 1,
                Origin::None => {}
            }
        }
        mapping.pairs.sort();
        mapping.pairs.dedup();
        mapping
    }

    /// Iterate every entry (grouped by prefix, IPv4 first).
    pub fn iter(&self) -> impl Iterator<Item = &RibEntry> {
        let groups: Vec<(IpPrefix, &Vec<RibEntry>)> = if self.parent.is_none() {
            self.trie
                .iter()
                .into_iter()
                .filter(|(_, v)| !v.is_empty())
                .collect()
        } else {
            let mut map = HashMap::new();
            self.collect_all(&mut map);
            let mut v: Vec<_> = map.into_iter().filter(|(_, g)| !g.is_empty()).collect();
            v.sort_by_key(|(p, _)| *p);
            v
        };
        groups.into_iter().flat_map(|(_, v)| v.iter())
    }

    /// Collapse the whole parent chain into a fresh root table.
    pub fn flatten(&self) -> Rib {
        let mut map = HashMap::new();
        self.collect_all(&mut map);
        let mut ordered: Vec<_> = map.into_iter().filter(|(_, g)| !g.is_empty()).collect();
        ordered.sort_by_key(|(p, _)| *p);
        let mut flat = Rib::new();
        for (prefix, group) in ordered {
            flat.entry_count += group.len();
            flat.prefix_count += 1;
            flat.trie.insert(prefix, group.clone());
        }
        flat
    }

    /// Replace the effective entry group for `prefix`, keeping counters
    /// accurate. An empty group is a withdrawal.
    fn set_entries(&mut self, prefix: IpPrefix, entries: Vec<RibEntry>) {
        match self.effective_entries(&prefix).map(Vec::len) {
            Some(len) => self.entry_count -= len,
            None => {
                if entries.is_empty() {
                    return;
                }
                self.prefix_count += 1;
            }
        }
        if entries.is_empty() {
            self.prefix_count -= 1;
            if self
                .parent
                .as_ref()
                .is_some_and(|p| p.effective_entries(&prefix).is_some())
            {
                self.trie.insert(prefix, Vec::new()); // tombstone
            } else {
                self.trie.remove(&prefix);
            }
        } else {
            self.entry_count += entries.len();
            self.trie.insert(prefix, entries);
        }
    }

    /// Apply `delta` on top of `parent`, producing a structurally-shared
    /// successor plus the set of prefixes whose entry group actually
    /// changed (no-op announcements / withdrawals of absent routes are
    /// filtered out).
    ///
    /// `Announce` follows BGP implicit-withdraw semantics: it replaces
    /// any existing path from the same peer for that prefix.
    pub fn apply(parent: Arc<Rib>, delta: &RibDelta) -> (Rib, RibChanges) {
        let mut next = if parent.depth + 1 > MAX_LAYER_DEPTH {
            parent.flatten()
        } else {
            Rib {
                trie: PrefixTrie::default(),
                entry_count: parent.entry_count,
                prefix_count: parent.prefix_count,
                depth: parent.depth + 1,
                parent: Some(parent),
            }
        };
        let mut changed = BTreeSet::new();
        for op in &delta.ops {
            match op {
                RibOp::Announce(entry) => {
                    let mut group = next
                        .effective_entries(&entry.prefix)
                        .cloned()
                        .unwrap_or_default();
                    if group.contains(entry) {
                        continue;
                    }
                    group.retain(|e| e.peer != entry.peer);
                    group.push(entry.clone());
                    next.set_entries(entry.prefix, group);
                    changed.insert(entry.prefix);
                }
                RibOp::Withdraw { prefix, peer } => {
                    let Some(group) = next.effective_entries(prefix) else {
                        continue;
                    };
                    if !group.iter().any(|e| e.peer == *peer) {
                        continue;
                    }
                    let mut group = group.clone();
                    group.retain(|e| e.peer != *peer);
                    next.set_entries(*prefix, group);
                    changed.insert(*prefix);
                }
                RibOp::WithdrawPrefix(prefix) => {
                    if next.effective_entries(prefix).is_none() {
                        continue;
                    }
                    next.set_entries(*prefix, Vec::new());
                    changed.insert(*prefix);
                }
            }
        }
        (next, RibChanges { changed })
    }

    /// All distinct (prefix, origin) pairs in the whole table — the
    /// "entire BGP table" view used for general deployment statistics and
    /// the route-collector emulation.
    pub fn all_prefix_origins(&self) -> Vec<PrefixOrigin> {
        let mut out: Vec<PrefixOrigin> = self
            .iter()
            .filter_map(|e| {
                e.origin().map(|origin| PrefixOrigin {
                    prefix: e.prefix,
                    origin,
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// One route-table mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibOp {
    /// A peer announces a path for a prefix (implicit withdraw of its
    /// previous path for that prefix, per BGP).
    Announce(RibEntry),
    /// One peer withdraws its route for a prefix.
    Withdraw {
        /// The withdrawn prefix.
        prefix: IpPrefix,
        /// The peer losing the route.
        peer: Asn,
    },
    /// Every peer's route for a prefix disappears (origin went dark).
    WithdrawPrefix(IpPrefix),
}

/// An ordered batch of route-table mutations for one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RibDelta {
    /// The mutations, in application order.
    pub ops: Vec<RibOp>,
}

impl RibDelta {
    /// An empty batch.
    pub fn new() -> RibDelta {
        RibDelta::default()
    }

    /// Queue an announcement.
    pub fn announce(&mut self, entry: RibEntry) {
        self.ops.push(RibOp::Announce(entry));
    }

    /// Queue a single-peer withdrawal.
    pub fn withdraw(&mut self, prefix: IpPrefix, peer: Asn) {
        self.ops.push(RibOp::Withdraw { prefix, peer });
    }

    /// Queue a full-prefix withdrawal.
    pub fn withdraw_prefix(&mut self, prefix: IpPrefix) {
        self.ops.push(RibOp::WithdrawPrefix(prefix));
    }

    /// Whether the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Prefixes whose effective entry group changed when a delta was applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RibChanges {
    /// The affected prefixes.
    pub changed: BTreeSet<IpPrefix>,
}

impl RibChanges {
    /// Whether no prefix changed.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

impl FromIterator<RibEntry> for Rib {
    fn from_iter<I: IntoIterator<Item = RibEntry>>(iter: I) -> Rib {
        let mut rib = Rib::new();
        for e in iter {
            rib.insert(e);
        }
        rib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Segment;

    fn entry(prefix: &str, path: &[u32], peer: u32) -> RibEntry {
        RibEntry {
            prefix: prefix.parse().unwrap(),
            path: AsPath::sequence(path.iter().copied()),
            peer: Asn::new(peer),
        }
    }

    fn a(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_counts() {
        let mut rib = Rib::new();
        assert!(rib.is_empty());
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 2], 200)); // second peer
        rib.insert(entry("10.1.0.0/16", &[1, 5], 100));
        assert_eq!(rib.len(), 3);
        assert_eq!(rib.prefix_count(), 2);
        assert_eq!(rib.entries_for(&"10.0.0.0/8".parse().unwrap()).len(), 2);
        assert_eq!(rib.entries_for(&"99.0.0.0/8".parse().unwrap()).len(), 0);
    }

    #[test]
    fn lookup_addr_finds_all_covering() {
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.1.0.0/16", &[1, 5], 100));
        rib.insert(entry("10.2.0.0/16", &[1, 6], 100));
        let found = rib.lookup_addr(a("10.1.2.3"));
        assert_eq!(found.len(), 2);
        assert!(rib.lookup_addr(a("11.0.0.1")).is_empty());
    }

    #[test]
    fn origins_dedup_across_peers() {
        let mut rib = Rib::new();
        // Same prefix+origin via two peers → one pair.
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 9, 2], 200));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].origin, Asn::new(2));
        assert!(m.is_reachable());
    }

    #[test]
    fn moas_yields_multiple_pairs() {
        // Multi-origin AS conflict: two different origins for one prefix.
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 7], 200));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.pairs.len(), 2);
    }

    #[test]
    fn as_set_entries_skipped_and_counted() {
        let mut rib = Rib::new();
        rib.insert(RibEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            path: AsPath::from_segments(vec![
                Segment::Sequence(vec![Asn::new(1)]),
                Segment::Set(vec![Asn::new(2), Asn::new(3)]),
            ]),
            peer: Asn::new(100),
        });
        rib.insert(entry("10.0.0.0/9", &[1, 4], 100));
        let m = rib.origins_for_addr(a("10.5.5.5"));
        assert_eq!(m.as_set_skipped, 1);
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].origin, Asn::new(4));
    }

    #[test]
    fn unreachable_address() {
        let rib = Rib::new();
        let m = rib.origins_for_addr(a("8.8.8.8"));
        assert!(!m.is_reachable());
        assert_eq!(m.as_set_skipped, 0);
    }

    #[test]
    fn all_prefix_origins_dedups() {
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[9, 2], 200));
        rib.insert(entry("2001:db8::/32", &[1, 3], 100));
        let pairs = rib.all_prefix_origins();
        assert_eq!(pairs.len(), 2);
    }

    /// Replay ops into a flat Rib (rebuild from scratch) for comparison.
    fn flat_replay(base: &Rib, deltas: &[RibDelta]) -> Rib {
        let mut groups: Vec<(IpPrefix, Vec<RibEntry>)> = {
            let mut map: HashMap<IpPrefix, Vec<RibEntry>> = HashMap::new();
            for e in base.iter() {
                map.entry(e.prefix).or_default().push(e.clone());
            }
            map.into_iter().collect()
        };
        for delta in deltas {
            for op in &delta.ops {
                match op {
                    RibOp::Announce(e) => {
                        let idx = groups.iter().position(|(p, _)| *p == e.prefix);
                        let group = match idx {
                            Some(i) => &mut groups[i].1,
                            None => {
                                groups.push((e.prefix, Vec::new()));
                                &mut groups.last_mut().unwrap().1
                            }
                        };
                        group.retain(|x| x.peer != e.peer);
                        group.push(e.clone());
                    }
                    RibOp::Withdraw { prefix, peer } => {
                        if let Some((_, g)) = groups.iter_mut().find(|(p, _)| p == prefix) {
                            g.retain(|x| x.peer != *peer);
                        }
                    }
                    RibOp::WithdrawPrefix(prefix) => {
                        if let Some((_, g)) = groups.iter_mut().find(|(p, _)| p == prefix) {
                            g.clear();
                        }
                    }
                }
            }
        }
        groups.into_iter().flat_map(|(_, g)| g).collect()
    }

    fn assert_equivalent(layered: &Rib, flat: &Rib, addrs: &[&str], prefixes: &[&str]) {
        assert_eq!(layered.len(), flat.len(), "entry count");
        assert_eq!(layered.prefix_count(), flat.prefix_count(), "prefix count");
        for s in addrs {
            let addr = a(s);
            let mut l = layered.lookup_addr(addr);
            let mut f = flat.lookup_addr(addr);
            l.sort_by_key(|e| (e.prefix, e.peer));
            f.sort_by_key(|e| (e.prefix, e.peer));
            assert_eq!(l, f, "lookup_addr mismatch for {s}");
            assert_eq!(
                layered.origins_for_addr(addr),
                flat.origins_for_addr(addr),
                "origins mismatch for {s}"
            );
        }
        for s in prefixes {
            let p: IpPrefix = s.parse().unwrap();
            let mut l = layered.entries_for(&p).to_vec();
            let mut f = flat.entries_for(&p).to_vec();
            l.sort_by_key(|e| e.peer);
            f.sort_by_key(|e| e.peer);
            assert_eq!(l, f, "entries_for mismatch at {s}");
        }
        assert_eq!(layered.all_prefix_origins(), flat.all_prefix_origins());
    }

    fn cow_base() -> Rib {
        let mut rib = Rib::new();
        rib.insert(entry("10.0.0.0/8", &[1, 2], 100));
        rib.insert(entry("10.0.0.0/8", &[3, 2], 200));
        rib.insert(entry("10.1.0.0/16", &[1, 5], 100));
        rib.insert(entry("20.0.0.0/8", &[1, 7], 100));
        rib
    }

    #[test]
    fn layered_apply_matches_flat_replay() {
        let base = cow_base();
        let mut delta = RibDelta::new();
        // More-specific hijack announcement.
        delta.announce(entry("10.1.0.0/24", &[3, 666], 200));
        // Path change from an existing peer (implicit withdraw).
        delta.announce(entry("10.0.0.0/8", &[1, 9, 2], 100));
        // One peer drops a route.
        delta.withdraw("10.0.0.0/8".parse().unwrap(), Asn::new(200));
        // A prefix goes dark entirely.
        delta.withdraw_prefix("20.0.0.0/8".parse().unwrap());

        let flat = flat_replay(&base, std::slice::from_ref(&delta));
        let (layered, changes) = Rib::apply(Arc::new(base), &delta);
        assert_eq!(layered.layer_depth(), 1);
        assert_eq!(changes.changed.len(), 3);
        assert_equivalent(
            &layered,
            &flat,
            &["10.1.0.5", "10.5.5.5", "20.1.1.1", "9.9.9.9"],
            &["10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "20.0.0.0/8"],
        );
        assert_equivalent(
            &layered.flatten(),
            &flat,
            &["10.1.0.5", "20.1.1.1"],
            &["10.0.0.0/8", "20.0.0.0/8"],
        );
    }

    #[test]
    fn noop_ops_report_no_change() {
        let base = cow_base();
        let mut delta = RibDelta::new();
        // Identical announcement.
        delta.announce(entry("10.0.0.0/8", &[1, 2], 100));
        // Withdrawal of a route that does not exist.
        delta.withdraw("10.0.0.0/8".parse().unwrap(), Asn::new(999));
        delta.withdraw_prefix("99.0.0.0/8".parse().unwrap());
        let (next, changes) = Rib::apply(Arc::new(base.clone()), &delta);
        assert!(changes.is_empty());
        assert_eq!(next.len(), base.len());
        assert_eq!(next.prefix_count(), base.prefix_count());
    }

    #[test]
    fn tombstone_hides_parent_and_reannounce_revives() {
        let base = Arc::new(cow_base());
        let mut d1 = RibDelta::new();
        d1.withdraw_prefix("10.1.0.0/16".parse().unwrap());
        let (l1, _) = Rib::apply(base.clone(), &d1);
        assert!(l1.entries_for(&"10.1.0.0/16".parse().unwrap()).is_empty());
        // Parent untouched; /8 still covers.
        assert_eq!(base.lookup_addr(a("10.1.2.3")).len(), 3);
        assert_eq!(l1.lookup_addr(a("10.1.2.3")).len(), 2);

        let mut d2 = RibDelta::new();
        d2.announce(entry("10.1.0.0/16", &[4, 8], 300));
        let (l2, c2) = Rib::apply(Arc::new(l1), &d2);
        assert_eq!(c2.changed.len(), 1);
        assert_eq!(l2.entries_for(&"10.1.0.0/16".parse().unwrap()).len(), 1);
        assert_eq!(l2.layer_depth(), 2);
    }

    #[test]
    fn deep_chains_compact() {
        let mut current = Arc::new(cow_base());
        for i in 0..(MAX_LAYER_DEPTH + 4) {
            let mut delta = RibDelta::new();
            delta.announce(entry(
                "30.0.0.0/8",
                &[1, 40 + (i as u32 % 5)],
                100 + i as u32,
            ));
            let (next, changes) = Rib::apply(current, &delta);
            assert!(!changes.is_empty());
            assert!(next.layer_depth() <= MAX_LAYER_DEPTH + 1);
            current = Arc::new(next);
        }
        // One entry per distinct peer survives the implicit withdraws.
        assert_eq!(
            current.entries_for(&"30.0.0.0/8".parse().unwrap()).len(),
            MAX_LAYER_DEPTH + 4
        );
    }

    #[test]
    fn from_iterator() {
        let rib: Rib = vec![
            entry("10.0.0.0/8", &[1, 2], 100),
            entry("11.0.0.0/8", &[1, 3], 100),
        ]
        .into_iter()
        .collect();
        assert_eq!(rib.len(), 2);
    }
}
