//! AS paths and origin extraction.
//!
//! The paper's step 3 derives "the origin AS from the AS path (i.e., the
//! right most ASN in the AS path)" and notes that "entries with an AS_SET
//! are excluded from our study as this leads to an ambiguity of the
//! attribute, which is why the function is deprecated with the deployment
//! of RPKI (RFC 6472)". [`AsPath::origin`] implements exactly that
//! distinction.

use ripki_net::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One segment of an AS path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Ordered sequence of traversed ASes.
    Sequence(Vec<Asn>),
    /// Unordered set (produced by proxy aggregation; deprecated).
    Set(Vec<Asn>),
}

/// What sits at the right-most position of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// A single, unambiguous origin AS.
    Asn(Asn),
    /// The path ends in an `AS_SET`: ambiguous, excluded from the study.
    Set(Vec<Asn>),
    /// The path is empty (internal announcement).
    None,
}

impl Origin {
    /// The unambiguous origin, if there is one.
    pub fn asn(&self) -> Option<Asn> {
        match self {
            Origin::Asn(a) => Some(*a),
            _ => None,
        }
    }
}

/// A full AS path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<Segment>,
}

impl AsPath {
    /// An empty path.
    pub fn empty() -> AsPath {
        AsPath::default()
    }

    /// A path that is a single `AS_SEQUENCE`.
    pub fn sequence(asns: impl IntoIterator<Item = u32>) -> AsPath {
        AsPath {
            segments: vec![Segment::Sequence(asns.into_iter().map(Asn::new).collect())],
        }
    }

    /// Build from raw segments.
    pub fn from_segments(segments: Vec<Segment>) -> AsPath {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Prepend `asn` (what a BGP speaker does when propagating).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(Segment::Sequence(seq)) => seq.insert(0, asn),
            _ => segments.insert(0, Segment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }

    /// Total number of ASes counted for path length (an `AS_SET` counts
    /// as one hop, per RFC 4271 route selection).
    pub fn hop_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequence(seq) => seq.len(),
                Segment::Set(_) => 1,
            })
            .sum()
    }

    /// The right-most element of the path.
    pub fn origin(&self) -> Origin {
        match self.segments.last() {
            None => Origin::None,
            Some(Segment::Sequence(seq)) => match seq.last() {
                Some(a) => Origin::Asn(*a),
                None => Origin::None,
            },
            Some(Segment::Set(set)) => Origin::Set(set.clone()),
        }
    }

    /// The left-most AS (the neighbor that sent us the route).
    pub fn first_hop(&self) -> Option<Asn> {
        match self.segments.first() {
            Some(Segment::Sequence(seq)) => seq.first().copied(),
            Some(Segment::Set(set)) => set.first().copied(),
            None => None,
        }
    }

    /// Whether `asn` appears anywhere in the path (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| match s {
            Segment::Sequence(seq) => seq.contains(&asn),
            Segment::Set(set) => set.contains(&asn),
        })
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.hop_count() == 0
    }

    /// Whether the path contains any `AS_SET` segment.
    pub fn has_as_set(&self) -> bool {
        self.segments.iter().any(|s| matches!(s, Segment::Set(_)))
    }
}

impl fmt::Display for AsPath {
    /// `bgpdump -m` style: space-separated ASNs, sets in braces:
    /// `3320 1299 {64500,64501}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                Segment::Sequence(seq) => {
                    for asn in seq {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.value())?;
                        first = false;
                    }
                }
                Segment::Set(set) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in set.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", asn.value())?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

/// Error parsing an AS-path string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError(pub String);

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path: {:?}", self.0)
    }
}

impl std::error::Error for PathParseError {}

impl FromStr for AsPath {
    type Err = PathParseError;

    fn from_str(s: &str) -> Result<AsPath, PathParseError> {
        let mut segments: Vec<Segment> = Vec::new();
        let mut current_seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(inner) = token.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| PathParseError(s.to_string()))?;
                if !current_seq.is_empty() {
                    segments.push(Segment::Sequence(std::mem::take(&mut current_seq)));
                }
                let set: Result<Vec<Asn>, _> = inner
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::parse::<Asn>)
                    .collect();
                segments.push(Segment::Set(
                    set.map_err(|_| PathParseError(s.to_string()))?,
                ));
            } else {
                current_seq.push(
                    token
                        .parse::<Asn>()
                        .map_err(|_| PathParseError(s.to_string()))?,
                );
            }
        }
        if !current_seq.is_empty() {
            segments.push(Segment::Sequence(current_seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_of_sequence() {
        let p = AsPath::sequence([3320, 1299, 65000]);
        assert_eq!(p.origin(), Origin::Asn(Asn::new(65000)));
        assert_eq!(p.origin().asn(), Some(Asn::new(65000)));
        assert_eq!(p.first_hop(), Some(Asn::new(3320)));
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn origin_of_as_set_is_ambiguous() {
        let p = AsPath::from_segments(vec![
            Segment::Sequence(vec![Asn::new(3320)]),
            Segment::Set(vec![Asn::new(100), Asn::new(200)]),
        ]);
        assert_eq!(p.origin(), Origin::Set(vec![Asn::new(100), Asn::new(200)]));
        assert_eq!(p.origin().asn(), None);
        assert!(p.has_as_set());
        // Set counts as one hop.
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn empty_path() {
        let p = AsPath::empty();
        assert_eq!(p.origin(), Origin::None);
        assert!(p.is_empty());
        assert_eq!(p.first_hop(), None);
        assert!(!p.has_as_set());
    }

    #[test]
    fn prepend_builds_propagation_path() {
        let p = AsPath::sequence([65000]);
        let p = p.prepend(Asn::new(1299)).prepend(Asn::new(3320));
        assert_eq!(p.to_string(), "3320 1299 65000");
        assert_eq!(p.origin(), Origin::Asn(Asn::new(65000)));
        // Prepend onto an empty path.
        let q = AsPath::empty().prepend(Asn::new(7));
        assert_eq!(q.to_string(), "7");
    }

    #[test]
    fn contains_for_loop_detection() {
        let p = AsPath::sequence([1, 2, 3]);
        assert!(p.contains(Asn::new(2)));
        assert!(!p.contains(Asn::new(4)));
        let with_set = AsPath::from_segments(vec![Segment::Set(vec![Asn::new(9)])]);
        assert!(with_set.contains(Asn::new(9)));
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["3320 1299 65000", "{100,200}", "3320 {100,200}", "7"] {
            let p: AsPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("33x20".parse::<AsPath>().is_err());
        assert!("{100,200".parse::<AsPath>().is_err());
        assert!("{100,abc}".parse::<AsPath>().is_err());
    }

    #[test]
    fn parse_empty_is_empty_path() {
        let p: AsPath = "".parse().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn sequence_after_set_roundtrip() {
        let p = AsPath::from_segments(vec![
            Segment::Set(vec![Asn::new(1)]),
            Segment::Sequence(vec![Asn::new(2), Asn::new(3)]),
        ]);
        let s = p.to_string();
        assert_eq!(s, "{1} 2 3");
        let back: AsPath = s.parse().unwrap();
        assert_eq!(back, p);
        assert_eq!(back.origin(), Origin::Asn(Asn::new(3)));
    }
}
