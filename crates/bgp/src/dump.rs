//! RIS-style table dumps.
//!
//! The original study consumed `bgpdump -m` text renderings of RIPE RIS
//! MRT files. This module defines an equivalent line-oriented format so
//! that tables can be exported, archived, and re-imported exactly like
//! the paper's inputs:
//!
//! ```text
//! TABLE_DUMP_SIM|<peer-asn>|<prefix>|<as-path>
//! TABLE_DUMP_SIM|64500|193.0.0.0/16|64500 3320 3333
//! TABLE_DUMP_SIM|64500|2001:db8::/32|64500 {100,200}
//! ```
//!
//! Lines starting with `#` and blank lines are ignored on input.

use crate::path::AsPath;
use crate::rib::{Rib, RibEntry};
use ripki_net::{Asn, IpPrefix};
use std::fmt;

/// Marker at the start of every record line.
pub const RECORD_TAG: &str = "TABLE_DUMP_SIM";

/// Errors from parsing a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// A line did not have the `TAG|peer|prefix|path` shape.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        content: String,
    },
    /// The peer ASN field did not parse.
    BadPeer {
        /// 1-based line number.
        line: usize,
    },
    /// The prefix field did not parse.
    BadPrefix {
        /// 1-based line number.
        line: usize,
    },
    /// The AS-path field did not parse.
    BadPath {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::BadRecord { line, content } => {
                write!(f, "line {line}: malformed record {content:?}")
            }
            DumpError::BadPeer { line } => write!(f, "line {line}: bad peer ASN"),
            DumpError::BadPrefix { line } => write!(f, "line {line}: bad prefix"),
            DumpError::BadPath { line } => write!(f, "line {line}: bad AS path"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Serializer/parser for table dumps.
pub struct TableDump;

impl TableDump {
    /// Render a table to the dump format. Entries are emitted in trie
    /// order (IPv4 first), which is deterministic.
    pub fn to_string(rib: &Rib) -> String {
        let mut out = String::new();
        out.push_str("# ripki simulated RIS table dump\n");
        for entry in rib.iter() {
            out.push_str(&format!(
                "{RECORD_TAG}|{}|{}|{}\n",
                entry.peer.value(),
                entry.prefix,
                entry.path,
            ));
        }
        out
    }

    /// Parse a dump back into a table.
    pub fn parse(input: &str) -> Result<Rib, DumpError> {
        let mut rib = Rib::new();
        for (idx, raw) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('|');
            let tag = fields.next().unwrap_or("");
            let peer = fields.next();
            let prefix = fields.next();
            let path = fields.next();
            let (Some(peer), Some(prefix), Some(path)) = (peer, prefix, path) else {
                return Err(DumpError::BadRecord {
                    line: line_no,
                    content: raw.to_string(),
                });
            };
            if tag != RECORD_TAG || fields.next().is_some() {
                return Err(DumpError::BadRecord {
                    line: line_no,
                    content: raw.to_string(),
                });
            }
            let peer: Asn = peer
                .parse()
                .map_err(|_| DumpError::BadPeer { line: line_no })?;
            let prefix: IpPrefix = prefix
                .parse()
                .map_err(|_| DumpError::BadPrefix { line: line_no })?;
            let path: AsPath = path
                .parse()
                .map_err(|_| DumpError::BadPath { line: line_no })?;
            rib.insert(RibEntry { prefix, path, peer });
        }
        Ok(rib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rib() -> Rib {
        let mut rib = Rib::new();
        rib.insert(RibEntry {
            prefix: "193.0.0.0/16".parse().unwrap(),
            path: AsPath::sequence([64500, 3320, 3333]),
            peer: Asn::new(64500),
        });
        rib.insert(RibEntry {
            prefix: "2001:db8:4::/48".parse().unwrap(),
            path: "64500 {100,200}".parse().unwrap(),
            peer: Asn::new(64500),
        });
        rib.insert(RibEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            path: AsPath::sequence([64501, 7]),
            peer: Asn::new(64501),
        });
        rib
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let rib = sample_rib();
        let text = TableDump::to_string(&rib);
        let back = TableDump::parse(&text).unwrap();
        assert_eq!(back.len(), rib.len());
        assert_eq!(back.prefix_count(), rib.prefix_count());
        // Same rendering → identical canonical dump.
        assert_eq!(TableDump::to_string(&back), text);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  \nTABLE_DUMP_SIM|1|10.0.0.0/8|1 2\n";
        let rib = TableDump::parse(text).unwrap();
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn malformed_lines_reported_with_numbers() {
        let text = "# ok\nWRONG|1|10.0.0.0/8|1 2\n";
        match TableDump::parse(text) {
            Err(DumpError::BadRecord { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            TableDump::parse("TABLE_DUMP_SIM|x|10.0.0.0/8|1"),
            Err(DumpError::BadPeer { line: 1 })
        ));
        assert!(matches!(
            TableDump::parse("TABLE_DUMP_SIM|1|10.0.0.0|1"),
            Err(DumpError::BadPrefix { line: 1 })
        ));
        assert!(matches!(
            TableDump::parse("TABLE_DUMP_SIM|1|10.0.0.0/8|x y"),
            Err(DumpError::BadPath { line: 1 })
        ));
        assert!(matches!(
            TableDump::parse("TABLE_DUMP_SIM|1|10.0.0.0/8"),
            Err(DumpError::BadRecord { .. })
        ));
        assert!(matches!(
            TableDump::parse("TABLE_DUMP_SIM|1|10.0.0.0/8|1 2|extra"),
            Err(DumpError::BadRecord { .. })
        ));
    }

    #[test]
    fn as_set_survives_roundtrip() {
        let rib = sample_rib();
        let text = TableDump::to_string(&rib);
        let back = TableDump::parse(&text).unwrap();
        let m = back.origins_for_addr("2001:db8:4::1".parse().unwrap());
        assert_eq!(m.as_set_skipped, 1);
        assert!(m.pairs.is_empty());
    }
}
