//! RFC 6811 BGP prefix origin validation.
//!
//! Given the validated ROA payloads (VRPs) from the RPKI, a route
//! `(prefix, origin)` is classified:
//!
//! * **NotFound** — no VRP covers the prefix;
//! * **Valid** — some covering VRP matches the origin AS and the
//!   announced length does not exceed its `maxLength`;
//! * **Invalid** — covering VRPs exist but none matches.
//!
//! This is the paper's step 4 per prefix-AS pair, and the import filter
//! the hijack simulation applies at ROV-deploying ASes.

use ripki_net::{Asn, IpPrefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three RFC 6811 validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RpkiState {
    /// A covering VRP authorizes this exact (prefix length, origin).
    Valid,
    /// Covering VRPs exist, none authorizes this announcement.
    Invalid,
    /// The prefix is not covered by the RPKI at all.
    NotFound,
}

impl fmt::Display for RpkiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpkiState::Valid => write!(f, "valid"),
            RpkiState::Invalid => write!(f, "invalid"),
            RpkiState::NotFound => write!(f, "not found"),
        }
    }
}

/// A VRP triple as the validator consumes it. (Mirror of
/// `ripki_rpki::Vrp`, kept separate so this crate does not depend on the
/// RPKI object model.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VrpTriple {
    /// Authorized prefix.
    pub prefix: IpPrefix,
    /// Maximum authorized announcement length.
    pub max_length: u8,
    /// Authorized origin.
    pub asn: Asn,
}

/// An origin validator over an indexed VRP set.
#[derive(Debug, Clone, Default)]
pub struct RouteOriginValidator {
    trie: PrefixTrie<Vec<(u8, Asn)>>,
    triples: Vec<VrpTriple>,
}

impl RouteOriginValidator {
    /// Empty validator (everything is NotFound).
    pub fn new() -> RouteOriginValidator {
        RouteOriginValidator::default()
    }

    /// Build from VRP triples.
    pub fn from_vrps<I: IntoIterator<Item = VrpTriple>>(iter: I) -> RouteOriginValidator {
        let mut v = RouteOriginValidator::new();
        for vrp in iter {
            v.add(vrp);
        }
        v
    }

    /// Add one VRP.
    pub fn add(&mut self, vrp: VrpTriple) {
        self.triples.push(vrp);
        if let Some(existing) = self.trie.get_mut(&vrp.prefix) {
            existing.push((vrp.max_length, vrp.asn));
        } else {
            self.trie
                .insert(vrp.prefix, vec![(vrp.max_length, vrp.asn)]);
        }
    }

    /// Number of VRPs loaded.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no VRPs are loaded.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The VRP triples this validator was built from, in insertion
    /// order — what a snapshot feeds an RTR cache or diffs across
    /// epochs without re-walking the trie.
    pub fn vrps(&self) -> &[VrpTriple] {
        &self.triples
    }

    /// RFC 6811 validation of an announcement.
    pub fn validate(&self, prefix: &IpPrefix, origin: Asn) -> RpkiState {
        let covering = self.trie.covering(prefix);
        if covering.is_empty() {
            return RpkiState::NotFound;
        }
        for (_, vrps) in &covering {
            for (max_length, asn) in *vrps {
                if *asn == origin && prefix.len() <= *max_length {
                    return RpkiState::Valid;
                }
            }
        }
        RpkiState::Invalid
    }

    /// Whether any VRP covers `prefix` (i.e. validation would not be
    /// NotFound).
    pub fn is_covered(&self, prefix: &IpPrefix) -> bool {
        !self.trie.covering(prefix).is_empty()
    }

    /// Full RFC 6811 verdict with the covering VRPs partitioned by why
    /// they did (not) match — what a relying-party validity API returns
    /// (cf. Routinator's `/api/v1/validity`). The `state` agrees with
    /// [`validate`](Self::validate) for every input.
    pub fn validity(&self, prefix: &IpPrefix, origin: Asn) -> ValidityDetail {
        let mut detail = ValidityDetail {
            state: RpkiState::NotFound,
            matched: Vec::new(),
            unmatched_asn: Vec::new(),
            unmatched_length: Vec::new(),
        };
        for (vrp_prefix, vrps) in self.trie.covering(prefix) {
            for (max_length, asn) in vrps {
                let triple = VrpTriple {
                    prefix: vrp_prefix,
                    max_length: *max_length,
                    asn: *asn,
                };
                if *asn != origin {
                    detail.unmatched_asn.push(triple);
                } else if prefix.len() > *max_length {
                    detail.unmatched_length.push(triple);
                } else {
                    detail.matched.push(triple);
                }
            }
        }
        detail.state = if !detail.matched.is_empty() {
            RpkiState::Valid
        } else if detail.unmatched_asn.is_empty() && detail.unmatched_length.is_empty() {
            RpkiState::NotFound
        } else {
            RpkiState::Invalid
        };
        detail
    }
}

/// The outcome of [`RouteOriginValidator::validity`]: the RFC 6811
/// state plus every covering VRP, partitioned by match outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityDetail {
    /// The RFC 6811 state (identical to `validate`'s answer).
    pub state: RpkiState,
    /// Covering VRPs that authorize the announcement.
    pub matched: Vec<VrpTriple>,
    /// Covering VRPs whose origin AS differs.
    pub unmatched_asn: Vec<VrpTriple>,
    /// Covering VRPs with the right origin but an exceeded maxLength.
    pub unmatched_length: Vec<VrpTriple>,
}

impl ValidityDetail {
    /// Routinator-style reason token for an Invalid verdict (`"as"` when
    /// some covering VRP has a different origin, `"length"` when the
    /// origin matches but the announcement is too specific).
    pub fn reason(&self) -> Option<&'static str> {
        if self.state != RpkiState::Invalid {
            None
        } else if !self.unmatched_asn.is_empty() {
            Some("as")
        } else {
            Some("length")
        }
    }

    /// Human-readable description of the verdict.
    pub fn description(&self) -> &'static str {
        match self.state {
            RpkiState::Valid => "At least one VRP Matches the Route Prefix",
            RpkiState::NotFound => "No VRP Covers the Route Prefix",
            RpkiState::Invalid => {
                if !self.unmatched_asn.is_empty() {
                    "At least one VRP Covers the Route Prefix, but no VRP ASN matches the route origin ASN"
                } else {
                    "At least one VRP Covers the Route Prefix, but the Route Prefix length is greater than the maximum length allowed by VRP(s) matching this route origin ASN"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: p(prefix),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    #[test]
    fn not_found_when_uncovered() {
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/16", 16, 100)]);
        assert_eq!(
            v.validate(&p("11.0.0.0/16"), Asn::new(100)),
            RpkiState::NotFound
        );
        assert!(!v.is_covered(&p("11.0.0.0/16")));
        // A *less specific* announcement than any VRP is also uncovered.
        assert_eq!(
            v.validate(&p("10.0.0.0/8"), Asn::new(100)),
            RpkiState::NotFound
        );
    }

    #[test]
    fn valid_exact_match() {
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/16", 16, 100)]);
        assert_eq!(
            v.validate(&p("10.0.0.0/16"), Asn::new(100)),
            RpkiState::Valid
        );
    }

    #[test]
    fn invalid_wrong_origin() {
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/16", 16, 100)]);
        assert_eq!(
            v.validate(&p("10.0.0.0/16"), Asn::new(200)),
            RpkiState::Invalid
        );
    }

    #[test]
    fn maxlength_controls_more_specifics() {
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/16", 20, 100)]);
        assert_eq!(
            v.validate(&p("10.0.0.0/20"), Asn::new(100)),
            RpkiState::Valid
        );
        assert_eq!(
            v.validate(&p("10.0.0.0/18"), Asn::new(100)),
            RpkiState::Valid
        );
        // Too specific: the classic subprefix-hijack defence.
        assert_eq!(
            v.validate(&p("10.0.0.0/24"), Asn::new(100)),
            RpkiState::Invalid
        );
    }

    #[test]
    fn validity_detail_partitions_covering_vrps() {
        let v = RouteOriginValidator::from_vrps([
            vrp("10.0.0.0/16", 20, 100),
            vrp("10.0.0.0/16", 16, 200),
        ]);
        // Valid: matched carries the authorizing VRP, the wrong-origin
        // one lands in unmatched_asn.
        let d = v.validity(&p("10.0.0.0/20"), Asn::new(100));
        assert_eq!(d.state, RpkiState::Valid);
        assert_eq!(d.matched, vec![vrp("10.0.0.0/16", 20, 100)]);
        assert_eq!(d.unmatched_asn, vec![vrp("10.0.0.0/16", 16, 200)]);
        assert_eq!(d.reason(), None);
        // Invalid by origin.
        let d = v.validity(&p("10.0.0.0/16"), Asn::new(300));
        assert_eq!(d.state, RpkiState::Invalid);
        assert_eq!(d.reason(), Some("as"));
        assert_eq!(d.unmatched_asn.len(), 2);
        // Invalid by length only: right origin, too specific.
        let v2 = RouteOriginValidator::from_vrps([vrp("10.0.0.0/16", 20, 100)]);
        let d = v2.validity(&p("10.0.0.0/24"), Asn::new(100));
        assert_eq!(d.state, RpkiState::Invalid);
        assert_eq!(d.reason(), Some("length"));
        assert_eq!(d.unmatched_length, vec![vrp("10.0.0.0/16", 20, 100)]);
        // NotFound.
        let d = v.validity(&p("11.0.0.0/16"), Asn::new(100));
        assert_eq!(d.state, RpkiState::NotFound);
        assert_eq!(d.reason(), None);
        assert!(!d.description().is_empty());
    }

    #[test]
    fn validity_state_agrees_with_validate() {
        let v = RouteOriginValidator::from_vrps([
            vrp("10.0.0.0/16", 20, 100),
            vrp("10.0.0.0/16", 16, 200),
            vrp("10.0.0.0/8", 16, 300),
        ]);
        for pfx in ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "11.0.0.0/16"] {
            for asn in [100u32, 200, 300, 400] {
                let asn = Asn::new(asn);
                assert_eq!(
                    v.validity(&p(pfx), asn).state,
                    v.validate(&p(pfx), asn),
                    "{pfx} {asn}"
                );
            }
        }
    }

    #[test]
    fn multiple_vrps_any_match_suffices() {
        let v = RouteOriginValidator::from_vrps([
            vrp("10.0.0.0/16", 16, 100),
            vrp("10.0.0.0/16", 16, 200),
        ]);
        assert_eq!(
            v.validate(&p("10.0.0.0/16"), Asn::new(100)),
            RpkiState::Valid
        );
        assert_eq!(
            v.validate(&p("10.0.0.0/16"), Asn::new(200)),
            RpkiState::Valid
        );
        assert_eq!(
            v.validate(&p("10.0.0.0/16"), Asn::new(300)),
            RpkiState::Invalid
        );
    }

    #[test]
    fn covering_vrp_from_shorter_prefix() {
        // VRP for /8 with maxlen 16 covers /12 announcements.
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/8", 16, 100)]);
        assert_eq!(
            v.validate(&p("10.16.0.0/12"), Asn::new(100)),
            RpkiState::Valid
        );
        assert_eq!(
            v.validate(&p("10.16.0.0/12"), Asn::new(9)),
            RpkiState::Invalid
        );
        assert_eq!(
            v.validate(&p("10.0.0.0/24"), Asn::new(100)),
            RpkiState::Invalid
        );
    }

    #[test]
    fn as0_roa_invalidates_everything() {
        // RFC 7607: AS0 ROAs state "do not route"; any real origin is
        // invalid because AS0 never matches an announcement's origin.
        let v = RouteOriginValidator::from_vrps([vrp("192.0.2.0/24", 24, 0)]);
        assert_eq!(
            v.validate(&p("192.0.2.0/24"), Asn::new(100)),
            RpkiState::Invalid
        );
    }

    #[test]
    fn empty_validator_finds_nothing() {
        let v = RouteOriginValidator::new();
        assert!(v.is_empty());
        assert_eq!(
            v.validate(&p("10.0.0.0/8"), Asn::new(1)),
            RpkiState::NotFound
        );
    }

    #[test]
    fn families_do_not_interfere() {
        let v = RouteOriginValidator::from_vrps([vrp("10.0.0.0/8", 8, 100)]);
        assert_eq!(
            v.validate(&p("2001:db8::/32"), Asn::new(100)),
            RpkiState::NotFound
        );
    }

    #[test]
    fn len_counts_vrps() {
        let v = RouteOriginValidator::from_vrps([
            vrp("10.0.0.0/16", 16, 100),
            vrp("10.0.0.0/16", 16, 200),
            vrp("11.0.0.0/16", 16, 100),
        ]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }
}
