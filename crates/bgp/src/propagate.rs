//! Gao–Rexford policy routing to a fixed point.
//!
//! For a single prefix announced by one or more origins, compute which
//! route every AS selects under the standard economic model:
//!
//! * **Preference**: routes learned from customers are preferred over
//!   routes from peers, which beat routes from providers (an AS earns on
//!   customer traffic). Ties break on shorter AS path, then lower
//!   next-hop ASN — all deterministic.
//! * **Export (valley-free)**: routes learned from customers (or
//!   originated) are exported to everyone; routes learned from peers or
//!   providers are exported only to customers.
//!
//! The implementation is the classic three-stage BFS used by BGP security
//! simulations (cf. Gill–Schapira–Goldberg): customer routes climb
//! provider edges from the origins, peer routes take one lateral step,
//! provider routes descend customer edges — each stage shortest-first.
//!
//! An **import filter** hook models route origin validation: an AS that
//! deploys ROV refuses routes whose (prefix, origin) validates Invalid.

use crate::topology::Topology;
use ripki_net::Asn;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// How a selected route was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteKind {
    /// The AS originates the prefix itself.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

impl fmt::Display for RouteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteKind::Origin => write!(f, "origin"),
            RouteKind::Customer => write!(f, "customer"),
            RouteKind::Peer => write!(f, "peer"),
            RouteKind::Provider => write!(f, "provider"),
        }
    }
}

/// The route an AS selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Learning relationship.
    pub kind: RouteKind,
    /// Neighbor the route was learned from (`None` for origins).
    pub next_hop: Option<Asn>,
    /// The origin the route leads to.
    pub origin: Asn,
    /// AS path from this AS (exclusive) to the origin (inclusive).
    pub path: Vec<Asn>,
}

impl Route {
    fn origin_route(asn: Asn) -> Route {
        Route {
            kind: RouteKind::Origin,
            next_hop: None,
            origin: asn,
            path: Vec::new(),
        }
    }

    /// Path length in hops.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Origins have empty paths.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// Import-filter decision hook: `(importing_as, route_origin) -> accept?`.
pub type ImportFilter<'a> = dyn Fn(Asn, Asn) -> bool + 'a;

/// The result of propagating one prefix.
#[derive(Debug, Clone, Default)]
pub struct RoutingOutcome {
    routes: BTreeMap<Asn, Route>,
}

impl RoutingOutcome {
    /// The route selected by `asn`, if it has any.
    pub fn route(&self, asn: Asn) -> Option<&Route> {
        self.routes.get(&asn)
    }

    /// The origin `asn`'s traffic for this prefix reaches, if any.
    pub fn reaches(&self, asn: Asn) -> Option<Asn> {
        self.routes.get(&asn).map(|r| r.origin)
    }

    /// All ASes whose selected route leads to `origin` (including the
    /// origin itself).
    pub fn captured_by(&self, origin: Asn) -> Vec<Asn> {
        self.routes
            .iter()
            .filter(|(_, r)| r.origin == origin)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Number of ASes holding any route.
    pub fn routed_count(&self) -> usize {
        self.routes.len()
    }

    /// Iterate `(asn, route)` sorted by ASN.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &Route)> {
        self.routes.iter().map(|(a, r)| (*a, r))
    }
}

/// Propagate a prefix announced by `origins` through `topology`.
///
/// `filter` is consulted for every import (not for self-origination);
/// returning `false` makes the importing AS drop the candidate.
pub fn propagate(
    topology: &Topology,
    origins: &[Asn],
    filter: &ImportFilter<'_>,
) -> RoutingOutcome {
    let mut routes: BTreeMap<Asn, Route> = BTreeMap::new();
    for origin in origins {
        if topology.contains(*origin) {
            routes.insert(*origin, Route::origin_route(*origin));
        }
    }

    // Stage 1: customer routes climb provider edges, shortest-first.
    // Level-synchronous BFS keeps tie-breaking well-defined: all
    // candidates of one level are gathered, the best per AS wins.
    let mut frontier: Vec<Asn> = routes.keys().copied().collect();
    while !frontier.is_empty() {
        let mut candidates: BTreeMap<Asn, Route> = BTreeMap::new();
        for u in &frontier {
            let Some(u_route) = routes.get(u).cloned() else {
                continue;
            };
            let Some(node) = topology.node(*u) else {
                continue;
            };
            for v in &node.providers {
                if routes.contains_key(v) {
                    continue;
                }
                if !filter(*v, u_route.origin) {
                    continue;
                }
                let mut path = Vec::with_capacity(u_route.path.len() + 1);
                path.push(*u);
                path.extend_from_slice(&u_route.path);
                let cand = Route {
                    kind: RouteKind::Customer,
                    next_hop: Some(*u),
                    origin: u_route.origin,
                    path,
                };
                match candidates.get(v) {
                    Some(best) if !better_same_kind(&cand, best) => {}
                    _ => {
                        candidates.insert(*v, cand);
                    }
                }
            }
        }
        frontier = candidates.keys().copied().collect();
        routes.extend(candidates);
    }

    // Stage 2: one lateral step across peer edges, from ASes holding
    // origin/customer routes only (valley-free).
    let mut peer_candidates: BTreeMap<Asn, Route> = BTreeMap::new();
    for (u, u_route) in &routes {
        if !matches!(u_route.kind, RouteKind::Origin | RouteKind::Customer) {
            continue;
        }
        let Some(node) = topology.node(*u) else {
            continue;
        };
        for v in &node.peers {
            if routes.contains_key(v) {
                continue;
            }
            if !filter(*v, u_route.origin) {
                continue;
            }
            let mut path = Vec::with_capacity(u_route.path.len() + 1);
            path.push(*u);
            path.extend_from_slice(&u_route.path);
            let cand = Route {
                kind: RouteKind::Peer,
                next_hop: Some(*u),
                origin: u_route.origin,
                path,
            };
            match peer_candidates.get(v) {
                Some(best) if !better_same_kind(&cand, best) => {}
                _ => {
                    peer_candidates.insert(*v, cand);
                }
            }
        }
    }
    routes.extend(peer_candidates);

    // Stage 3: provider routes descend customer edges, Dijkstra-style
    // shortest-first (seeds have heterogeneous path lengths).
    let mut heap: BinaryHeap<Reverse<(usize, u32, u32)>> = BinaryHeap::new();
    let mut pending: BTreeMap<(usize, u32, u32), Route> = BTreeMap::new();
    let seed = |routes: &BTreeMap<Asn, Route>,
                heap: &mut BinaryHeap<Reverse<(usize, u32, u32)>>,
                pending: &mut BTreeMap<(usize, u32, u32), Route>,
                u: Asn| {
        let Some(u_route) = routes.get(&u).cloned() else {
            return;
        };
        let Some(node) = topology.node(u) else { return };
        for v in &node.customers {
            if routes.contains_key(v) {
                continue;
            }
            let mut path = Vec::with_capacity(u_route.path.len() + 1);
            path.push(u);
            path.extend_from_slice(&u_route.path);
            let key = (path.len(), u.value(), v.value());
            let cand = Route {
                kind: RouteKind::Provider,
                next_hop: Some(u),
                origin: u_route.origin,
                path,
            };
            if let std::collections::btree_map::Entry::Vacant(e) = pending.entry(key) {
                e.insert(cand);
                heap.push(Reverse(key));
            }
        }
    };
    let initial: Vec<Asn> = routes.keys().copied().collect();
    for u in initial {
        seed(&routes, &mut heap, &mut pending, u);
    }
    while let Some(Reverse(key)) = heap.pop() {
        let Some(cand) = pending.remove(&key) else {
            continue;
        };
        let v = Asn::new(key.2);
        if routes.contains_key(&v) {
            continue;
        }
        if !filter(v, cand.origin) {
            continue;
        }
        routes.insert(v, cand);
        seed(&routes, &mut heap, &mut pending, v);
    }

    RoutingOutcome { routes }
}

/// Accept everything (no ROV anywhere).
pub fn accept_all(_importer: Asn, _origin: Asn) -> bool {
    true
}

/// Whether candidate `a` beats `b`, both of the same kind: shorter path,
/// then lower next-hop ASN.
fn better_same_kind(a: &Route, b: &Route) -> bool {
    debug_assert_eq!(a.kind, b.kind);
    (a.path.len(), a.next_hop.map(Asn::value)) < (b.path.len(), b.next_hop.map(Asn::value))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small diamond:
    ///
    /// ```text
    ///      T1a ==== T1b          (peer)
    ///      /  \       \
    ///    M1    M2      M3        (customers of tier-1s)
    ///    |      \     /
    ///   S1       S2--+           (stubs; S2 dual-homed M2+M3)
    /// ```
    fn diamond() -> (Topology, [Asn; 7]) {
        let t1a = Asn::new(10);
        let t1b = Asn::new(11);
        let m1 = Asn::new(1000);
        let m2 = Asn::new(1001);
        let m3 = Asn::new(1002);
        let s1 = Asn::new(10_000);
        let s2 = Asn::new(10_001);
        let mut t = Topology::new();
        t.add_peering(t1a, t1b);
        t.add_customer_provider(m1, t1a);
        t.add_customer_provider(m2, t1a);
        t.add_customer_provider(m3, t1b);
        t.add_customer_provider(s1, m1);
        t.add_customer_provider(s2, m2);
        t.add_customer_provider(s2, m3);
        (t, [t1a, t1b, m1, m2, m3, s1, s2])
    }

    #[test]
    fn single_origin_reaches_everyone() {
        let (t, [t1a, t1b, m1, m2, m3, s1, s2]) = diamond();
        let out = propagate(&t, &[s1], &accept_all);
        assert_eq!(out.routed_count(), 7);
        for asn in [t1a, t1b, m1, m2, m3, s1, s2] {
            assert_eq!(out.reaches(asn), Some(s1), "AS{}", asn.value());
        }
        // Origin has an empty path.
        assert_eq!(out.route(s1).unwrap().kind, RouteKind::Origin);
        assert!(out.route(s1).unwrap().is_empty());
        // m1 learns from its customer s1.
        assert_eq!(out.route(m1).unwrap().kind, RouteKind::Customer);
        // t1b learns via peer t1a (valley-free: t1a has a customer route).
        let r = out.route(t1b).unwrap();
        assert_eq!(r.kind, RouteKind::Peer);
        assert_eq!(r.path, vec![t1a, m1, s1]);
        // s2 gets a provider route down m2 or m3.
        assert_eq!(out.route(s2).unwrap().kind, RouteKind::Provider);
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        let (t, [t1a, _t1b, m1, _m2, _m3, s1, _s2]) = diamond();
        // Origin at m1: t1a hears it from customer m1 — kind Customer,
        // even though t1a could also hear longer paths.
        let out = propagate(&t, &[m1], &accept_all);
        assert_eq!(out.route(t1a).unwrap().kind, RouteKind::Customer);
        assert_eq!(out.reaches(s1), Some(m1));
    }

    #[test]
    fn valley_free_no_peer_reexport_to_provider() {
        // Chain: origin under t1a; t1b gets peer route; t1b must NOT give
        // it to another peer. Build a triangle of peers to check.
        let mut t = Topology::new();
        let (a, b, c, o) = (Asn::new(1), Asn::new(2), Asn::new(3), Asn::new(9));
        t.add_peering(a, b);
        t.add_peering(b, c);
        t.add_customer_provider(o, a);
        // No a—c peering; c can only hear via b re-exporting a peer route,
        // which valley-freeness forbids.
        let out = propagate(&t, &[o], &accept_all);
        assert_eq!(out.reaches(a), Some(o));
        assert_eq!(out.reaches(b), Some(o));
        assert_eq!(out.reaches(c), None);
    }

    #[test]
    fn two_origins_split_the_topology() {
        let (t, [t1a, t1b, m1, m2, m3, s1, s2]) = diamond();
        // s1 (under m1/t1a) vs s2 (under m2,m3).
        let out = propagate(&t, &[s1, s2], &accept_all);
        assert_eq!(out.reaches(m1), Some(s1));
        assert_eq!(out.reaches(m2), Some(s2));
        assert_eq!(out.reaches(m3), Some(s2));
        // Each origin keeps itself.
        assert_eq!(out.reaches(s1), Some(s1));
        assert_eq!(out.reaches(s2), Some(s2));
        // Tier-1s hear both from customers; shorter path wins:
        // t1a: via m1→s1 (len 2) or via m2→s2 (len 2) — tie, lower
        // next-hop ASN wins: m1 (1000) < m2 (1001) → s1.
        assert_eq!(out.reaches(t1a), Some(s1));
        // t1b: customer route via m3→s2 (len 2) beats peer routes.
        assert_eq!(out.reaches(t1b), Some(s2));
    }

    #[test]
    fn import_filter_blocks_and_traffic_routes_around() {
        let (t, [t1a, _t1b, m1, _m2, _m3, s1, _s2]) = diamond();
        // t1a refuses routes originated by s1.
        let filter = |importer: Asn, origin: Asn| !(importer == t1a && origin == s1);
        let out = propagate(&t, &[s1], &filter);
        assert_eq!(out.reaches(m1), Some(s1)); // below the filter
        assert_eq!(out.reaches(t1a), None); // filtered
                                            // t1b can still be reached via... no path that avoids t1a exists
                                            // for a customer route; peer export from m1 doesn't exist. So t1b
                                            // is also unreachable.
        assert_eq!(out.reaches(Asn::new(11)), None);
    }

    #[test]
    fn origin_not_in_topology_is_ignored() {
        let (t, _) = diamond();
        let out = propagate(&t, &[Asn::new(4242)], &accept_all);
        assert_eq!(out.routed_count(), 0);
    }

    #[test]
    fn deterministic_outcomes() {
        let t = Topology::generate(3, 4, 30, 300, 0.08);
        let origin = Asn::new(10_005);
        let a = propagate(&t, &[origin], &accept_all);
        let b = propagate(&t, &[origin], &accept_all);
        assert_eq!(a.routed_count(), b.routed_count());
        for (asn, route) in a.iter() {
            assert_eq!(Some(route), b.route(asn));
        }
        // Everyone reaches the sole origin in a connected topology.
        assert_eq!(a.routed_count(), t.len());
    }

    #[test]
    fn paths_are_loop_free_and_consistent() {
        let t = Topology::generate(5, 3, 20, 200, 0.1);
        let origin = Asn::new(10_000);
        let out = propagate(&t, &[origin], &accept_all);
        for (asn, route) in out.iter() {
            // No AS appears twice in a path, and the path ends at origin.
            let mut seen = std::collections::HashSet::new();
            assert!(seen.insert(asn), "duplicate ASN on path");
            for hop in &route.path {
                assert!(seen.insert(*hop), "loop at AS{}", hop.value());
            }
            if route.kind != RouteKind::Origin {
                assert_eq!(*route.path.last().unwrap(), origin);
                assert_eq!(route.path.first().copied(), route.next_hop);
                // Next hop's own route is one hop shorter.
                let nh = out.route(route.next_hop.unwrap()).unwrap();
                assert_eq!(nh.path.len() + 1, route.path.len());
            }
        }
    }
}
