//! AS-level topology: who connects to whom, and how.
//!
//! Inter-domain routing policy is driven by business relationships
//! (Gao–Rexford): an edge is either **customer–provider** (the customer
//! pays) or **peer–peer** (settlement-free). The hijack experiments of
//! the paper's attacker model run on such a graph.
//!
//! [`Topology::generate`] produces a deterministic, Internet-like tiered
//! topology: a clique of tier-1 transit providers, a middle tier of
//! regional ISPs multi-homed to tier-1s with some lateral peering, and a
//! large fringe of stub ASes (eyeballs, hosters, enterprises) multi-homed
//! to the middle tier.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ripki_net::Asn;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The relationship of an edge, read from the first AS's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// The other AS is my provider (I am the customer).
    Provider,
    /// The other AS is my customer.
    Customer,
    /// Settlement-free peer.
    Peer,
}

/// Adjacency of one AS.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsNode {
    /// ASes this AS buys transit from.
    pub providers: BTreeSet<Asn>,
    /// ASes buying transit from this AS.
    pub customers: BTreeSet<Asn>,
    /// Settlement-free peers.
    pub peers: BTreeSet<Asn>,
}

impl AsNode {
    /// Total degree.
    pub fn degree(&self) -> usize {
        self.providers.len() + self.customers.len() + self.peers.len()
    }

    /// Whether this AS has no customers (a stub / edge network).
    pub fn is_stub(&self) -> bool {
        self.customers.is_empty()
    }
}

/// The AS graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<Asn, AsNode>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Ensure `asn` exists (isolated if no edges are added).
    pub fn add_as(&mut self, asn: Asn) {
        self.nodes.entry(asn).or_default();
    }

    /// Add a customer→provider edge (`customer` buys transit from
    /// `provider`). Idempotent.
    pub fn add_customer_provider(&mut self, customer: Asn, provider: Asn) {
        debug_assert_ne!(customer, provider);
        self.nodes
            .entry(customer)
            .or_default()
            .providers
            .insert(provider);
        self.nodes
            .entry(provider)
            .or_default()
            .customers
            .insert(customer);
    }

    /// Add a peer–peer edge. Idempotent.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        debug_assert_ne!(a, b);
        self.nodes.entry(a).or_default().peers.insert(b);
        self.nodes.entry(b).or_default().peers.insert(a);
    }

    /// Look up an AS's adjacency.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.nodes.get(&asn)
    }

    /// Whether the AS exists.
    pub fn contains(&self, asn: Asn) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate all ASNs in sorted order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.keys().copied()
    }

    /// Iterate `(asn, node)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &AsNode)> {
        self.nodes.iter().map(|(a, n)| (*a, n))
    }

    /// Total number of edges (each counted once).
    pub fn edge_count(&self) -> usize {
        let cp: usize = self.nodes.values().map(|n| n.customers.len()).sum();
        let peer: usize = self.nodes.values().map(|n| n.peers.len()).sum();
        cp + peer / 2
    }

    /// The relationship of `a` towards `b`, if adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        let node = self.nodes.get(&a)?;
        if node.providers.contains(&b) {
            Some(Relationship::Provider)
        } else if node.customers.contains(&b) {
            Some(Relationship::Customer)
        } else if node.peers.contains(&b) {
            Some(Relationship::Peer)
        } else {
            None
        }
    }

    /// Generate a deterministic tiered topology.
    ///
    /// * `tier1` ASes form a full peering clique (ASNs 10, 11, …).
    /// * `mid` regional ISPs each buy transit from 1–3 tier-1s and peer
    ///   laterally with probability `peer_prob`.
    /// * `stubs` edge ASes each buy transit from 1–2 regional ISPs.
    ///
    /// ASN layout: tier-1s start at 10, mid tier at 1000, stubs at 10000.
    pub fn generate(seed: u64, tier1: usize, mid: usize, stubs: usize, peer_prob: f64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7090_11ee);
        let mut topo = Topology::new();
        let t1: Vec<Asn> = (0..tier1).map(|i| Asn::new(10 + i as u32)).collect();
        for a in &t1 {
            topo.add_as(*a);
        }
        for (i, a) in t1.iter().enumerate() {
            for b in &t1[i + 1..] {
                topo.add_peering(*a, *b);
            }
        }
        let mids: Vec<Asn> = (0..mid).map(|i| Asn::new(1000 + i as u32)).collect();
        for m in &mids {
            let n_upstreams = rng.gen_range(1..=3.min(t1.len().max(1)));
            for up in t1.choose_multiple(&mut rng, n_upstreams) {
                topo.add_customer_provider(*m, *up);
            }
        }
        for (i, a) in mids.iter().enumerate() {
            for b in &mids[i + 1..] {
                if rng.gen_bool(peer_prob) {
                    topo.add_peering(*a, *b);
                }
            }
        }
        for s in 0..stubs {
            let stub = Asn::new(10_000 + s as u32);
            let n_upstreams = rng.gen_range(1..=2.min(mids.len().max(1)));
            if mids.is_empty() {
                // Degenerate topology: stubs hang off tier-1s.
                for up in t1.choose_multiple(&mut rng, 1) {
                    topo.add_customer_provider(stub, *up);
                }
            } else {
                for up in mids.choose_multiple(&mut rng, n_upstreams) {
                    topo.add_customer_provider(stub, *up);
                }
            }
        }
        topo
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology: {} ASes, {} edges",
            self.len(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_edges_and_relationships() {
        let mut t = Topology::new();
        let (a, b, c) = (Asn::new(1), Asn::new(2), Asn::new(3));
        t.add_customer_provider(a, b); // a buys from b
        t.add_peering(b, c);
        assert_eq!(t.relationship(a, b), Some(Relationship::Provider));
        assert_eq!(t.relationship(b, a), Some(Relationship::Customer));
        assert_eq!(t.relationship(b, c), Some(Relationship::Peer));
        assert_eq!(t.relationship(c, b), Some(Relationship::Peer));
        assert_eq!(t.relationship(a, c), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.edge_count(), 2);
        assert!(t.node(a).unwrap().is_stub());
        assert!(!t.node(b).unwrap().is_stub());
    }

    #[test]
    fn idempotent_edges() {
        let mut t = Topology::new();
        t.add_customer_provider(Asn::new(1), Asn::new(2));
        t.add_customer_provider(Asn::new(1), Asn::new(2));
        t.add_peering(Asn::new(1), Asn::new(3));
        t.add_peering(Asn::new(3), Asn::new(1));
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn generated_topology_shape() {
        let t = Topology::generate(42, 4, 20, 200, 0.05);
        assert_eq!(t.len(), 4 + 20 + 200);
        // Tier-1 clique.
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    assert_eq!(
                        t.relationship(Asn::new(10 + i), Asn::new(10 + j)),
                        Some(Relationship::Peer)
                    );
                }
            }
        }
        // Every mid has at least one tier-1 provider.
        for i in 0..20u32 {
            let node = t.node(Asn::new(1000 + i)).unwrap();
            assert!(!node.providers.is_empty());
            assert!(node.providers.iter().all(|p| p.value() < 1000));
        }
        // Every stub has providers in the mid tier and no customers.
        for i in 0..200u32 {
            let node = t.node(Asn::new(10_000 + i)).unwrap();
            assert!(node.is_stub());
            assert!(!node.providers.is_empty());
            assert!(node
                .providers
                .iter()
                .all(|p| (1000..10_000).contains(&p.value())));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(7, 3, 10, 50, 0.1);
        let b = Topology::generate(7, 3, 10, 50, 0.1);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for (asn, node) in a.iter() {
            assert_eq!(Some(node), b.node(asn), "mismatch at {asn}");
        }
        let c = Topology::generate(8, 3, 10, 50, 0.1);
        // Different seed very likely differs in some edge.
        let differs = a.iter().any(|(asn, node)| c.node(asn) != Some(node));
        assert!(differs);
    }

    #[test]
    fn degenerate_no_mid_tier() {
        let t = Topology::generate(1, 2, 0, 10, 0.0);
        for i in 0..10u32 {
            let node = t.node(Asn::new(10_000 + i)).unwrap();
            assert_eq!(node.providers.len(), 1);
            assert!(node.providers.iter().all(|p| p.value() < 1000));
        }
    }

    #[test]
    fn display() {
        let t = Topology::generate(1, 2, 2, 2, 0.0);
        let s = t.to_string();
        assert!(s.contains("6 ASes"));
    }
}
