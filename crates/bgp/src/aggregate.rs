//! Route aggregation (RFC 4271 §9.2.2.2).
//!
//! Proxy aggregation is where `AS_SET`s come from: a router combining two
//! sibling routes into their covering prefix merges the differing path
//! tails into an unordered set. The paper excludes such entries from the
//! study because the origin becomes ambiguous — "which is why the
//! function is deprecated with the deployment of RPKI" (RFC 6472).
//!
//! The scenario generator uses this module to create its occasional
//! aggregate entries the way a real router would, instead of synthesising
//! them ad hoc.

use crate::path::{AsPath, Segment};
use crate::rib::RibEntry;
use ripki_net::Asn;

/// Aggregate two routes for sibling prefixes into one route for the
/// common parent.
///
/// Returns `None` when the prefixes are not siblings (same parent, both
/// one bit longer) or either path is empty. The merged path keeps the
/// longest common leading `AS_SEQUENCE` and collapses everything that
/// differs into a single `AS_SET`, per RFC 4271's path-aggregation rules
/// (simplified: segment structure beyond a leading sequence is flattened
/// into the set).
pub fn aggregate_siblings(a: &RibEntry, b: &RibEntry) -> Option<RibEntry> {
    let parent_a = a.prefix.parent()?;
    let parent_b = b.prefix.parent()?;
    if parent_a != parent_b || a.prefix == b.prefix {
        return None;
    }
    let path = merge_paths(&a.path, &b.path)?;
    Some(RibEntry {
        prefix: parent_a,
        path,
        peer: a.peer,
    })
}

/// Merge two AS paths: common leading sequence, then an `AS_SET` of all
/// remaining ASes (deduplicated, sorted for determinism).
pub fn merge_paths(a: &AsPath, b: &AsPath) -> Option<AsPath> {
    let flat_a = flatten(a);
    let flat_b = flatten(b);
    if flat_a.is_empty() || flat_b.is_empty() {
        return None;
    }
    let mut common = Vec::new();
    for (x, y) in flat_a.iter().zip(flat_b.iter()) {
        if x == y {
            common.push(*x);
        } else {
            break;
        }
    }
    let mut rest: Vec<Asn> = flat_a[common.len()..]
        .iter()
        .chain(flat_b[common.len()..].iter())
        .copied()
        .collect();
    rest.sort();
    rest.dedup();
    let mut segments = Vec::new();
    if !common.is_empty() {
        segments.push(Segment::Sequence(common));
    }
    if !rest.is_empty() {
        segments.push(Segment::Set(rest));
    }
    Some(AsPath::from_segments(segments))
}

fn flatten(path: &AsPath) -> Vec<Asn> {
    let mut out = Vec::new();
    for seg in path.segments() {
        match seg {
            Segment::Sequence(seq) => out.extend_from_slice(seq),
            Segment::Set(set) => out.extend_from_slice(set),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(prefix: &str, path: &[u32]) -> RibEntry {
        RibEntry {
            prefix: prefix.parse().unwrap(),
            path: AsPath::sequence(path.iter().copied()),
            peer: Asn::new(64_496),
        }
    }

    #[test]
    fn siblings_aggregate_to_parent_with_set() {
        let a = entry("10.0.0.0/17", &[100, 200, 300]);
        let b = entry("10.0.128.0/17", &[100, 200, 400]);
        let agg = aggregate_siblings(&a, &b).unwrap();
        assert_eq!(agg.prefix, "10.0.0.0/16".parse().unwrap());
        assert_eq!(agg.path.to_string(), "100 200 {300,400}");
        // The aggregate's origin is ambiguous — exactly what the
        // methodology excludes.
        assert_eq!(agg.path.origin().asn(), None);
    }

    #[test]
    fn identical_tails_do_not_create_a_set() {
        let a = entry("10.0.0.0/17", &[100, 200]);
        let b = entry("10.0.128.0/17", &[100, 200]);
        let agg = aggregate_siblings(&a, &b).unwrap();
        assert_eq!(agg.path.to_string(), "100 200");
        assert_eq!(agg.path.origin().asn(), Some(Asn::new(200)));
    }

    #[test]
    fn non_siblings_refused() {
        let a = entry("10.0.0.0/17", &[1]);
        let b = entry("10.1.0.0/17", &[2]);
        assert!(aggregate_siblings(&a, &b).is_none());
        // Same prefix is not a sibling pair either.
        let c = entry("10.0.0.0/17", &[3]);
        assert!(aggregate_siblings(&a, &c).is_none());
        // Different lengths.
        let d = entry("10.0.0.0/18", &[4]);
        assert!(aggregate_siblings(&a, &d).is_none());
    }

    #[test]
    fn default_routes_cannot_aggregate() {
        let a = entry("0.0.0.0/0", &[1]);
        let b = entry("128.0.0.0/1", &[2]);
        assert!(aggregate_siblings(&a, &b).is_none());
    }

    #[test]
    fn merge_dedups_shared_tail_ases() {
        let a = AsPath::sequence([100, 300]);
        let b = AsPath::sequence([100, 400, 300]);
        let merged = merge_paths(&a, &b).unwrap();
        assert_eq!(merged.to_string(), "100 {300,400}");
    }

    #[test]
    fn empty_path_refused() {
        let a = AsPath::empty();
        let b = AsPath::sequence([1]);
        assert!(merge_paths(&a, &b).is_none());
    }

    #[test]
    fn v6_siblings_aggregate() {
        let a = RibEntry {
            prefix: "2001:db8::/33".parse().unwrap(),
            path: AsPath::sequence([1, 2]),
            peer: Asn::new(9),
        };
        let b = RibEntry {
            prefix: "2001:db8:8000::/33".parse().unwrap(),
            path: AsPath::sequence([1, 3]),
            peer: Asn::new(9),
        };
        let agg = aggregate_siblings(&a, &b).unwrap();
        assert_eq!(agg.prefix, "2001:db8::/32".parse().unwrap());
        assert!(agg.path.has_as_set());
    }
}
