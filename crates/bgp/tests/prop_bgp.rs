//! Property-based tests for `ripki-bgp`: ROV against a naive oracle,
//! valley-free propagation invariants, and dump round-trips.

use proptest::prelude::*;
use ripki_bgp::dump::TableDump;
use ripki_bgp::path::AsPath;
use ripki_bgp::propagate::{accept_all, propagate, RouteKind};
use ripki_bgp::rib::{Rib, RibEntry};
use ripki_bgp::rov::{RouteOriginValidator, RpkiState, VrpTriple};
use ripki_bgp::topology::{Relationship, Topology};
use ripki_net::{Asn, IpPrefix, Ipv4Prefix};
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = IpPrefix> {
    (any::<u32>(), 8u8..=28)
        .prop_map(|(bits, len)| IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::from(bits), len).unwrap()))
}

fn arb_vrp() -> impl Strategy<Value = (IpPrefix, u8, u32)> {
    (any::<u32>(), 8u8..=24, 0u8..=8, 1u32..50).prop_map(|(bits, len, extra, asn)| {
        let p = IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::from(bits), len).unwrap());
        ((p), (len + extra).min(32), asn)
    })
}

proptest! {
    /// ROV agrees with the RFC 6811 definition evaluated naively.
    #[test]
    fn rov_matches_naive_oracle(
        vrps in prop::collection::vec(arb_vrp(), 0..40),
        route_prefix in arb_prefix(),
        origin in 1u32..50,
    ) {
        let validator = RouteOriginValidator::from_vrps(
            vrps.iter().map(|(p, ml, a)| VrpTriple {
                prefix: *p,
                max_length: *ml,
                asn: Asn::new(*a),
            }),
        );
        let origin = Asn::new(origin);
        let covering: Vec<_> = vrps
            .iter()
            .filter(|(p, _, _)| p.covers(&route_prefix))
            .collect();
        let expected = if covering.is_empty() {
            RpkiState::NotFound
        } else if covering.iter().any(|(_, ml, a)| {
            Asn::new(*a) == origin && route_prefix.len() <= *ml
        }) {
            RpkiState::Valid
        } else {
            RpkiState::Invalid
        };
        prop_assert_eq!(validator.validate(&route_prefix, origin), expected);
    }

    /// Propagation over random topologies produces valley-free,
    /// loop-free, connected-to-origin routes.
    #[test]
    fn propagation_invariants(
        seed in 0u64..500,
        tier1 in 2usize..4,
        mid in 2usize..12,
        stubs in 2usize..40,
        origin_pick in any::<prop::sample::Index>(),
    ) {
        let topo = Topology::generate(seed, tier1, mid, stubs, 0.1);
        let asns: Vec<Asn> = topo.asns().collect();
        let origin = asns[origin_pick.index(asns.len())];
        let out = propagate(&topo, &[origin], &accept_all);

        // Everyone is routed: generated topologies are connected.
        prop_assert_eq!(out.routed_count(), topo.len());

        for (asn, route) in out.iter() {
            prop_assert_eq!(route.origin, origin);
            if route.kind == RouteKind::Origin {
                prop_assert_eq!(asn, origin);
                continue;
            }
            // Path ends at the origin and starts at the next hop.
            prop_assert_eq!(*route.path.last().unwrap(), origin);
            prop_assert_eq!(route.path.first().copied(), route.next_hop);
            // Loop-free.
            let mut seen = std::collections::HashSet::new();
            seen.insert(asn);
            for hop in &route.path {
                prop_assert!(seen.insert(*hop));
            }
            // Valley-free along the full path: once the walk (from the
            // traffic's perspective) goes down (provider→customer) or
            // sideways (peer), it may never go up or sideways again.
            let full: Vec<Asn> = std::iter::once(asn).chain(route.path.iter().copied()).collect();
            let mut descending = false;
            let mut peer_used = false;
            for w in full.windows(2) {
                let rel = topo.relationship(w[0], w[1]).expect("adjacent hops");
                match rel {
                    Relationship::Provider => {
                        // Traffic goes from customer up to provider.
                        prop_assert!(!descending && !peer_used, "valley in path");
                    }
                    Relationship::Peer => {
                        prop_assert!(!descending && !peer_used, "second lateral move");
                        peer_used = true;
                    }
                    Relationship::Customer => {
                        descending = true;
                    }
                }
            }
        }
    }

    /// Table dumps round-trip arbitrary RIBs.
    #[test]
    fn dump_roundtrip(
        entries in prop::collection::vec(
            (arb_prefix(), prop::collection::vec(1u32..100_000, 1..6), 1u32..100),
            0..40,
        )
    ) {
        let mut rib = Rib::new();
        for (prefix, path, peer) in &entries {
            rib.insert(RibEntry {
                prefix: *prefix,
                path: AsPath::sequence(path.iter().copied()),
                peer: Asn::new(*peer),
            });
        }
        let text = TableDump::to_string(&rib);
        let back = TableDump::parse(&text).unwrap();
        prop_assert_eq!(back.len(), rib.len());
        prop_assert_eq!(TableDump::to_string(&back), text);
    }

    /// Step-3 lookups return exactly the covering prefixes of an address.
    #[test]
    fn rib_lookup_matches_filter(
        entries in prop::collection::vec((arb_prefix(), 1u32..1000), 1..60),
        addr in any::<u32>(),
    ) {
        let mut rib = Rib::new();
        for (prefix, origin) in &entries {
            rib.insert(RibEntry {
                prefix: *prefix,
                path: AsPath::sequence([100, *origin]),
                peer: Asn::new(1),
            });
        }
        let addr = std::net::IpAddr::V4(Ipv4Addr::from(addr));
        let mapping = rib.origins_for_addr(addr);
        let mut expected: Vec<(IpPrefix, Asn)> = entries
            .iter()
            .filter(|(p, _)| p.contains_addr(addr))
            .map(|(p, o)| (*p, Asn::new(*o)))
            .collect();
        expected.sort();
        expected.dedup();
        let got: Vec<(IpPrefix, Asn)> =
            mapping.pairs.iter().map(|po| (po.prefix, po.origin)).collect();
        prop_assert_eq!(got, expected);
    }
}
