//! Shared fixtures: a scenario-backed server and a raw TCP client.
//!
//! Each integration-test binary compiles its own copy and uses a
//! different subset of the helpers, so unused-item lints don't apply.
#![allow(dead_code)]

use ripki::engine::StudyEngine;
use ripki::exposure::ExposureConfig;
use ripki::pipeline::PipelineConfig;
use ripki_serve::{EpochView, Server, ServerConfig, SharedView};
use ripki_websim::{Scenario, ScenarioConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A small measured world with its engine and a running server.
pub struct Fixture {
    pub scenario: Scenario,
    pub engine: StudyEngine,
    pub server: Server,
}

/// Build a `domains`-sized scenario, measure it, and serve it.
pub fn serve_scenario(domains: usize, seed: u64) -> Fixture {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = engine.run(&scenario.ranking);
    let view = EpochView::new(
        engine.snapshot(),
        Arc::new(results),
        Some(Arc::new(scenario.topology.clone())),
        ExposureConfig {
            attackers_per_domain: 1,
            stride: 1,
            ..Default::default()
        },
    );
    let server = Server::start(
        "127.0.0.1:0",
        Arc::new(SharedView::new(view)),
        ServerConfig::default(),
    )
    .expect("bind test server");
    Fixture {
        scenario,
        engine,
        server,
    }
}

/// One response: status code, headers and body.
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Reply {
    /// Parse the body as a JSON value tree.
    pub fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("body is not JSON ({e:?}): {}", self.body))
    }

    /// First value of a response header (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one GET over a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> Reply {
    raw_roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n"),
    )
}

/// Write arbitrary bytes, read the full response.
pub fn raw_roundtrip(addr: SocketAddr, request: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Split an HTTP/1.1 response into status + headers + body.
pub fn parse_response(raw: &str) -> Reply {
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1) // status line
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body,
    }
}
