//! Equivalence under concurrency: hammer `/api/v1/validity` from
//! several client threads while churn epochs are applied and published,
//! and assert that **every** response matches the engine's verdict for
//! the epoch stamped into that response.
//!
//! This is the serving plane's central contract made executable: a
//! response is never a mixture of epochs — whatever epoch it claims, its
//! verdict is exactly what that epoch's snapshot computes. The epoch
//! registry is filled *before* each publish, so any epoch a client can
//! observe is already verifiable.
// Tests may panic freely; the crate's `unwrap_used` deny targets the
// request path.
#![allow(clippy::unwrap_used)]

use ripki_net::{Asn, IpPrefix};
use ripki_serve::api::state_label;
use ripki_serve_testutil::{get, serve_scenario};
use ripki_websim::churn::{ChurnConfig, ChurnStream};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

const CLIENTS: usize = 4;
const EPOCHS: usize = 5;

#[test]
fn validity_responses_are_epoch_consistent_under_churn() {
    let fx = serve_scenario(300, 17);
    let addr = fx.server.addr();
    let engine = &fx.engine;

    // Announcements to hammer: measured pairs (some will flip state as
    // ROAs churn) plus VRP self-pairs and an uncovered control.
    let mut results = engine.run(&fx.scenario.ranking);
    let mut queries: Vec<(IpPrefix, Asn)> = Vec::new();
    for d in results.domains.iter().take(30) {
        for p in d.bare.pairs.iter().chain(&d.www.pairs) {
            queries.push((p.prefix, p.origin));
        }
    }
    for vrp in engine.snapshot().vrps().iter().take(10) {
        queries.push((vrp.prefix, vrp.asn));
        queries.push((vrp.prefix, Asn::new(4_200_000_000)));
    }
    queries.push(("198.51.100.0/24".parse().unwrap(), Asn::new(64500)));
    queries.sort();
    queries.dedup();
    assert!(queries.len() >= 10, "need a real query mix");
    let queries = Arc::new(queries);

    // Epoch → snapshot registry; always populated before that epoch
    // becomes visible through the server.
    let registry = Arc::new(Mutex::new(HashMap::new()));
    registry
        .lock()
        .unwrap()
        .insert(engine.epoch(), engine.snapshot());

    let stop = Arc::new(AtomicBool::new(false));
    let warmed_up = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let queries = Arc::clone(&queries);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let warmed_up = Arc::clone(&warmed_up);
            std::thread::spawn(move || {
                let mut verified = 0usize;
                let mut epochs_seen = BTreeSet::new();
                let mut i = client; // stagger the rotation per client
                let mut warm = false;
                loop {
                    let (prefix, origin) = queries[i % queries.len()];
                    i += 1;
                    let reply = get(
                        addr,
                        &format!("/api/v1/validity?asn={origin}&prefix={prefix}"),
                    );
                    assert_eq!(reply.status, 200, "{}", reply.body);
                    let json = reply.json();
                    let root = json.as_object().expect("object");
                    let epoch = root
                        .get("epoch")
                        .and_then(serde_json::Value::as_u128)
                        .expect("epoch stamp") as u64;
                    let state = root
                        .get("validated_route")
                        .and_then(|v| v.as_object())
                        .and_then(|v| v.get("validity"))
                        .and_then(|v| v.as_object())
                        .and_then(|v| v.get("state"))
                        .and_then(|s| s.as_str())
                        .expect("state string")
                        .to_string();
                    // The verdict the engine computes for the epoch the
                    // response claims to be from.
                    let snapshot = registry
                        .lock()
                        .unwrap()
                        .get(&epoch)
                        .cloned()
                        .unwrap_or_else(|| panic!("response from unpublished epoch {epoch}"));
                    let expected = state_label(snapshot.validity(&prefix, origin).state);
                    assert_eq!(
                        state, expected,
                        "epoch {epoch}: {prefix} from {origin} diverged"
                    );
                    verified += 1;
                    epochs_seen.insert(epoch);
                    if !warm {
                        warm = true;
                        warmed_up.wait();
                    }
                    if stop.load(Ordering::SeqCst) {
                        return (verified, epochs_seen);
                    }
                }
            })
        })
        .collect();

    // Every client has verified at least one pre-churn response; now
    // drive the world forward while they keep hammering.
    warmed_up.wait();
    let mut stream = ChurnStream::new(&fx.scenario, ChurnConfig::default());
    for _ in 0..EPOCHS {
        let batch = stream.next_epoch();
        engine.apply_events(&batch, &mut results);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.epoch(), results.epoch);
        registry
            .lock()
            .unwrap()
            .insert(snapshot.epoch(), Arc::clone(&snapshot));
        fx.server.view().publish(ripki_serve::EpochView::new(
            snapshot,
            Arc::new(results.clone()),
            None,
            Default::default(),
        ));
        std::thread::sleep(Duration::from_millis(60));
    }
    stop.store(true, Ordering::SeqCst);

    let mut total_verified = 0usize;
    let mut all_epochs = BTreeSet::new();
    for client in clients {
        let (verified, epochs_seen) = client.join().expect("client thread panicked");
        assert!(verified > 0);
        total_verified += verified;
        all_epochs.extend(epochs_seen);
    }
    // The barrier guarantees epoch 1 was observed; the post-churn loop
    // iteration guarantees a later epoch was too.
    assert!(
        all_epochs.contains(&1),
        "epoch 1 never observed: {all_epochs:?}"
    );
    assert!(
        all_epochs.len() >= 2,
        "churn epochs never became visible: {all_epochs:?}"
    );
    assert_eq!(engine.epoch(), 1 + EPOCHS as u64);
    assert!(
        total_verified >= CLIENTS * (EPOCHS + 1),
        "only {total_verified} responses verified"
    );
}
