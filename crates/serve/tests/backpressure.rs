//! Backpressure and shedding behaviour of the event-driven serving
//! plane: slow-loris and write-stall deadlines, ready-queue 503
//! shedding with clean keep-alive teardown (the PR 3/9 regression:
//! sheds must never poison a pipelining client with an RST), and
//! graceful-drain shutdown.

// Test code: unwrap on fixture plumbing is fine here, the crate-level
// deny targets the request path.
#![allow(clippy::unwrap_used)]

use ripki_serve::ServerConfig;
use ripki_serve_testutil::{parse_response, serve_scenario_config};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read everything until EOF, failing the test on a connection reset —
/// the regression this file guards: shed/close paths must end with an
/// orderly FIN, not an RST destroying buffered responses.
fn read_to_eof_no_reset(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!(
                "connection died uncleanly ({e:?}) after {} bytes",
                out.len()
            ),
        }
    }
}

/// Split a raw byte stream of HTTP responses into individual replies
/// using their `content-length` framing.
fn split_responses(raw: &[u8]) -> Vec<ripki_serve_testutil::Reply> {
    let text = String::from_utf8_lossy(raw).to_string();
    let mut replies = Vec::new();
    let mut rest = text.as_str();
    while let Some(head_end) = rest.find("\r\n\r\n") {
        let head = &rest[..head_end + 4];
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .unwrap_or(0);
        let total = head_end + 4 + content_length;
        assert!(
            rest.len() >= total,
            "truncated response: head promises {content_length} body bytes"
        );
        replies.push(parse_response(&rest[..total]));
        rest = &rest[total..];
    }
    assert!(
        rest.is_empty(),
        "trailing bytes are not a response: {rest:?}"
    );
    replies
}

#[test]
fn slow_loris_partial_head_gets_408_and_counts() {
    let fixture = serve_scenario_config(
        20,
        7,
        ServerConfig {
            read_deadline: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );
    let addr = fixture.server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A head that never completes: the deadline must answer 408 and
    // close rather than hold the connection (or hang the test).
    stream.write_all(b"GET /status HTT").unwrap();
    let raw = read_to_eof_no_reset(&mut stream);
    let reply = parse_response(&String::from_utf8_lossy(&raw));
    assert_eq!(reply.status, 408, "slow-loris must be answered 408");
    assert_eq!(reply.header("connection"), Some("close"));
    assert!(
        fixture.server.metrics().read_timeouts() >= 1,
        "the read-deadline counter must record the kill"
    );
}

#[test]
fn stalled_writer_is_dropped_and_counted() {
    let fixture = serve_scenario_config(
        20,
        7,
        ServerConfig {
            write_stall_timeout: Duration::from_millis(300),
            // Tiny kernel send buffer so the stall is observable without
            // megabytes of queued responses.
            send_buffer_bytes: Some(4096),
            pipeline_depth: 16,
            max_requests_per_connection: 4096,
            ..ServerConfig::default()
        },
    );
    let addr = fixture.server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Pipeline enough /metrics responses (~10 KiB each) to overrun the
    // shrunken send buffer plus the peer's receive window, then never
    // read: the server must drop the stalled connection, not wait.
    let burst: String = (0..96)
        .map(|_| "GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n")
        .collect();
    stream.write_all(burst.as_bytes()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while fixture.server.metrics().write_stall_timeouts() == 0 {
        assert!(
            Instant::now() < deadline,
            "write stall was never detected; counter stayed 0"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(stream);
}

#[test]
fn overload_sheds_with_close_framing_not_resets() {
    // One worker, a one-slot admission ceiling, and a one-deep ready
    // queue: simultaneous bursts from many pipelining clients must shed
    // with well-formed close-framed 503s.
    let fixture = serve_scenario_config(
        20,
        7,
        ServerConfig {
            workers: 1,
            admission_min: 1,
            admission_max: 1,
            queue_depth: 1,
            pipeline_depth: 4,
            ..ServerConfig::default()
        },
    );
    let addr = fixture.server.addr();
    const CONNS: usize = 16;
    // Connect everyone first so the bursts land together.
    let mut streams: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            s
        })
        .collect();
    // Each connection pipelines four requests; the first carries a body
    // — the original bug dropped shed connections without draining it,
    // so the kernel answered the unread bytes with RST and destroyed
    // the buffered 503 mid-pipeline.
    let body = "x".repeat(100);
    let burst = format!(
        "GET /status HTTP/1.1\r\nhost: t\r\ncontent-length: 100\r\n\r\n{body}\
         GET /status HTTP/1.1\r\nhost: t\r\n\r\n\
         GET /status HTTP/1.1\r\nhost: t\r\n\r\n\
         GET /status HTTP/1.1\r\nhost: t\r\n\r\n"
    );
    for stream in &mut streams {
        stream.write_all(burst.as_bytes()).unwrap();
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for stream in &mut streams {
        let raw = read_to_eof_no_reset(stream);
        let replies = split_responses(&raw);
        assert!(
            !replies.is_empty(),
            "every connection must receive at least one well-formed response"
        );
        for reply in &replies {
            match reply.status {
                200 => ok += 1,
                503 => {
                    shed += 1;
                    assert_eq!(
                        reply.header("connection"),
                        Some("close"),
                        "sheds must advertise the close"
                    );
                }
                other => panic!("unexpected status {other}"),
            }
        }
        // A 503, if present, is the connection's final response.
        if let Some(pos) = replies.iter().position(|r| r.status == 503) {
            assert_eq!(pos, replies.len() - 1, "shed must close the connection");
        }
    }
    assert!(ok > 0, "some requests must still be served under overload");
    assert!(
        shed > 0,
        "the one-deep ready queue must shed at least one request"
    );
    let text = fixture.server.metrics().render(0, 0);
    assert!(
        text.contains("ripki_http_requests_shed_total")
            && !text.contains("ripki_http_requests_shed_total 0\n"),
        "request-shed counter must be non-zero:\n{text}"
    );
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let mut fixture = serve_scenario_config(20, 7, ServerConfig::default());
    let addr = fixture.server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"GET /api/v1/validity?asn=AS65000&prefix=10.0.0.0/24 HTTP/1.1\r\nhost: t\r\n\r\n",
        )
        .unwrap();
    // Let the reactor parse and dispatch, then shut down while the
    // response may still be in flight: drain must deliver it whole.
    std::thread::sleep(Duration::from_millis(100));
    fixture.server.shutdown();
    let raw = read_to_eof_no_reset(&mut stream);
    let replies = split_responses(&raw);
    assert_eq!(replies.len(), 1, "the in-flight request must be answered");
    assert_eq!(replies[0].status, 200);
    assert!(
        replies[0].body.contains("validated_route"),
        "drained response must be complete: {}",
        replies[0].body
    );
}
