//! Fuzzing the HTTP request parser: arbitrary and mutated input must
//! never panic, truncation must ask for more bytes (never mis-parse),
//! and whatever garbage a live connection sends, the server answers
//! with a well-formed error response.
// Tests may panic freely; the crate's `unwrap_used` deny targets the
// request path.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use ripki_serve::http::{parse_head, HttpError, MAX_HEAD_BYTES};
use ripki_serve_testutil::{parse_response, serve_scenario};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A generator biased toward almost-HTTP: either raw bytes or a valid
/// request head with a random mutation applied.
fn re(pattern: &str) -> proptest::string::RegexStrategy {
    proptest::string::string_regex(pattern).expect("supported pattern")
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    let raw = proptest::collection::vec(any::<u8>(), 0..512);
    let mutated = (
        re("[a-zA-Z]{1,8}"),
        re("[ -~]{0,64}"),
        proptest::collection::vec((re("[a-zA-Z-]{1,16}"), re("[ -~]{0,32}")), 0..4),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(method, target, headers, mutate_at, mutate_to)| {
            let mut text = format!("{method} /{target} HTTP/1.1\r\n");
            for (name, value) in headers {
                text.push_str(&format!("{name}: {value}\r\n"));
            }
            text.push_str("\r\n");
            let mut bytes = text.into_bytes();
            let i = mutate_at as usize % bytes.len().max(1);
            if i < bytes.len() {
                bytes[i] = mutate_to;
            }
            bytes
        });
    prop_oneof![raw, mutated]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Whatever the bytes, `parse_head` returns — it never panics, and
    /// a successful parse consumed no more than the buffer.
    #[test]
    fn parser_never_panics(input in arb_input()) {
        match parse_head(&input) {
            Ok(Some((request, consumed))) => {
                prop_assert!(consumed <= input.len());
                prop_assert!(request.path.starts_with('/'));
            }
            Ok(None) => prop_assert!(input.len() < MAX_HEAD_BYTES),
            Err(e) => prop_assert!(matches!(
                e.status(),
                400 | 414 | 431 | 505
            )),
        }
    }

    /// Every strict prefix of a request that parses must either ask for
    /// more bytes or fail — never yield a (different) complete parse
    /// from fewer bytes than the full head.
    #[test]
    fn truncation_is_never_a_complete_parse(
        target in re("[a-z0-9/._-]{0,40}"),
        cut in any::<prop::sample::Index>(),
    ) {
        let text = format!("GET /{target} HTTP/1.1\r\nhost: x\r\n\r\n");
        let bytes = text.as_bytes();
        let (_, full_len) = parse_head(bytes)
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(full_len, bytes.len());
        let cut = cut.index(bytes.len() - 1); // strictly shorter
        match parse_head(&bytes[..cut]) {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "complete parse from a strict prefix"),
            // A cut can land inside a percent escape etc.; errors are
            // acceptable, silent mis-parses are not.
            Err(_) => {}
        }
    }
}

/// Deterministic end-to-end check: garbage over a real socket gets a
/// parseable HTTP error response, and the connection closes.
#[test]
fn live_server_answers_garbage_with_well_formed_errors() {
    let fx = serve_scenario(100, 29);
    let addr = fx.server.addr();
    let cases: [&[u8]; 6] = [
        b"\x00\x01\x02\x03\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"FROB / HTTP/1.1\r\nbad header line\r\n\r\n",
        b"GET /%zz HTTP/1.1\r\n\r\n",
        b"POST /api/v1/validity HTTP/1.1\r\ncontent-length: 4\r\n\r\nably",
    ];
    for case in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(case).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let reply = parse_response(&raw);
        assert!(
            matches!(reply.status, 400 | 405 | 505),
            "{case:?} -> {}",
            reply.status
        );
        assert!(raw.contains("content-length:"), "{raw}");
        assert!(reply.body.contains("error"), "{raw}");
    }

    // An oversized head is cut off with 431 without buffering it all.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge = vec![b'a'; MAX_HEAD_BYTES + 1024];
    // The server may close mid-write; ignore the write error and read
    // whatever response made it out.
    let _ = stream.write_all(b"GET / HTTP/1.1\r\nx: ");
    let _ = stream.write_all(&huge);
    let _ = stream.write_all(b"\r\n\r\n");
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 431"), "{raw:.60}");
}

/// The parser error → status mapping is total and stable.
#[test]
fn error_statuses_are_canonical() {
    assert_eq!(HttpError::Malformed("x").status(), 400);
    assert_eq!(HttpError::TargetTooLong.status(), 414);
    assert_eq!(HttpError::HeadTooLarge.status(), 431);
    assert_eq!(HttpError::BadVersion.status(), 505);
}
