//! The connection-reuse contract for requests that announce bodies: no
//! endpoint reads one, but a small body is drained off the stream so
//! keep-alive survives, while an oversized or chunked body still costs
//! the connection (draining it would let a peer pin a worker with an
//! arbitrarily long upload).

use ripki_serve_testutil::{keep_alive_session, serve_scenario};

fn post_with_body(body: &str) -> String {
    format!(
        "POST /status HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

const FOLLOW_UP: &str = "GET /status HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n";

#[test]
fn small_body_is_drained_and_the_connection_survives() {
    let fx = serve_scenario(40, 7);
    let body = "x".repeat(512);
    let replies = keep_alive_session(
        fx.server.addr(),
        &[post_with_body(&body), FOLLOW_UP.to_string()],
    );
    assert_eq!(
        replies.len(),
        2,
        "drained body must not cost the connection"
    );
    // The POST itself is refused (the API is read-only)…
    assert_eq!(replies[0].status, 405);
    // …but the follow-up on the same connection is served normally,
    // which is only possible if the 512 bytes were consumed: otherwise
    // they would be parsed as a garbage request line.
    assert_eq!(replies[1].status, 200, "{}", replies[1].body);
    assert!(replies[1].body.contains("\"epoch\""), "{}", replies[1].body);
}

#[test]
fn oversized_body_still_closes_the_connection() {
    let fx = serve_scenario(40, 7);
    // One byte past the drain cap: the server answers the request but
    // refuses to read the body, so the connection must close.
    let body = "x".repeat(8 * 1024 + 1);
    let replies = keep_alive_session(
        fx.server.addr(),
        &[post_with_body(&body), FOLLOW_UP.to_string()],
    );
    assert_eq!(replies.len(), 1, "oversized body must close the connection");
    assert_eq!(replies[0].status, 405);
}

#[test]
fn chunked_body_still_closes_the_connection() {
    let fx = serve_scenario(40, 7);
    // Chunked framing is never drained — the length is unknowable up
    // front, so the server responds and closes.
    let chunked = "POST /status HTTP/1.1\r\nhost: test\r\n\
                   transfer-encoding: chunked\r\n\r\n4\r\nwxyz\r\n0\r\n\r\n"
        .to_string();
    let replies = keep_alive_session(fx.server.addr(), &[chunked, FOLLOW_UP.to_string()]);
    assert_eq!(replies.len(), 1, "chunked body must close the connection");
    assert_eq!(replies[0].status, 405);
}

#[test]
fn get_with_drained_body_reaches_its_endpoint() {
    let fx = serve_scenario(40, 7);
    // A GET carrying a (pointless but legal) body: the endpoint answers
    // as if the body were absent, and the connection survives.
    let with_body =
        "GET /status HTTP/1.1\r\nhost: test\r\ncontent-length: 5\r\n\r\nhello".to_string();
    let replies = keep_alive_session(fx.server.addr(), &[with_body, FOLLOW_UP.to_string()]);
    assert_eq!(replies.len(), 2);
    assert_eq!(replies[0].status, 200, "{}", replies[0].body);
    assert_eq!(replies[1].status, 200);
}
