//! Property tests of the per-connection readiness state machine:
//! however the input byte stream is fragmented and however the output
//! is consumed, a connection must produce byte-identical responses to
//! the one-shot path. This is the invariant that makes the reactor's
//! partial reads and writes safe — TCP segmentation cannot change what
//! a client observes.

// Test code: unwrap on harness plumbing is fine here, the crate-level
// deny targets the request path.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use ripki_serve::conn::{ConnConfig, ConnMachine};

/// Deterministic stand-in for the worker pool: a canned response that
/// is a pure function of the request path, echoing the keep-alive wish.
fn canned_response(path: &str, keep_alive: bool) -> Vec<u8> {
    let body = format!("echo:{path}");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Run every dispatchable request through the canned handler, exactly
/// as the reactor would (one in flight at a time, responses in order).
fn pump(machine: &mut ConnMachine) {
    while machine.dispatchable() {
        let job = machine.next_job().unwrap();
        let response = canned_response(&job.request.path, job.keep_alive);
        machine.complete(&response, job.keep_alive);
    }
}

/// Drain all currently writable bytes in `chunk`-sized slices,
/// emulating partial socket writes.
fn drain_output(machine: &mut ConnMachine, chunk: usize, out: &mut Vec<u8>) {
    while machine.has_output() {
        let take = machine.writable().len().min(chunk.max(1));
        out.extend_from_slice(&machine.writable()[..take]);
        machine.advance_write(take);
    }
}

/// Feed `input` split at the given boundaries, pumping the handler and
/// draining output (in `write_chunk`-sized pieces) after every step.
/// Returns everything the "socket" would have carried to the client.
fn run_fragmented(input: &[u8], boundaries: &[usize], write_chunk: usize) -> Vec<u8> {
    let mut machine = ConnMachine::new(ConnConfig::default());
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut cuts: Vec<usize> = boundaries.iter().map(|b| b % (input.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.push(input.len());
    for cut in cuts {
        if cut > start {
            machine.on_bytes(&input[start..cut]);
            start = cut;
        }
        pump(&mut machine);
        drain_output(&mut machine, write_chunk, &mut out);
    }
    machine.on_eof();
    pump(&mut machine);
    drain_output(&mut machine, write_chunk, &mut out);
    out
}

fn re(pattern: &str) -> proptest::string::RegexStrategy {
    proptest::string::string_regex(pattern).expect("supported pattern")
}

fn path_strategy() -> proptest::string::RegexStrategy {
    re("/[a-z0-9/_.-]{0,24}")
}

fn request_text(path: &str, keep_alive: bool, body: &str) -> String {
    let mut head = format!("GET {path} HTTP/1.1\r\nhost: prop\r\n");
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    if !body.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    format!("{head}\r\n{body}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary read fragmentation and write chunking must not change
    /// a single output byte relative to the one-shot run.
    #[test]
    fn fragmentation_is_invisible(
        paths in proptest::collection::vec(path_strategy(), 1..5),
        bodies in proptest::collection::vec(re("[a-z]{0,64}"), 1..5),
        close_last in any::<bool>(),
        boundaries in proptest::collection::vec(any::<usize>(), 0..12),
        write_chunk in 1usize..64,
    ) {
        let mut input = String::new();
        let n = paths.len();
        for (i, path) in paths.iter().enumerate() {
            let body = bodies.get(i).map_or("", |b| b.as_str());
            let keep = !(close_last && i == n - 1);
            input.push_str(&request_text(path, keep, body));
        }
        let reference = run_fragmented(input.as_bytes(), &[], usize::MAX);
        let fragmented = run_fragmented(input.as_bytes(), &boundaries, write_chunk);
        prop_assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&fragmented)
        );
        prop_assert!(!reference.is_empty(), "at least one response expected");
    }

    /// Garbage after valid requests: the deterministic error response
    /// must also be fragmentation-invariant, and the machine must
    /// always reach a terminal state (never hang waiting for reads).
    #[test]
    fn trailing_garbage_errors_identically(
        path in path_strategy(),
        garbage in proptest::collection::vec(any::<u8>(), 1..128),
        boundaries in proptest::collection::vec(any::<usize>(), 0..8),
        write_chunk in 1usize..32,
    ) {
        let mut input = request_text(&path, true, "").into_bytes();
        // Force a parse error: a line the head parser must reject.
        input.extend_from_slice(b"NOT-HTTP ");
        input.extend_from_slice(&garbage);
        input.extend_from_slice(b"\r\n\r\n");
        let reference = run_fragmented(&input, &[], usize::MAX);
        let fragmented = run_fragmented(&input, &boundaries, write_chunk);
        prop_assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&fragmented)
        );
    }

    /// After EOF plus a full pump/drain cycle the machine reports
    /// `done()` — no input schedule can wedge a connection open.
    #[test]
    fn every_schedule_terminates(
        input in proptest::collection::vec(any::<u8>(), 0..512),
        boundaries in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut machine = ConnMachine::new(ConnConfig::default());
        let mut cuts: Vec<usize> = boundaries.iter().map(|b| b % (input.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.push(input.len());
        let mut start = 0usize;
        let mut out = Vec::new();
        for cut in cuts {
            if cut > start {
                machine.on_bytes(&input[start..cut]);
                start = cut;
            }
            pump(&mut machine);
            drain_output(&mut machine, 16, &mut out);
        }
        machine.on_eof();
        pump(&mut machine);
        drain_output(&mut machine, 16, &mut out);
        prop_assert!(machine.done(), "machine wedged after EOF");
    }
}
