//! Loom models of the serving plane's concurrency-critical pieces.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI's static-analysis
//! lane) so the ordinary test run never pays for schedule exploration:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ripki-serve --test loom_model
//! ```
//!
//! Two invariants are modelled:
//!
//! 1. **`SharedView` publish/read races** — a reader must never observe
//!    the epoch moving backwards, and every view it obtains must be
//!    internally consistent (snapshot epoch == results epoch, which
//!    `EpochView::new` asserts on construction).
//! 2. **`ThreadPool` shutdown** — every job the pool *accepted* runs
//!    before `shutdown` returns; accepted work is never dropped.
//!
//! The vendored `loom` is an offline stand-in (bounded randomized
//! stress, not exhaustive model checking — see `vendor/loom`), so these
//! tests explore hundreds of schedules per run rather than all of them.
#![cfg(loom)]
// Test code: unwrap on fixture plumbing is fine here, the crate-level
// deny targets the request path.
#![allow(clippy::unwrap_used)]

use loom::thread;
use ripki::engine::StudyEngine;
use ripki::exposure::ExposureConfig;
use ripki::pipeline::{PipelineConfig, StudyResults};
use ripki_serve::pool::ThreadPool;
use ripki_serve::{EpochView, SharedView};
use ripki_websim::churn::{ChurnConfig, ChurnStream};
use ripki_websim::{Scenario, ScenarioConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Two consecutive epochs of a small measured world: (snapshot, results)
/// at epoch N and at epoch N+1. Built once — each model iteration only
/// re-wraps the Arcs in fresh `EpochView`s.
type EpochPair = (
    Arc<ripki::engine::WorldSnapshot>,
    Arc<StudyResults>,
    Arc<ripki::engine::WorldSnapshot>,
    Arc<StudyResults>,
);

fn two_epochs() -> EpochPair {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 23,
        ..ScenarioConfig::with_domains(8)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let mut results = engine.run(&scenario.ranking);
    let snap0 = engine.snapshot();
    let res0 = Arc::new(results.clone());

    let mut stream = ChurnStream::new(&scenario, ChurnConfig::default());
    let batch = stream.next_epoch();
    engine.apply_events(&batch, &mut results);
    let snap1 = engine.snapshot();
    assert!(
        snap1.epoch() > snap0.epoch(),
        "churn must advance the epoch"
    );
    (snap0, res0, snap1, Arc::new(results))
}

fn view_from(
    snapshot: &Arc<ripki::engine::WorldSnapshot>,
    results: &Arc<StudyResults>,
) -> EpochView {
    EpochView::new(
        Arc::clone(snapshot),
        Arc::clone(results),
        None,
        ExposureConfig::default(),
    )
}

#[test]
fn shared_view_readers_never_see_epochs_regress() {
    let (snap0, res0, snap1, res1) = two_epochs();
    let first = snap0.epoch();
    let last = snap1.epoch();
    loom::model(move || {
        let shared = Arc::new(SharedView::new(view_from(&snap0, &res0)));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let mut seen = 0u64;
                    for _ in 0..4 {
                        let view = shared.current();
                        let epoch = view.epoch();
                        assert!(epoch >= seen, "epoch regressed: {seen} -> {epoch}");
                        // The constructor's assert makes a torn view
                        // unrepresentable; check it held anyway.
                        assert_eq!(view.snapshot().epoch(), view.results().epoch);
                        seen = epoch;
                    }
                    seen
                })
            })
            .collect();

        let writer = {
            let shared = Arc::clone(&shared);
            let snap1 = Arc::clone(&snap1);
            let res1 = Arc::clone(&res1);
            thread::spawn(move || shared.publish(view_from(&snap1, &res1)))
        };

        for reader in readers {
            let seen = reader.join().unwrap();
            assert!(
                seen == first || seen == last,
                "reader finished on unknown epoch {seen}"
            );
        }
        writer.join().unwrap();
        assert_eq!(
            shared.current().epoch(),
            last,
            "publish must win in the end"
        );
    });
}

#[test]
fn thread_pool_shutdown_runs_every_accepted_job() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(2, 2).expect("spawn model pool");
        let mut accepted = 0usize;
        for _ in 0..6 {
            let counter = Arc::clone(&counter);
            if pool
                .try_execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok()
            {
                accepted += 1;
            }
        }
        // Workers were live, so at least some submissions must land
        // even on the least cooperative schedule (queue depth 2 alone
        // guarantees acceptance of the first two).
        assert!(accepted >= 2, "bounded queue accepted {accepted}");
        pool.shutdown();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            accepted,
            "accepted jobs must all run before shutdown returns"
        );
    });
}
