//! Loom models of the serving plane's concurrency-critical pieces.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI's static-analysis
//! lane) so the ordinary test run never pays for schedule exploration:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ripki-serve --test loom_model
//! ```
//!
//! Three invariants are modelled:
//!
//! 1. **`SharedView` publish/read races** — a reader must never observe
//!    the epoch moving backwards, and every view it obtains must be
//!    internally consistent (snapshot epoch == results epoch, which
//!    `EpochView::new` asserts on construction).
//! 2. **`WorkerPool` shutdown** — every job the pool *accepted* has its
//!    completion pushed before `shutdown` returns; accepted work is
//!    never dropped.
//! 3. **Reactor↔worker handoff** — `CompletionQueue` pushes under the
//!    lock *before* waking, so a reactor that drains after every wake
//!    observes every completion exactly once; no schedule loses or
//!    duplicates a completion.
//!
//! The vendored `loom` is an offline stand-in (bounded randomized
//! stress, not exhaustive model checking — see `vendor/loom`), so these
//! tests explore hundreds of schedules per run rather than all of them.
#![cfg(loom)]
// Test code: unwrap on fixture plumbing is fine here, the crate-level
// deny targets the request path.
#![allow(clippy::unwrap_used)]

use loom::thread;
use ripki::engine::StudyEngine;
use ripki::exposure::ExposureConfig;
use ripki::pipeline::{PipelineConfig, StudyResults};
use ripki_serve::http::parse_head;
use ripki_serve::pool::{Completion, CompletionQueue, Job, Wake, WorkerPool};
use ripki_serve::{EpochView, SharedView};
use ripki_websim::churn::{ChurnConfig, ChurnStream};
use ripki_websim::{Scenario, ScenarioConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Two consecutive epochs of a small measured world: (snapshot, results)
/// at epoch N and at epoch N+1. Built once — each model iteration only
/// re-wraps the Arcs in fresh `EpochView`s.
type EpochPair = (
    Arc<ripki::engine::WorldSnapshot>,
    Arc<StudyResults>,
    Arc<ripki::engine::WorldSnapshot>,
    Arc<StudyResults>,
);

fn two_epochs() -> EpochPair {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 23,
        ..ScenarioConfig::with_domains(8)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let mut results = engine.run(&scenario.ranking);
    let snap0 = engine.snapshot();
    let res0 = Arc::new(results.clone());

    let mut stream = ChurnStream::new(&scenario, ChurnConfig::default());
    let batch = stream.next_epoch();
    engine.apply_events(&batch, &mut results);
    let snap1 = engine.snapshot();
    assert!(
        snap1.epoch() > snap0.epoch(),
        "churn must advance the epoch"
    );
    (snap0, res0, snap1, Arc::new(results))
}

fn view_from(
    snapshot: &Arc<ripki::engine::WorldSnapshot>,
    results: &Arc<StudyResults>,
) -> EpochView {
    EpochView::new(
        Arc::clone(snapshot),
        Arc::clone(results),
        None,
        ExposureConfig::default(),
    )
}

#[test]
fn shared_view_readers_never_see_epochs_regress() {
    let (snap0, res0, snap1, res1) = two_epochs();
    let first = snap0.epoch();
    let last = snap1.epoch();
    loom::model(move || {
        let shared = Arc::new(SharedView::new(view_from(&snap0, &res0)));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let mut seen = 0u64;
                    for _ in 0..4 {
                        let view = shared.current();
                        let epoch = view.epoch();
                        assert!(epoch >= seen, "epoch regressed: {seen} -> {epoch}");
                        // The constructor's assert makes a torn view
                        // unrepresentable; check it held anyway.
                        assert_eq!(view.snapshot().epoch(), view.results().epoch);
                        seen = epoch;
                    }
                    seen
                })
            })
            .collect();

        let writer = {
            let shared = Arc::clone(&shared);
            let snap1 = Arc::clone(&snap1);
            let res1 = Arc::clone(&res1);
            thread::spawn(move || shared.publish(view_from(&snap1, &res1)))
        };

        for reader in readers {
            let seen = reader.join().unwrap();
            assert!(
                seen == first || seen == last,
                "reader finished on unknown epoch {seen}"
            );
        }
        writer.join().unwrap();
        assert_eq!(
            shared.current().epoch(),
            last,
            "publish must win in the end"
        );
    });
}

/// A wake hook that only counts; the handoff model below uses a
/// stronger one that drains.
struct CountWake(AtomicUsize);
impl Wake for CountWake {
    fn wake(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn model_request() -> ripki_serve::http::Request {
    parse_head(b"GET /x HTTP/1.1\r\n\r\n")
        .expect("fixture head parses")
        .expect("fixture head is complete")
        .0
}

#[test]
fn worker_pool_shutdown_completes_every_accepted_job() {
    loom::model(|| {
        let completions = Arc::new(CompletionQueue::new(Box::new(CountWake(AtomicUsize::new(
            0,
        )))));
        let handler: ripki_serve::pool::Handler = Arc::new(|_req, keep| (b"ok".to_vec(), keep));
        let mut pool =
            WorkerPool::new(2, 2, handler, Arc::clone(&completions)).expect("spawn model pool");
        let mut accepted = 0usize;
        for i in 0..6u64 {
            if pool
                .execute(Job {
                    conn: i,
                    request: model_request(),
                    keep_alive: true,
                })
                .is_ok()
            {
                accepted += 1;
            }
        }
        // Queue capacity 2 alone guarantees the first two submissions
        // land even on the least cooperative schedule.
        assert!(accepted >= 2, "bounded queue accepted {accepted}");
        pool.shutdown();
        assert_eq!(
            completions.drain().len(),
            accepted,
            "accepted jobs must all complete before shutdown returns"
        );
    });
}

#[test]
fn completion_queue_handoff_loses_nothing() {
    loom::model(|| {
        // A model reactor: the wake flag is raised by workers; the
        // "reactor" thread drains whenever it sees the flag, clearing
        // it *before* draining (the same order the real loop uses:
        // drain the wake pipe, then the queue).
        struct FlagWake(Arc<std::sync::atomic::AtomicBool>);
        impl Wake for FlagWake {
            fn wake(&self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let queue = Arc::new(CompletionQueue::new(Box::new(FlagWake(Arc::clone(&flag)))));

        const PER_WORKER: u64 = 2;
        let workers: Vec<_> = (0..2u64)
            .map(|w| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    for i in 0..PER_WORKER {
                        queue.push(Completion {
                            conn: w * PER_WORKER + i,
                            bytes: Vec::new(),
                            keep_alive: true,
                            latency: std::time::Duration::ZERO,
                        });
                    }
                })
            })
            .collect();

        let reactor = {
            let queue = Arc::clone(&queue);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                let mut seen: Vec<u64> = Vec::new();
                // Bounded spin: each worker raises the flag after its
                // final push, so polling until all four land cannot
                // miss one (push happens-before wake).
                while seen.len() < 4 {
                    if flag.swap(false, Ordering::SeqCst) {
                        seen.extend(queue.drain().iter().map(|c| c.conn));
                    }
                    thread::yield_now();
                }
                seen
            })
        };

        for worker in workers {
            worker.join().unwrap();
        }
        let mut seen = reactor.join().unwrap();
        // Late drain after joins: exactly-once means nothing is left
        // over and nothing was duplicated.
        seen.extend(queue.drain().iter().map(|c| c.conn));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "handoff lost or duplicated work");
    });
}
