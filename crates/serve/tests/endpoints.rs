//! End-to-end endpoint coverage over a real measured scenario: each
//! route is exercised through an actual TCP connection against the
//! running server, and the payloads are checked against the engine's
//! own answers.
// Tests may panic freely; the crate's `unwrap_used` deny targets the
// request path.
#![allow(clippy::unwrap_used)]

use ripki_serve::api::state_label;
use ripki_serve_testutil::{get, raw_roundtrip, serve_scenario};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn validity_endpoint_agrees_with_the_engine() {
    let fx = serve_scenario(300, 11);
    let addr = fx.server.addr();
    let snapshot = fx.engine.snapshot();
    let vrp = snapshot.vrps().first().copied().expect("scenario has VRPs");

    // The VRP's own (prefix, asn) is valid by construction.
    let reply = get(
        addr,
        &format!("/api/v1/validity?asn={}&prefix={}", vrp.asn, vrp.prefix),
    );
    assert_eq!(reply.status, 200);
    let json = reply.json();
    let validated = json
        .as_object()
        .and_then(|o| o.get("validated_route"))
        .and_then(|v| v.as_object())
        .expect("validated_route object");
    let validity = validated
        .get("validity")
        .and_then(|v| v.as_object())
        .expect("validity object");
    assert_eq!(
        validity.get("state").and_then(|s| s.as_str()),
        Some("valid")
    );
    let matched = validity
        .get("VRPs")
        .and_then(|v| v.as_object())
        .and_then(|v| v.get("matched"))
        .and_then(|m| m.as_array())
        .expect("matched VRP list");
    assert!(!matched.is_empty());
    assert_eq!(
        json.as_object()
            .and_then(|o| o.get("epoch"))
            .and_then(serde_json::Value::as_u128),
        Some(1)
    );

    // Same prefix from a bogus origin: invalid, reason "as".
    let reply = get(
        addr,
        &format!("/api/v1/validity?asn=AS4200000000&prefix={}", vrp.prefix),
    );
    let json = reply.json();
    let validity = json
        .as_object()
        .and_then(|o| o.get("validated_route"))
        .and_then(|v| v.as_object())
        .and_then(|v| v.get("validity"))
        .and_then(|v| v.as_object())
        .expect("validity object");
    assert_eq!(
        validity.get("state").and_then(|s| s.as_str()),
        Some("invalid")
    );
    assert_eq!(validity.get("reason").and_then(|r| r.as_str()), Some("as"));

    // Path form (Routinator style) answers identically.
    let reply2 = get(
        addr,
        &format!("/api/v1/validity/AS4200000000/{}", vrp.prefix),
    );
    assert_eq!(reply2.status, 200);
    assert_eq!(reply2.body, reply.body);

    // A handful of announcements from the measured RIB: the endpoint
    // must agree with the snapshot's own verdict every time.
    let results = fx.engine.run(&fx.scenario.ranking);
    let mut checked = 0;
    for d in results.domains.iter().take(40) {
        for p in d.bare.pairs.iter().chain(&d.www.pairs) {
            let reply = get(
                addr,
                &format!("/api/v1/validity?asn={}&prefix={}", p.origin, p.prefix),
            );
            let json = reply.json();
            let got = json
                .as_object()
                .and_then(|o| o.get("validated_route"))
                .and_then(|v| v.as_object())
                .and_then(|v| v.get("validity"))
                .and_then(|v| v.as_object())
                .and_then(|v| v.get("state"))
                .and_then(|s| s.as_str())
                .expect("state string")
                .to_string();
            let expected = state_label(snapshot.validity(&p.prefix, p.origin).state);
            assert_eq!(got, expected, "{} from {}", p.prefix, p.origin);
            checked += 1;
        }
    }
    assert!(checked > 10, "expected real pairs to check, got {checked}");
}

#[test]
fn vrp_exports_stream_the_full_epoch_set() {
    let fx = serve_scenario(250, 3);
    let addr = fx.server.addr();
    let vrps = fx.engine.snapshot().vrps().to_vec();
    assert!(!vrps.is_empty());

    let reply = get(addr, "/vrps.json");
    assert_eq!(reply.status, 200);
    let json = reply.json();
    let root = json.as_object().expect("object");
    let metadata = root.get("metadata").and_then(|m| m.as_object()).unwrap();
    assert_eq!(
        metadata.get("epoch").and_then(serde_json::Value::as_u128),
        Some(1)
    );
    assert_eq!(
        metadata
            .get("vrp_count")
            .and_then(serde_json::Value::as_u128),
        Some(vrps.len() as u128)
    );
    let roas = root.get("roas").and_then(|r| r.as_array()).unwrap();
    assert_eq!(roas.len(), vrps.len());
    let first = roas[0].as_object().unwrap();
    assert_eq!(
        first.get("asn").and_then(|a| a.as_str()),
        Some(vrps[0].asn.to_string().as_str())
    );
    assert_eq!(
        first.get("prefix").and_then(|p| p.as_str()),
        Some(vrps[0].prefix.to_string().as_str())
    );

    let reply = get(addr, "/vrps.csv");
    assert_eq!(reply.status, 200);
    let mut lines = reply.body.lines();
    assert_eq!(lines.next(), Some("ASN,IP Prefix,Max Length,Trust Anchor"));
    assert_eq!(lines.count(), vrps.len());
    assert!(reply.body.contains(&format!(
        "{},{},{},sim",
        vrps[0].asn, vrps[0].prefix, vrps[0].max_length
    )));
}

#[test]
fn domain_endpoint_serves_measurements_and_exposure() {
    let fx = serve_scenario(200, 21);
    let addr = fx.server.addr();
    let listed = fx.scenario.ranking[0].clone();

    let reply = get(addr, &format!("/api/v1/domain/{listed}"));
    assert_eq!(reply.status, 200, "{}", reply.body);
    let json = reply.json();
    let root = json.as_object().unwrap();
    assert_eq!(
        root.get("rank").and_then(serde_json::Value::as_u128),
        Some(0)
    );
    assert_eq!(
        root.get("listed").and_then(|l| l.as_str()),
        Some(listed.as_str())
    );
    for form in ["www", "bare"] {
        let m = root.get(form).and_then(|m| m.as_object()).expect(form);
        assert!(m.get("pairs").and_then(|p| p.as_array()).is_some());
        assert!(m.get("coverage").is_some());
    }
    // The scenario provides a topology, so exposure is an object or an
    // explicit null (unsimulable), never absent.
    assert!(root.get("exposure").is_some());

    // The www form resolves to the same measurement.
    let www = get(
        addr,
        &format!("/api/v1/domain/www.{}", listed.without_www()),
    );
    assert_eq!(www.status, 200);
    assert_eq!(
        www.json().as_object().unwrap().get("rank"),
        root.get("rank")
    );

    let missing = get(addr, "/api/v1/domain/never-ranked.example");
    assert_eq!(missing.status, 404);
}

#[test]
fn domain_exposure_memo_serves_identical_bytes() {
    let fx = serve_scenario(120, 33);
    let addr = fx.server.addr();

    // The first request per domain computes the hijack exposure and
    // seeds the per-epoch memo; the repeat must be answered from the
    // memo with byte-identical JSON.
    let mut simulated = 0usize;
    for listed in fx.scenario.ranking.iter().take(10) {
        let path = format!("/api/v1/domain/{listed}");
        let first = get(addr, &path);
        assert_eq!(first.status, 200, "{}", first.body);
        let second = get(addr, &path);
        assert_eq!(second.status, 200);
        assert_eq!(
            first.body, second.body,
            "memo changed the reply for {listed}"
        );
        let json = first.json();
        let exposure = json.as_object().and_then(|r| r.get("exposure"));
        if exposure.is_some_and(|e| e.as_object().is_some()) {
            simulated += 1;
        }
    }
    // At least one domain must have exercised the computed (non-null)
    // memo path, or the assertion above proves nothing about it.
    assert!(simulated > 0, "no domain produced a simulated exposure");
}

#[test]
fn metrics_and_status_expose_the_epoch() {
    let fx = serve_scenario(150, 5);
    let addr = fx.server.addr();
    let vrp_count = fx.engine.snapshot().vrps().len();

    // Generate some traffic first so counters are non-zero.
    get(addr, "/status");
    get(addr, "/api/v1/validity?asn=AS1&prefix=192.0.2.0/24");
    get(addr, "/nonexistent");

    let reply = get(addr, "/metrics");
    assert_eq!(reply.status, 200);
    let text = &reply.body;
    assert!(text.contains("ripki_serve_epoch 1"), "{text}");
    assert!(
        text.contains(&format!("ripki_serve_vrps {vrp_count}")),
        "{text}"
    );
    assert!(
        text.contains("ripki_http_requests_total{endpoint=\"validity\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("ripki_http_errors_total{endpoint=\"other\"} 1"),
        "{text}"
    );
    assert!(
        text.contains(
            "ripki_http_request_duration_seconds_bucket{endpoint=\"validity\",le=\"+Inf\"} 1"
        ),
        "{text}"
    );

    let status = get(addr, "/status");
    let json = status.json();
    let root = json.as_object().unwrap();
    assert_eq!(
        root.get("epoch").and_then(serde_json::Value::as_u128),
        Some(1)
    );
    assert_eq!(
        root.get("vrps").and_then(serde_json::Value::as_u128),
        Some(vrp_count as u128)
    );
    assert_eq!(
        root.get("domains").and_then(serde_json::Value::as_u128),
        Some(150)
    );
    let workers = root
        .get("worker_threads")
        .and_then(serde_json::Value::as_u128)
        .expect("worker_threads reported");
    assert!(workers > 0, "effective pool size must be non-zero");
    assert_eq!(
        root.get("epoch_lag").and_then(serde_json::Value::as_u128),
        Some(0),
        "served view is the newest epoch known"
    );

    // Announcing a newer upstream epoch (validated but not yet built
    // into a view) surfaces as lag until the publish catches up.
    fx.server.view().announce_epoch(4);
    let json = get(addr, "/status").json();
    let root = json.as_object().unwrap().clone();
    assert_eq!(
        root.get("epoch_lag").and_then(serde_json::Value::as_u128),
        Some(3),
        "serving epoch 1 while epoch 4 exists upstream"
    );
}

#[test]
fn protocol_errors_are_well_formed_responses() {
    let fx = serve_scenario(120, 9);
    let addr = fx.server.addr();

    // Unknown path.
    assert_eq!(get(addr, "/api/v2/everything").status, 404);
    // Missing query parameters.
    assert_eq!(get(addr, "/api/v1/validity").status, 400);
    // Unparseable operands.
    assert_eq!(
        get(addr, "/api/v1/validity?asn=banana&prefix=10.0.0.0/24").status,
        400
    );
    assert_eq!(
        get(addr, "/api/v1/validity?asn=AS1&prefix=banana").status,
        400
    );
    // Non-GET method.
    let reply = raw_roundtrip(addr, "POST /status HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(reply.status, 405);
    // Garbage request line.
    let reply = raw_roundtrip(addr, "GARBAGE\r\n\r\n");
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("error"), "{}", reply.body);
    // Wrong protocol version.
    let reply = raw_roundtrip(addr, "GET /status SPDY/3\r\n\r\n");
    assert_eq!(reply.status, 505);
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let fx = serve_scenario(120, 13);
    let mut stream = TcpStream::connect(fx.server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    for i in 0..3 {
        stream
            .write_all(b"GET /status HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        // Read exactly one response using its content-length framing.
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            head.push(byte[0]);
        }
        let head_text = String::from_utf8(head).unwrap();
        assert!(
            head_text.starts_with("HTTP/1.1 200"),
            "req {i}: {head_text}"
        );
        assert!(
            head_text.contains("connection: keep-alive"),
            "req {i}: {head_text}"
        );
        let length: usize = head_text
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).unwrap();
        assert!(String::from_utf8(body).unwrap().contains("\"epoch\""));
    }
}

#[test]
fn vrp_exports_answer_conditional_requests_with_304() {
    let fx = serve_scenario(250, 3);
    let addr = fx.server.addr();

    // Every export advertises the same epoch-keyed strong ETag.
    let json_reply = get(addr, "/vrps.json");
    assert_eq!(json_reply.status, 200);
    let etag = json_reply
        .header("etag")
        .expect("vrps.json ETag")
        .to_string();
    assert_eq!(etag, "\"ripki-epoch-1\"");
    let csv_reply = get(addr, "/vrps.csv");
    assert_eq!(csv_reply.header("etag"), Some(etag.as_str()));

    // Revalidating with the current tag: 304, empty body, nothing
    // streamed, and the connection stays reusable (keep-alive framing).
    for path in ["/vrps.json", "/vrps.csv"] {
        let reply = raw_roundtrip(
            addr,
            &format!(
                "GET {path} HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\
                 connection: close\r\n\r\n"
            ),
        );
        assert_eq!(reply.status, 304, "{path}");
        assert!(reply.body.is_empty(), "{path}: {}", reply.body);
        assert_eq!(reply.header("etag"), Some(etag.as_str()), "{path}");
        assert_eq!(reply.header("content-length"), Some("0"), "{path}");
    }

    // List-form and weak-compare forms match too; a stale tag does not.
    let reply = raw_roundtrip(
        addr,
        &format!(
            "GET /vrps.json HTTP/1.1\r\nhost: t\r\n\
             if-none-match: \"other\", W/{etag}\r\nconnection: close\r\n\r\n"
        ),
    );
    assert_eq!(reply.status, 304);
    let reply = raw_roundtrip(
        addr,
        "GET /vrps.json HTTP/1.1\r\nhost: t\r\n\
         if-none-match: \"ripki-epoch-0\"\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(reply.status, 200);
    assert!(!reply.body.is_empty());

    // A new published epoch rotates the tag: the old one stops matching
    // and the fresh response advertises the successor.
    let results = fx.engine.run(&fx.scenario.ranking);
    let mut stream = ripki_websim::churn::ChurnStream::new(
        &fx.scenario,
        ripki_websim::churn::ChurnConfig::default(),
    );
    let mut results = results;
    let batch = stream.next_epoch();
    fx.engine.apply_events(&batch, &mut results);
    fx.server.view().publish(ripki_serve::EpochView::new(
        fx.engine.snapshot(),
        std::sync::Arc::new(results.clone()),
        None,
        Default::default(),
    ));
    let reply = raw_roundtrip(
        addr,
        &format!(
            "GET /vrps.json HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\
             connection: close\r\n\r\n"
        ),
    );
    assert_eq!(reply.status, 200, "stale epoch tag must refetch");
    assert_eq!(reply.header("etag"), Some("\"ripki-epoch-2\""));
}
