//! Pure endpoint handlers: `EpochView` in, JSON/CSV out.
//!
//! Nothing here touches sockets or locks — each function answers from
//! the single `EpochView` it is handed, which is what makes every
//! response attributable to exactly one epoch (and what the concurrency
//! test exploits: the `epoch` field stamped into each payload names the
//! view that produced it).
//!
//! The validity payload mirrors Routinator's `/api/v1/validity` shape
//! (`validated_route.route` + `validity.state/reason/description/VRPs`)
//! so existing RPKI tooling can point at the reproduction unchanged.

use crate::view::EpochView;
use ripki::pipeline::NameMeasurement;
use ripki_bgp::rov::{RpkiState, ValidityDetail, VrpTriple};
use ripki_net::{Asn, IpPrefix};
use serde_json::{Map, Value};
use std::io::{self, Write};

/// The wire spelling of an RFC 6811 state (Routinator uses kebab-case).
pub fn state_label(state: RpkiState) -> &'static str {
    match state {
        RpkiState::Valid => "valid",
        RpkiState::Invalid => "invalid",
        RpkiState::NotFound => "not-found",
    }
}

fn vrp_value(vrp: &VrpTriple) -> Value {
    let mut obj = Map::new();
    obj.insert("asn".into(), vrp.asn.to_string().into());
    obj.insert("prefix".into(), vrp.prefix.to_string().into());
    obj.insert("max_length".into(), vrp.max_length.into());
    Value::Object(obj)
}

fn vrp_list(vrps: &[VrpTriple]) -> Value {
    Value::Array(vrps.iter().map(vrp_value).collect())
}

/// `GET /api/v1/validity` — the RFC 6811 verdict for one announcement,
/// with the covering VRPs partitioned by why they did or did not match.
pub fn validity(view: &EpochView, prefix: &IpPrefix, origin: Asn) -> Value {
    // Answered from the view's effective validator, so a configured
    // SLURM exception layer changes verdicts and exports in lockstep.
    let detail: ValidityDetail = view.validity(prefix, origin);

    let mut route = Map::new();
    route.insert("origin_asn".into(), origin.to_string().into());
    route.insert("prefix".into(), prefix.to_string().into());

    let mut vrps = Map::new();
    vrps.insert("matched".into(), vrp_list(&detail.matched));
    vrps.insert("unmatched_as".into(), vrp_list(&detail.unmatched_asn));
    vrps.insert(
        "unmatched_length".into(),
        vrp_list(&detail.unmatched_length),
    );

    let mut validity = Map::new();
    validity.insert("state".into(), state_label(detail.state).into());
    if let Some(reason) = detail.reason() {
        validity.insert("reason".into(), reason.into());
    }
    validity.insert("description".into(), detail.description().into());
    validity.insert("VRPs".into(), Value::Object(vrps));

    let mut validated = Map::new();
    validated.insert("route".into(), Value::Object(route));
    validated.insert("validity".into(), Value::Object(validity));

    let mut root = Map::new();
    root.insert("validated_route".into(), Value::Object(validated));
    root.insert("epoch".into(), view.epoch().into());
    Value::Object(root)
}

/// `GET /vrps.json` — stream the epoch's full VRP set in Routinator's
/// export shape (`metadata` + `roas` with camel-case `maxLength`).
/// Delegates to the shared payload codec, so a proxy chained behind
/// this endpoint re-serves the bytes identically.
pub fn write_vrps_json(view: &EpochView, w: &mut dyn Write) -> io::Result<u64> {
    ripki_payload::json::write_vrps_json(view.payload(), Some(view.snapshot().rpki_rejected()), w)
}

/// `GET /vrps.csv` — the same export as RTR-client-style CSV.
pub fn write_vrps_csv(view: &EpochView, w: &mut dyn Write) -> io::Result<u64> {
    ripki_payload::json::write_vrps_csv(view.payload(), w)
}

fn name_measurement_value(view: &EpochView, m: &NameMeasurement) -> Value {
    let mut obj = Map::new();
    obj.insert(
        "addresses".into(),
        Value::Array(m.addresses.iter().map(|a| a.to_string().into()).collect()),
    );
    obj.insert(
        "cname_chain".into(),
        Value::Array(m.cname_chain.iter().map(|n| n.as_str().into()).collect()),
    );
    obj.insert("resolve_failed".into(), m.resolve_failed.into());
    obj.insert("dnssec_authenticated".into(), m.dnssec_authenticated.into());
    let pairs: Vec<Value> = m
        .pairs
        .iter()
        .map(|p| {
            let mut pair = Map::new();
            pair.insert("prefix".into(), p.prefix.to_string().into());
            pair.insert("origin".into(), p.origin.to_string().into());
            pair.insert("state".into(), state_label(p.state).into());
            // Re-deriving the reason from the snapshot is sound because
            // the view binds these measurements to this validator.
            if let Some(reason) = view.snapshot().validity(&p.prefix, p.origin).reason() {
                pair.insert("reason".into(), reason.into());
            }
            Value::Object(pair)
        })
        .collect();
    obj.insert("pairs".into(), Value::Array(pairs));
    let (covered, total) = m.coverage_counts();
    let mut coverage = Map::new();
    coverage.insert("covered".into(), covered.into());
    coverage.insert("total".into(), total.into());
    obj.insert("coverage".into(), Value::Object(coverage));
    Value::Object(obj)
}

/// `GET /api/v1/domain/{name}` — the stored measurement of one ranked
/// domain plus its hijack exposure, or `None` for unmeasured names.
pub fn domain(view: &EpochView, name: &ripki_dns::DomainName) -> Option<Value> {
    let (index, d) = view.domain_entry(name)?;
    let mut root = Map::new();
    root.insert("epoch".into(), view.epoch().into());
    root.insert("rank".into(), d.rank.into());
    root.insert("listed".into(), d.listed.as_str().into());
    root.insert("www".into(), name_measurement_value(view, &d.www));
    root.insert("bare".into(), name_measurement_value(view, &d.bare));
    root.insert("equal_prefixes".into(), d.equal_prefixes().into());
    // The hijack simulation behind this value is the endpoint's only
    // expensive step, so the view memoizes it per (epoch, domain).
    let exposure = match view.exposure(index) {
        Some((capture_rate, fully_covered)) => {
            let mut obj = Map::new();
            obj.insert("capture_rate".into(), capture_rate.into());
            obj.insert("fully_covered".into(), fully_covered.into());
            Value::Object(obj)
        }
        // No topology, or measured but not simulable.
        None => Value::Null,
    };
    root.insert("exposure".into(), exposure);
    Some(Value::Object(root))
}

/// `GET /status` — one-look liveness summary. `worker_threads` is the
/// effective pool size actually handling requests and `epoch_lag` the
/// distance between the served epoch and the newest epoch known to
/// exist upstream (0 when fully caught up) — the two numbers an
/// operator needs to tell "quiet" from "stuck". `open_connections` and
/// `admission_window` expose the reactor's live backpressure state.
#[allow(clippy::too_many_arguments)]
pub fn status(
    view: &EpochView,
    uptime_seconds: f64,
    requests_total: u64,
    worker_threads: usize,
    epoch_lag: u64,
    open_connections: u64,
    admission_window: u64,
) -> Value {
    let mut root = Map::new();
    root.insert("epoch".into(), view.epoch().into());
    root.insert("epoch_lag".into(), epoch_lag.into());
    // The served payload, not the raw snapshot: with a SLURM exception
    // layer the two differ and the exports serve the former.
    root.insert("vrps".into(), view.payload().len().into());
    root.insert(
        "rpki_rejected".into(),
        view.snapshot().rpki_rejected().into(),
    );
    if let Some(stats) = view.slurm_stats() {
        root.insert("slurm_filtered".into(), stats.filtered.into());
        root.insert("slurm_asserted".into(), stats.asserted.into());
    }
    root.insert("domains".into(), view.results().domains.len().into());
    root.insert("uptime_seconds".into(), uptime_seconds.into());
    root.insert("requests_total".into(), requests_total.into());
    root.insert("worker_threads".into(), worker_threads.into());
    root.insert("open_connections".into(), open_connections.into());
    root.insert("admission_window".into(), admission_window.into());
    Value::Object(root)
}
