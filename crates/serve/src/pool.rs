//! A bounded worker pool for connection handling.
//!
//! `std::net` accept loops need somewhere to push connections without
//! spawning a thread per socket. This pool holds a fixed worker set fed
//! through a *bounded* channel: when the queue is full the submission
//! fails immediately and the caller turns the connection away with 503
//! instead of queueing unbounded work — the load-shedding half of the
//! server's hardening story.

use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool over a bounded queue.
pub struct ThreadPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `workers` threads sharing a queue of at most `queue_depth`
    /// pending jobs (beyond the ones already executing).
    ///
    /// Fails if the OS refuses to spawn a worker thread; threads spawned
    /// before the failure are shut down before the error is returned.
    pub fn new(workers: usize, queue_depth: usize) -> io::Result<ThreadPool> {
        let workers = workers.max(1);
        let (sender, receiver) = sync_channel::<Job>(queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            let spawned = std::thread::Builder::new()
                .name(format!("ripki-serve-worker-{i}"))
                .spawn(move || worker_loop(receiver));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Drop the sender so the partial pool drains and
                    // exits before we report the failure.
                    drop(sender);
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ThreadPool {
            sender: Some(sender),
            workers: handles,
        })
    }

    /// Submit a job without blocking. `Err` means the queue is full (or
    /// the pool is shutting down) and the job was *not* accepted — the
    /// caller keeps ownership via the returned closure.
    pub fn try_execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), Job> {
        let Some(sender) = &self.sender else {
            return Err(Box::new(job));
        };
        sender.try_send(Box::new(job)).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        })
    }

    /// Close the queue and wait for every worker to drain and exit.
    pub fn shutdown(&mut self) {
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            // Jobs run *outside* this guard, so a panicking job cannot
            // poison the lock; if `recv` itself ever panicked, the
            // channel is still structurally sound — recover and keep
            // the remaining workers alive.
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // all senders gone: shutdown
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the request path.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn executes_submitted_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(4, 16).expect("spawn pool");
        for _ in 0..32 {
            loop {
                let counter = Arc::clone(&counter);
                if pool
                    .try_execute(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                    .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = ThreadPool::new(1, 1).expect("spawn pool");
        // Occupy the single worker, then fill the single queue slot.
        let (release_tx, release_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .map_err(|_| ())
        .expect("worker slot free");
        started_rx.recv().unwrap();
        pool.try_execute(|| {})
            .map_err(|_| ())
            .expect("queue slot free");
        // Worker busy + queue full → immediate rejection.
        assert!(pool.try_execute(|| {}).is_err());
        release_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(1, 8).expect("spawn pool");
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            while pool
                .try_execute({
                    let counter = Arc::clone(&counter);
                    move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .is_err()
            {
                std::thread::yield_now();
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
