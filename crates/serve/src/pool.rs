//! The worker half of the event loop: a fixed thread set executing
//! request handlers off the reactor thread, handing serialised
//! responses back through a [`CompletionQueue`].
//!
//! The handoff is the concurrency-critical piece (modelled in the loom
//! lane): workers push completions under a mutex and then call the
//! [`Wake`] hook; the reactor drains the queue whenever it is woken.
//! Because the push happens *before* the wake, a reactor that drains
//! after every wake observes every completion exactly once — there is
//! no schedule in which a completion is pushed but no wake follows it.
//!
//! Jobs travel through a bounded channel, but unlike the old
//! thread-per-connection pool the bound is never the shedding
//! mechanism: the reactor's admission window (sized to the channel
//! capacity) is what limits dispatch, so `execute` failing is a
//! shutdown signal, not an overload signal — overload is shed at the
//! connection state machine with a `Connection: close` 503 instead.

use crate::http::Request;
use std::collections::VecDeque;
use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One dispatched request: which connection it came from and the
/// keep-alive verdict its response must be framed with.
pub struct Job {
    /// Reactor token of the owning connection.
    pub conn: u64,
    /// The parsed request.
    pub request: Request,
    /// Whether the response may keep the connection open.
    pub keep_alive: bool,
}

/// A finished request on its way back to the reactor.
pub struct Completion {
    /// Reactor token of the owning connection.
    pub conn: u64,
    /// The fully serialised response.
    pub bytes: Vec<u8>,
    /// Whether the connection may stay open (the handler may have
    /// downgraded a keep-alive wish, e.g. for close-delimited bodies).
    pub keep_alive: bool,
    /// Wall-clock handler latency, feeding the admission controller.
    pub latency: Duration,
}

/// How the reactor gets woken when a completion lands. In production
/// this writes a byte to the reactor's wake socket; the loom model
/// substitutes a flag.
pub trait Wake: Send + Sync {
    /// Nudge the reactor; must be safe to call from any thread and
    /// must never block.
    fn wake(&self);
}

/// The worker→reactor handoff: a mutex-guarded FIFO plus a wake hook.
pub struct CompletionQueue {
    queue: Mutex<VecDeque<Completion>>,
    waker: Box<dyn Wake>,
}

impl CompletionQueue {
    /// A fresh queue waking the reactor through `waker`.
    pub fn new(waker: Box<dyn Wake>) -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(VecDeque::new()),
            waker,
        }
    }

    /// Push one completion and wake the reactor. Push-then-wake is the
    /// ordering the loom model checks: the wake may be spurious, but a
    /// completion without a following wake is impossible.
    pub fn push(&self, completion: Completion) {
        {
            let mut queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.push_back(completion);
        }
        self.waker.wake();
    }

    /// Drain everything queued so far (reactor side).
    pub fn drain(&self) -> Vec<Completion> {
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.drain(..).collect()
    }
}

/// The request handler workers run: serialised response bytes plus the
/// final keep-alive verdict, given a request and the wish derived from
/// its framing.
pub type Handler = Arc<dyn Fn(&Request, bool) -> (Vec<u8>, bool) + Send + Sync>;

/// A fixed-size pool executing [`Job`]s and pushing [`Completion`]s.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads draining a queue of at most `capacity`
    /// pending jobs; each runs `handler` and pushes the result onto
    /// `completions`.
    ///
    /// Fails if the OS refuses to spawn a worker thread; threads spawned
    /// before the failure are shut down before the error is returned.
    pub fn new(
        workers: usize,
        capacity: usize,
        handler: Handler,
        completions: Arc<CompletionQueue>,
    ) -> io::Result<WorkerPool> {
        let workers = workers.max(1);
        let (sender, receiver) = sync_channel::<Job>(capacity.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            let handler = Arc::clone(&handler);
            let completions = Arc::clone(&completions);
            let spawned = std::thread::Builder::new()
                .name(format!("ripki-serve-worker-{i}"))
                .spawn(move || worker_loop(receiver, handler, completions));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Drop the sender so the partial pool drains and
                    // exits before we report the failure.
                    drop(sender);
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(WorkerPool {
            sender: Some(sender),
            workers: handles,
        })
    }

    /// Submit a job without blocking. `Err` returns the job: either the
    /// channel is full (the admission window was sized past the channel
    /// capacity — a configuration bug, handled by shedding) or the pool
    /// is shutting down.
    pub fn execute(&self, job: Job) -> Result<(), Job> {
        let Some(sender) = &self.sender else {
            return Err(job);
        };
        sender.try_send(job).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        })
    }

    /// Close the queue and wait for every worker to drain and exit.
    /// Every accepted job's completion is pushed before this returns.
    pub fn shutdown(&mut self) {
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    receiver: Arc<Mutex<Receiver<Job>>>,
    handler: Handler,
    completions: Arc<CompletionQueue>,
) {
    loop {
        let job = {
            // Handlers run *outside* this guard, so a panicking handler
            // cannot poison the lock; if `recv` itself ever panicked,
            // the channel is still structurally sound — recover and
            // keep the remaining workers alive.
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => {
                let started = Instant::now();
                let (bytes, keep_alive) = handler(&job.request, job.keep_alive);
                completions.push(Completion {
                    conn: job.conn,
                    bytes,
                    keep_alive,
                    latency: started.elapsed(),
                });
            }
            Err(_) => return, // all senders gone: shutdown
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the request path.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::http::parse_head;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountWake(AtomicUsize);
    impl Wake for CountWake {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn request(path: &str) -> Request {
        let text = format!("GET {path} HTTP/1.1\r\n\r\n");
        parse_head(text.as_bytes()).unwrap().unwrap().0
    }

    fn echo_handler() -> Handler {
        Arc::new(|req: &Request, keep: bool| (req.path.clone().into_bytes(), keep))
    }

    #[test]
    fn jobs_produce_completions_with_a_wake_each() {
        let wakes = Arc::new(CompletionQueue::new(Box::new(CountWake(AtomicUsize::new(
            0,
        )))));
        let mut pool = WorkerPool::new(4, 16, echo_handler(), Arc::clone(&wakes)).expect("pool");
        for i in 0..32u64 {
            let mut job = Job {
                conn: i,
                request: request(&format!("/{i}")),
                keep_alive: true,
            };
            loop {
                match pool.execute(job) {
                    Ok(()) => break,
                    Err(returned) => {
                        job = returned;
                        std::thread::yield_now();
                    }
                }
            }
        }
        pool.shutdown();
        let done = wakes.drain();
        assert_eq!(done.len(), 32, "every accepted job completes");
        let mut conns: Vec<u64> = done.iter().map(|c| c.conn).collect();
        conns.sort_unstable();
        assert_eq!(conns, (0..32).collect::<Vec<_>>());
        for c in &done {
            assert_eq!(c.bytes, format!("/{}", c.conn).into_bytes());
        }
    }

    #[test]
    fn full_channel_rejects_and_returns_the_job() {
        // Zero workers is clamped to one; occupy it with a slow job.
        let completions = Arc::new(CompletionQueue::new(Box::new(CountWake(AtomicUsize::new(
            0,
        )))));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let slow_gate = Arc::clone(&gate);
        let handler: Handler = Arc::new(move |req: &Request, keep: bool| {
            if req.path == "/slow" {
                slow_gate.wait();
            }
            (Vec::new(), keep)
        });
        let pool = WorkerPool::new(1, 1, handler, Arc::clone(&completions)).expect("pool");
        pool.execute(Job {
            conn: 0,
            request: request("/slow"),
            keep_alive: true,
        })
        .map_err(|_| ())
        .expect("worker slot free");
        // Give the worker a moment to pick the job up, then fill the
        // single queue slot and overflow it.
        std::thread::sleep(Duration::from_millis(20));
        let queued = pool.execute(Job {
            conn: 1,
            request: request("/q"),
            keep_alive: true,
        });
        assert!(queued.is_ok(), "queue slot free");
        let rejected = pool.execute(Job {
            conn: 2,
            request: request("/r"),
            keep_alive: true,
        });
        let returned = rejected.expect_err("full channel must reject");
        assert_eq!(returned.conn, 2, "caller keeps the rejected job");
        gate.wait();
    }
}
