//! Lock-free serving metrics with Prometheus text exposition.
//!
//! Counters and histograms are plain `AtomicU64`s updated with relaxed
//! ordering — per-request accounting must never contend with the hot
//! path. The `/metrics` endpoint renders the standard text format
//! (counters, gauges, cumulative `le`-bucketed histograms) so any
//! Prometheus scraper can watch the query plane without adapters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds in microseconds. Spans sub-100µs cache
/// hits through multi-second full exports; `+Inf` is implicit.
pub const BUCKET_BOUNDS_MICROS: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000, 1_000_000,
];

// Every metric cell is an independent statistic: no other memory is
// published through these atomics and scrapes tolerate being a few
// updates behind, so `Relaxed` is sufficient for all of them. Routing
// every access through these two helpers keeps that argument (and the
// ordering choice) in exactly one place.
fn bump(cell: &AtomicU64, by: u64) {
    // Relaxed: independent statistic, see the policy note above.
    cell.fetch_add(by, Ordering::Relaxed);
}

fn read(cell: &AtomicU64) -> u64 {
    // Relaxed: independent statistic, see the policy note above.
    cell.load(Ordering::Relaxed)
}

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_MICROS.len()],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        for (bound, bucket) in BUCKET_BOUNDS_MICROS.iter().zip(&self.buckets) {
            if micros <= *bound {
                bump(bucket, 1);
            }
        }
        bump(&self.count, 1);
        bump(&self.sum_micros, micros);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        read(&self.count)
    }

    fn render(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        for (bound, bucket) in BUCKET_BOUNDS_MICROS.iter().zip(&self.buckets) {
            let le = *bound as f64 / 1e6;
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {}", read(bucket));
        }
        let count = read(&self.count);
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {count}");
        let _ = writeln!(
            out,
            "{name}_sum{{{labels}}} {}",
            read(&self.sum_micros) as f64 / 1e6
        );
        let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
    }
}

/// The endpoints the router distinguishes for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `/api/v1/validity`
    Validity,
    /// `/vrps.json`
    VrpsJson,
    /// `/vrps.csv`
    VrpsCsv,
    /// `/api/v1/domain/{name}`
    Domain,
    /// `/metrics`
    Metrics,
    /// `/status`
    Status,
    /// Anything else (404s, bad requests, unknown paths).
    Other,
}

impl Endpoint {
    /// All endpoints, for iteration during rendering.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Validity,
        Endpoint::VrpsJson,
        Endpoint::VrpsCsv,
        Endpoint::Domain,
        Endpoint::Metrics,
        Endpoint::Status,
        Endpoint::Other,
    ];

    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Validity => "validity",
            Endpoint::VrpsJson => "vrps_json",
            Endpoint::VrpsCsv => "vrps_csv",
            Endpoint::Domain => "domain",
            Endpoint::Metrics => "metrics",
            Endpoint::Status => "status",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Validity => 0,
            Endpoint::VrpsJson => 1,
            Endpoint::VrpsCsv => 2,
            Endpoint::Domain => 3,
            Endpoint::Metrics => 4,
            Endpoint::Status => 5,
            Endpoint::Other => 6,
        }
    }
}

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

/// All serving metrics, shared across worker threads.
pub struct Metrics {
    started: Instant,
    endpoints: [EndpointStats; Endpoint::ALL.len()],
    connections: AtomicU64,
    connections_rejected: AtomicU64,
    open_connections: AtomicU64,
    admission_window: AtomicU64,
    connections_shed: AtomicU64,
    requests_shed: AtomicU64,
    read_timeouts: AtomicU64,
    write_stall_timeouts: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; uptime counts from here.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            admission_window: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            write_stall_timeouts: AtomicU64::new(0),
        }
    }

    fn stats(&self, endpoint: Endpoint) -> &EndpointStats {
        // lint: allow(no-panic) Endpoint::index enumerates 0..ALL.len()
        // and the array is sized by ALL.len(), so the bound holds by
        // construction.
        &self.endpoints[endpoint.index()]
    }

    /// Account one handled request (any status).
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let stats = self.stats(endpoint);
        bump(&stats.requests, 1);
        if status >= 400 {
            bump(&stats.errors, 1);
        }
        stats.latency.observe(elapsed);
    }

    /// Account one accepted connection.
    pub fn connection_opened(&self) {
        bump(&self.connections, 1);
    }

    /// Account one connection turned away by the full queue (503).
    pub fn connection_rejected(&self) {
        bump(&self.connections_rejected, 1);
    }

    /// Publish the reactor's current open-connection count.
    pub fn set_open_connections(&self, n: u64) {
        // Relaxed: independent statistic, see the policy note above.
        self.open_connections.store(n, Ordering::Relaxed);
    }

    /// Open connections as last published by the reactor.
    pub fn open_connections(&self) -> u64 {
        read(&self.open_connections)
    }

    /// Publish the reactor's current admission-window size.
    pub fn set_admission_window(&self, n: u64) {
        // Relaxed: independent statistic, see the policy note above.
        self.admission_window.store(n, Ordering::Relaxed);
    }

    /// The load-adaptive admission window as last published.
    pub fn admission_window(&self) -> u64 {
        read(&self.admission_window)
    }

    /// Account one idle connection shed at the max-connection watermark.
    pub fn connection_shed(&self) {
        bump(&self.connections_shed, 1);
    }

    /// Account one queued request shed with a close-framed 503.
    pub fn request_shed(&self) {
        bump(&self.requests_shed, 1);
    }

    /// Account one read deadline firing (slow-loris or silent idle peer).
    pub fn read_timeout(&self) {
        bump(&self.read_timeouts, 1);
    }

    /// Read-deadline expiries so far.
    pub fn read_timeouts(&self) -> u64 {
        read(&self.read_timeouts)
    }

    /// Account one stalled-write connection being dropped.
    pub fn write_stall_timeout(&self) {
        bump(&self.write_stall_timeouts, 1);
    }

    /// Write-stall expiries so far.
    pub fn write_stall_timeouts(&self) -> u64 {
        read(&self.write_stall_timeouts)
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints.iter().map(|s| read(&s.requests)).sum()
    }

    /// Seconds since the metrics were created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Render the Prometheus text exposition. `epoch` and `vrp_count`
    /// come from the *current* epoch view so the scrape shows which
    /// world version the answers reflect.
    pub fn render(&self, epoch: u64, vrp_count: usize) -> String {
        self.render_with_exceptions(epoch, vrp_count, None)
    }

    /// [`Metrics::render`] with the SLURM exception-layer gauges
    /// appended when a layer is configured (`(filtered, asserted)`
    /// VRP counts from the current view).
    pub fn render_with_exceptions(
        &self,
        epoch: u64,
        vrp_count: usize,
        slurm: Option<(usize, usize)>,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        if let Some((filtered, asserted)) = slurm {
            let _ = writeln!(
                out,
                "# HELP ripki_serve_slurm_filtered VRPs removed by RFC 8416 local filters."
            );
            let _ = writeln!(out, "# TYPE ripki_serve_slurm_filtered gauge");
            let _ = writeln!(out, "ripki_serve_slurm_filtered {filtered}");
            let _ = writeln!(
                out,
                "# HELP ripki_serve_slurm_asserted VRPs added by RFC 8416 local assertions."
            );
            let _ = writeln!(out, "# TYPE ripki_serve_slurm_asserted gauge");
            let _ = writeln!(out, "ripki_serve_slurm_asserted {asserted}");
        }
        let _ = writeln!(
            out,
            "# HELP ripki_serve_epoch Epoch of the currently served world view."
        );
        let _ = writeln!(out, "# TYPE ripki_serve_epoch gauge");
        let _ = writeln!(out, "ripki_serve_epoch {epoch}");
        let _ = writeln!(
            out,
            "# HELP ripki_serve_vrps Validated ROA payloads in the current epoch."
        );
        let _ = writeln!(out, "# TYPE ripki_serve_vrps gauge");
        let _ = writeln!(out, "ripki_serve_vrps {vrp_count}");
        let _ = writeln!(
            out,
            "# HELP ripki_serve_uptime_seconds Time since the server started."
        );
        let _ = writeln!(out, "# TYPE ripki_serve_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "ripki_serve_uptime_seconds {:.3}",
            self.uptime().as_secs_f64()
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_connections_total Accepted TCP connections."
        );
        let _ = writeln!(out, "# TYPE ripki_http_connections_total counter");
        let _ = writeln!(
            out,
            "ripki_http_connections_total {}",
            read(&self.connections)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_connections_rejected_total Connections refused by the full worker queue."
        );
        let _ = writeln!(out, "# TYPE ripki_http_connections_rejected_total counter");
        let _ = writeln!(
            out,
            "ripki_http_connections_rejected_total {}",
            read(&self.connections_rejected)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_open_connections Connections currently held by the reactor."
        );
        let _ = writeln!(out, "# TYPE ripki_http_open_connections gauge");
        let _ = writeln!(
            out,
            "ripki_http_open_connections {}",
            read(&self.open_connections)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_serve_admission_window Load-adaptive concurrent-dispatch window."
        );
        let _ = writeln!(out, "# TYPE ripki_serve_admission_window gauge");
        let _ = writeln!(
            out,
            "ripki_serve_admission_window {}",
            read(&self.admission_window)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_connections_shed_total Idle connections shed at the max-connection watermark."
        );
        let _ = writeln!(out, "# TYPE ripki_http_connections_shed_total counter");
        let _ = writeln!(
            out,
            "ripki_http_connections_shed_total {}",
            read(&self.connections_shed)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_requests_shed_total Requests answered 503 by ready-queue overflow shedding."
        );
        let _ = writeln!(out, "# TYPE ripki_http_requests_shed_total counter");
        let _ = writeln!(
            out,
            "ripki_http_requests_shed_total {}",
            read(&self.requests_shed)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_read_timeouts_total Read deadlines fired (slow-loris or idle peers)."
        );
        let _ = writeln!(out, "# TYPE ripki_http_read_timeouts_total counter");
        let _ = writeln!(
            out,
            "ripki_http_read_timeouts_total {}",
            read(&self.read_timeouts)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_write_stall_timeouts_total Connections dropped for stalled writes."
        );
        let _ = writeln!(out, "# TYPE ripki_http_write_stall_timeouts_total counter");
        let _ = writeln!(
            out,
            "ripki_http_write_stall_timeouts_total {}",
            read(&self.write_stall_timeouts)
        );
        let _ = writeln!(
            out,
            "# HELP ripki_http_requests_total Handled requests per endpoint."
        );
        let _ = writeln!(out, "# TYPE ripki_http_requests_total counter");
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "ripki_http_requests_total{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                read(&self.stats(endpoint).requests)
            );
        }
        let _ = writeln!(
            out,
            "# HELP ripki_http_errors_total Requests answered with a 4xx/5xx status."
        );
        let _ = writeln!(out, "# TYPE ripki_http_errors_total counter");
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "ripki_http_errors_total{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                read(&self.stats(endpoint).errors)
            );
        }
        let _ = writeln!(
            out,
            "# HELP ripki_http_request_duration_seconds Request handling latency."
        );
        let _ = writeln!(out, "# TYPE ripki_http_request_duration_seconds histogram");
        for endpoint in Endpoint::ALL {
            let labels = format!("endpoint=\"{}\",", endpoint.label());
            self.stats(endpoint).latency.render(
                &mut out,
                "ripki_http_request_duration_seconds",
                &labels,
            );
        }
        out
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the request path.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50));
        h.observe(Duration::from_micros(200));
        h.observe(Duration::from_micros(600));
        let mut out = String::new();
        h.render(&mut out, "x", "");
        assert!(out.contains("x_bucket{le=\"0.0001\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"0.00025\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"0.001\"} 3"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_count{} 3"), "{out}");
    }

    #[test]
    fn render_exposes_epoch_and_per_endpoint_counters() {
        let m = Metrics::new();
        m.record(Endpoint::Validity, 200, Duration::from_micros(120));
        m.record(Endpoint::Validity, 400, Duration::from_micros(80));
        m.record(Endpoint::VrpsJson, 200, Duration::from_millis(2));
        m.connection_opened();
        m.connection_rejected();
        let text = m.render(7, 123);
        assert!(text.contains("ripki_serve_epoch 7"), "{text}");
        assert!(text.contains("ripki_serve_vrps 123"), "{text}");
        assert!(
            text.contains("ripki_http_requests_total{endpoint=\"validity\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ripki_http_errors_total{endpoint=\"validity\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ripki_http_requests_total{endpoint=\"vrps_json\"} 1"),
            "{text}"
        );
        assert!(text.contains("ripki_http_connections_total 1"), "{text}");
        assert!(
            text.contains("ripki_http_connections_rejected_total 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "ripki_http_request_duration_seconds_bucket{endpoint=\"validity\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert_eq!(m.total_requests(), 3);
    }

    #[test]
    fn render_exposes_backpressure_gauges_and_counters() {
        let m = Metrics::new();
        m.set_open_connections(12);
        m.set_admission_window(7);
        m.connection_shed();
        m.request_shed();
        m.request_shed();
        m.read_timeout();
        m.write_stall_timeout();
        let text = m.render(1, 0);
        assert!(text.contains("ripki_http_open_connections 12"), "{text}");
        assert!(text.contains("ripki_serve_admission_window 7"), "{text}");
        assert!(
            text.contains("ripki_http_connections_shed_total 1"),
            "{text}"
        );
        assert!(text.contains("ripki_http_requests_shed_total 2"), "{text}");
        assert!(text.contains("ripki_http_read_timeouts_total 1"), "{text}");
        assert!(
            text.contains("ripki_http_write_stall_timeouts_total 1"),
            "{text}"
        );
        assert_eq!(m.open_connections(), 12);
        assert_eq!(m.admission_window(), 7);
        assert_eq!(m.read_timeouts(), 1);
        assert_eq!(m.write_stall_timeouts(), 1);
    }
}
